//! Pass-pipeline invariants: every pipeline stage is semantics-preserving
//! on arbitrary graphs (oracle-verified), and the peephole write-elision
//! pass never worsens any metric on the full 18-benchmark suite.

use proptest::prelude::*;
use rlim::benchmarks::Benchmark;
use rlim::compiler::{
    compile, Backend, CompileOptions, HostedRm3Backend, ImpBackend, PassManager, Rm3Backend,
};
use rlim::mig::random::{generate, RandomMigConfig};
use rlim::mig::Mig;
use rlim_testkit::parallel::parallel_map;
use rlim_testkit::Oracle;

fn mig_strategy() -> impl Strategy<Value = Mig> {
    (
        2usize..9,    // inputs
        1usize..6,    // outputs
        0usize..120,  // gates
        0.0f64..0.6,  // complement probability
        any::<u64>(), // seed
    )
        .prop_map(|(inputs, outputs, gates, complement_prob, seed)| {
            let cfg = RandomMigConfig {
                inputs,
                outputs,
                gates,
                complement_prob,
                ..Default::default()
            };
            generate(&cfg, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every prefix of the standard pipeline is semantics-preserving:
    /// the baseline pipeline (schedule → translate), the rewriting
    /// pipeline, and the full pipeline with the peephole each produce a
    /// program the oracle confirms against direct MIG evaluation.
    #[test]
    fn every_pipeline_stage_preserves_semantics(mig in mig_strategy()) {
        let oracle = Oracle::new().with_sample_rounds(6).with_imp(false);
        let stage_options = [
            ("baseline", CompileOptions::naive()),
            ("rewrite", CompileOptions::endurance_aware()),
            ("peephole", CompileOptions::endurance_aware().with_peephole(true)),
        ];
        for (label, options) in stage_options {
            let result = PassManager::standard(&options).run(&mig, &options);
            prop_assert_eq!(result.program.validate(), Ok(()));
            oracle.verify_program(&mig, "pipeline", label, &result.program);
        }
    }

    /// The pipeline entry point and a hand-assembled pass manager agree
    /// instruction for instruction, and the peephole output is always a
    /// same-or-smaller program with same-or-smaller per-cell writes.
    #[test]
    fn peephole_is_monotone_on_random_graphs(mig in mig_strategy()) {
        let base = CompileOptions::endurance_aware();
        let off = compile(&mig, &base);
        let on = compile(&mig, &base.with_peephole(true));
        prop_assert!(on.num_instructions() <= off.num_instructions());
        let off_counts = off.program.write_counts();
        let on_counts = on.program.write_counts();
        prop_assert_eq!(off_counts.len(), on_counts.len());
        for (cell, (&a, &b)) in on_counts.iter().zip(&off_counts).enumerate() {
            prop_assert!(a <= b, "cell r{} gained writes: {} > {}", cell, a, b);
        }
    }

    /// Copy discovery is semantics-preserving under every canonical
    /// preset: the translator may read values already live in cells and
    /// spill still-useful cells to spares, but the compiled program must
    /// compute the MIG's function bit for bit (oracle-verified).
    #[test]
    fn copy_reuse_preserves_semantics_across_presets(mig in mig_strategy()) {
        let oracle = Oracle::new().with_sample_rounds(6).with_imp(false);
        for &name in CompileOptions::preset_names() {
            let options = CompileOptions::preset(name)
                .expect("canonical preset")
                .with_copy_reuse(true);
            let result = compile(&mig, &options);
            prop_assert_eq!(result.program.validate(), Ok(()));
            oracle.verify_program(&mig, "copy_reuse", name, &result.program);
        }
    }

    /// The wear-aware selection guarantee: turning copy-reuse on never
    /// worsens `#I`, the max per-cell write count or the write stdev —
    /// `compile` keeps the reuse schedule only when it is pointwise no
    /// worse, so the guarantee holds on *every* input, not just the
    /// benchmark suite.
    #[test]
    fn copy_reuse_is_monotone_on_random_graphs(mig in mig_strategy()) {
        let base = CompileOptions::endurance_aware();
        let off = compile(&mig, &base);
        let on = compile(&mig, &base.with_copy_reuse(true));
        prop_assert!(on.num_instructions() <= off.num_instructions());
        let (on_stats, off_stats) = (on.write_stats(), off.write_stats());
        prop_assert!(on_stats.max <= off_stats.max);
        prop_assert!(on_stats.stdev <= off_stats.stdev);
    }

    /// Equality saturation is semantics-preserving under every canonical
    /// preset: whatever realization the extractor picks out of the
    /// saturated e-graph, the compiled program computes the MIG's
    /// function bit for bit (oracle-verified). Tight budgets keep the
    /// debug-mode e-graphs small without changing what is being proved.
    #[test]
    fn esat_preserves_semantics_across_presets(mig in mig_strategy()) {
        let oracle = Oracle::new().with_sample_rounds(6).with_imp(false);
        for &name in CompileOptions::preset_names() {
            let options = CompileOptions::preset(name)
                .expect("canonical preset")
                .with_esat(true)
                .with_esat_nodes(2_000)
                .with_esat_iters(2);
            let result = compile(&mig, &options);
            prop_assert_eq!(result.program.validate(), Ok(()));
            oracle.verify_program(&mig, "esat", name, &result.program);
        }
    }

    /// The esat guarantee: turning saturation on never worsens `#I`, the
    /// max per-cell write count or the write stdev — `compile` keeps the
    /// extracted graph only when it is pointwise no worse than the greedy
    /// fixed point, so the guarantee holds on *every* input.
    #[test]
    fn esat_is_monotone_on_random_graphs(mig in mig_strategy()) {
        let base = CompileOptions::endurance_aware();
        let off = compile(&mig, &base);
        let on = compile(
            &mig,
            &base.with_esat(true).with_esat_nodes(2_000).with_esat_iters(2),
        );
        prop_assert!(on.num_instructions() <= off.num_instructions());
        let (on_stats, off_stats) = (on.write_stats(), off.write_stats());
        prop_assert!(on_stats.max <= off_stats.max);
        prop_assert!(on_stats.stdev <= off_stats.stdev);
    }

    /// Saturation is deterministic: two compiles of the same graph with
    /// the same budgets produce instruction-identical programs (the
    /// e-graph iterates no hash-order-dependent state).
    #[test]
    fn esat_is_deterministic(mig in mig_strategy()) {
        let options = CompileOptions::endurance_aware()
            .with_esat(true)
            .with_esat_nodes(2_000)
            .with_esat_iters(2);
        let a = compile(&mig, &options);
        let b = compile(&mig, &options);
        prop_assert_eq!(a.program, b.program);
    }

    /// Fleet safety: copy discovery tracks only values the program itself
    /// materialised, so a program dropped onto a long-lived array full of
    /// a *prior job's* residue still computes the right outputs — no
    /// copy-discovery read is ever satisfied by leftover garbage.
    #[test]
    fn copy_reuse_programs_ignore_prior_job_residue(
        mig in mig_strategy(),
        residue_seed: u64,
        input_seed: u64,
    ) {
        use rand::{Rng, SeedableRng};
        use rlim::plim::Machine;
        use rlim::rram::{CellId, Crossbar};

        let options = CompileOptions::endurance_aware().with_copy_reuse(true);
        let program = compile(&mig, &options).program;

        // A dirty array: every cell holds a pseudorandom prior value.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(residue_seed);
        let mut array = Crossbar::new();
        array.grow_to(program.num_cells);
        for i in 0..program.num_cells {
            array.preload(CellId::new(i as u32), rng.gen());
        }
        let mut machine = Machine::with_array(array);

        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(input_seed);
        for _ in 0..3 {
            let inputs: Vec<bool> = (0..mig.num_inputs()).map(|_| rng.gen()).collect();
            let expect = mig.evaluate(&inputs);
            let got = machine.run(&program, &inputs).expect("no endurance limit");
            prop_assert_eq!(&got, &expect, "residue leaked into the outputs");
        }
    }

    /// All three backends compute the MIG's function through the shared
    /// `Backend` API (MIG = RM3 = hosted-RM3 = IMPLY).
    #[test]
    fn backends_agree_through_the_api(mig in mig_strategy(), pattern_seed: u64) {
        use rand::{Rng, SeedableRng};
        let options = CompileOptions::naive();
        let rm3 = Rm3Backend.compile(&mig, &options);
        let imp = ImpBackend.compile(&mig, &options);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(pattern_seed);
        for _ in 0..3 {
            let inputs: Vec<bool> = (0..mig.num_inputs()).map(|_| rng.gen()).collect();
            let expect = mig.evaluate(&inputs);
            prop_assert_eq!(&Rm3Backend.execute(&rm3, &inputs).unwrap(), &expect);
            prop_assert_eq!(&HostedRm3Backend.execute(&rm3, &inputs).unwrap(), &expect);
            prop_assert_eq!(&ImpBackend.execute(&imp, &inputs).unwrap(), &expect);
        }
    }
}

/// Golden acceptance check on the full 18-benchmark suite: the peephole
/// pass never increases `#I` or the maximum per-cell write count, never
/// changes `#R`, and strictly shrinks `#I` on at least 3 benchmarks.
#[test]
fn peephole_golden_on_benchmark_suite() {
    // `naive` keeps this debug-mode-fast (no rewriting cycles) while
    // still exercising every benchmark; the per-preset behaviour is
    // covered by the property tests above.
    let rows = parallel_map(Benchmark::all().to_vec(), 0, |b| {
        let mig = b.build();
        let base = CompileOptions::naive();
        let off = Rm3Backend.compile(&mig, &base);
        let on = Rm3Backend.compile(&mig, &base.with_peephole(true));
        (b, off, on)
    });
    let mut strictly_smaller = 0;
    for (b, off, on) in rows {
        assert!(
            on.num_instructions() <= off.num_instructions(),
            "{b}: peephole grew #I"
        );
        assert!(
            on.write_stats().max <= off.write_stats().max,
            "{b}: peephole grew the max per-cell write count"
        );
        assert_eq!(on.num_rrams(), off.num_rrams(), "{b}: cells renumbered");
        if on.num_instructions() < off.num_instructions() {
            strictly_smaller += 1;
        }
    }
    assert!(
        strictly_smaller >= 3,
        "peephole should strictly shrink #I on at least 3 of the 18 \
         benchmarks, got {strictly_smaller}"
    );
}
