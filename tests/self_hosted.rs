//! Cross-crate tests of the self-hosted PLiM controller: real compiled
//! programs, hosted in the crossbar and executed by the FSM, must agree
//! with the external machine and with MIG evaluation.

use rlim::benchmarks::Benchmark;
use rlim::compiler::{compile, CompileOptions};
use rlim::plim::{Controller, Machine, State};
use rlim_testkit::Oracle;

#[test]
fn hosted_execution_matches_machine_on_benchmarks() {
    // With `hosted` enabled the oracle runs every compiled program both on
    // the external machine and self-hosted under the controller FSM, so
    // MIG ≡ RM3 ≡ hosted RM3 over the whole truth table of ctrl; cavlc and
    // int2float sample (hosting 2^10+ patterns is release-mode territory).
    let oracle = Oracle::new()
        .with_hosted(true)
        .with_imp(false)
        .with_exhaustive_limit(8)
        .with_sample_rounds(6)
        .with_seed(0x5E1F);
    for &b in &[Benchmark::Int2float, Benchmark::Ctrl, Benchmark::Cavlc] {
        oracle.verify(&b.build(), b.name());
    }
}

#[test]
fn controller_halts_cleanly() {
    let mig = Benchmark::Ctrl.build();
    let result = compile(&mig, &CompileOptions::endurance_aware());
    let mut controller = Controller::host(&result.program).expect("hosts");
    controller
        .run(&vec![false; mig.num_inputs()])
        .expect("no limit");
    assert_eq!(controller.state(), State::Halted);
}

#[test]
fn controller_cycle_model_is_six_per_instruction() {
    let mig = Benchmark::Int2float.build();
    let result = compile(&mig, &CompileOptions::naive());
    let mut controller = Controller::host(&result.program).expect("hosts");
    controller
        .run(&vec![false; mig.num_inputs()])
        .expect("no limit");
    assert_eq!(
        controller.cycles(),
        6 * result.num_instructions() as u64,
        "fetch×3 + read×2 + execute per RM3"
    );
}

#[test]
fn program_image_overhead_is_reported_in_the_array() {
    let mig = Benchmark::Ctrl.build();
    let result = compile(&mig, &CompileOptions::endurance_aware());
    let controller = Controller::host(&result.program).expect("hosts");
    let data_cells = result.num_rrams();
    assert_eq!(controller.code_base(), data_cells);
    assert!(
        controller.array().len() > data_cells,
        "instruction region allocated above the data region"
    );
    // Program-load wear: every code cell written exactly once before
    // execution starts.
    let counts = controller.array().write_counts();
    assert!(counts[data_cells..].iter().all(|&w| w == 1));
}

#[test]
fn data_region_wear_identical_to_external_machine() {
    let mig = Benchmark::Int2float.build();
    let result = compile(&mig, &CompileOptions::min_write());
    let inputs = vec![true; mig.num_inputs()];

    let mut machine = Machine::for_program(&result.program);
    machine.run(&result.program, &inputs).expect("no limit");
    let external = machine.array().write_counts();

    let mut controller = Controller::host(&result.program).expect("hosts");
    controller.run(&inputs).expect("no limit");
    let hosted = controller.array().write_counts();

    assert_eq!(&hosted[..result.num_rrams()], &external[..]);
}

#[test]
fn hosted_runs_baseline_pipeline_output() {
    // A 2-bit adder built by the pipeline with baseline passes (no
    // rewriting, topological selection, LIFO allocation) — the modern
    // replacement for the hand-rolled naive translator the controller
    // tests used to carry — hosted and checked exhaustively.
    use rlim::compiler::PassManager;
    use rlim::mig::Mig;

    let mut mig = Mig::new(4);
    let (a0, b0) = (mig.input(0), mig.input(1));
    let (a1, b1) = (mig.input(2), mig.input(3));
    let (s0, c0) = mig.half_adder(a0, b0);
    let (s1, c1) = mig.full_adder(a1, b1, c0);
    mig.add_output(s0);
    mig.add_output(s1);
    mig.add_output(c1);

    let options = CompileOptions::naive();
    let result = PassManager::baseline().run(&mig, &options);
    assert_eq!(
        result.program,
        compile(&mig, &options).program,
        "baseline pipeline and the naive preset agree"
    );
    for bits in 0..16u32 {
        let inputs: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
        let mut controller = Controller::host(&result.program).expect("hosts");
        let got = controller.run(&inputs).expect("no limit");
        assert_eq!(got, mig.evaluate(&inputs), "bits {bits:04b}");
    }
}
