//! End-to-end BLIF pipeline: export a benchmark to BLIF, re-import it,
//! compile both versions, and check functional equivalence all the way to
//! the machine — the path an external user's circuit takes through the
//! toolchain.

use rlim::benchmarks::Benchmark;
use rlim::compiler::{compile, CompileOptions};
use rlim::mig::{blif, equiv_random};
use rlim::plim::{asm, Machine};
use rlim_testkit::{equiv_exhaustive, Oracle, DEFAULT_EXHAUSTIVE_LIMIT};

#[test]
fn blif_round_trip_preserves_benchmarks() {
    for &b in &[Benchmark::Int2float, Benchmark::Ctrl, Benchmark::Router] {
        let mig = b.build();
        let text = blif::write_blif(&mig, b.name());
        let back = blif::parse_blif(&text).unwrap_or_else(|e| panic!("{b}: {e}"));
        assert_eq!(back.num_inputs(), mig.num_inputs(), "{b}");
        assert_eq!(back.num_outputs(), mig.num_outputs(), "{b}");
        if mig.num_inputs() <= DEFAULT_EXHAUSTIVE_LIMIT {
            assert_eq!(
                equiv_exhaustive(&mig, &back),
                None,
                "{b}: BLIF round trip changed the function"
            );
        } else {
            assert!(
                equiv_random(&mig, &back, 8, b as u64).is_equal(),
                "{b}: BLIF round trip changed the function"
            );
        }
    }
}

#[test]
fn imported_circuit_compiles_and_executes() {
    let mig = Benchmark::Int2float.build();
    let text = blif::write_blif(&mig, "int2float");
    let imported = blif::parse_blif(&text).expect("parses");
    let result = compile(&imported, &CompileOptions::endurance_aware());
    // Exhaustive: the program compiled from the *imported* graph must match
    // the original MIG on all 2048 patterns.
    Oracle::new().verify_program(&mig, "int2float", "blif_import", &result.program);
}

#[test]
fn assembly_round_trip_preserves_compiled_programs() {
    for &b in &[Benchmark::Int2float, Benchmark::Dec] {
        let mig = b.build();
        for options in [CompileOptions::naive(), CompileOptions::endurance_aware()] {
            let result = compile(&mig, &options);
            let text = asm::to_text(&result.program);
            let parsed = asm::parse_text(&text).unwrap_or_else(|e| panic!("{b}: {e}"));
            assert_eq!(parsed, result.program, "{b}: asm round trip");
        }
    }
}

#[test]
fn full_text_pipeline_blif_to_plim_to_machine() {
    // circuit (BLIF text) → MIG → compile → PLiM assembly text → parse →
    // execute. Nothing but text artefacts between the stages.
    let blif_text = "\
.model vote3
.inputs a b c
.outputs maj odd
.names a b c maj
11- 1
1-1 1
-11 1
.names a b x
10 1
01 1
.names x c odd
10 1
01 1
.end
";
    let mig = blif::parse_blif(blif_text).expect("parses");
    let result = compile(&mig, &CompileOptions::endurance_aware());
    let plim_text = asm::to_text(&result.program);
    let program = asm::parse_text(&plim_text).expect("parses back");

    for bits in 0..8u32 {
        let inputs: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
        let ones = inputs.iter().filter(|&&x| x).count();
        let mut machine = Machine::for_program(&program);
        let out = machine.run(&program, &inputs).expect("no limit");
        assert_eq!(out[0], ones >= 2, "majority, bits={bits:03b}");
        assert_eq!(out[1], ones % 2 == 1, "parity, bits={bits:03b}");
    }
}
