//! End-to-end functional equivalence: for every benchmark × configuration,
//! the compiled PLiM program executed on the crossbar machine must compute
//! the same outputs as direct MIG evaluation — the load-bearing invariant
//! of the whole reproduction (DESIGN.md §7).
//!
//! Coverage is delegated to `rlim-testkit`: circuits with few enough
//! inputs are proven over their **entire truth table** (MIG ≡ RM3 ≡ IMPLY
//! under every `CompileOptions` preset); larger ones get the deterministic
//! sampling oracle.

use rlim::benchmarks::Benchmark;
use rlim::mig::Mig;
use rlim_testkit::{Oracle, DEFAULT_EXHAUSTIVE_LIMIT};

#[test]
fn small_benchmarks_exhaustive_all_presets() {
    // cavlc (10 PI), ctrl (7 PI), dec (8 PI) and int2float (11 PI) are
    // proven over all 2^n patterns; priority (128 PI) and router (60 PI)
    // fall back to the sampling oracle.
    let oracle = Oracle::new();
    let mut exhaustive = 0;
    for &b in Benchmark::small() {
        let report = oracle.verify(&b.build(), b.name());
        assert_eq!(
            report.exhaustive,
            b.interface().0 <= DEFAULT_EXHAUSTIVE_LIMIT,
            "{b}: unexpected coverage tier"
        );
        if report.exhaustive {
            assert_eq!(report.patterns, 1 << b.interface().0, "{b}");
            exhaustive += 1;
        }
    }
    assert_eq!(
        exhaustive, 4,
        "cavlc, ctrl, dec and int2float are exhaustive"
    );
}

#[test]
fn synthetic_benchmarks_small() {
    // The smaller synthetic profiles; mem_ctrl/log2 are covered by the
    // release-mode eval binaries (too slow for debug-mode tests).
    let oracle = Oracle::new().with_sample_rounds(8);
    for &b in &[Benchmark::Sin, Benchmark::Router] {
        oracle.verify(&b.build(), b.name());
    }
}

#[test]
fn arithmetic_benchmarks_reduced_width() {
    use rlim::benchmarks::{arith, misc};
    // Same generators as the paper-size benchmarks, at widths that compile
    // in debug-mode test time. The ≤11-input ones (sqrt6, dec6) are
    // exhaustive automatically.
    let cases: Vec<(&str, Mig)> = vec![
        ("adder16", arith::adder_with_width(16)),
        ("multiplier8", arith::multiplier_with_width(8)),
        ("square8", arith::square_with_width(8)),
        ("div8", arith::div_with_width(8)),
        ("sqrt6", arith::sqrt_with_width(6)),
        ("bar16", misc::bar_with_width(16)),
        ("max8", misc::max_with_width(8)),
        ("voter31", misc::voter_with_inputs(31)),
        ("dec6", misc::dec_with_width(6)),
        ("priority32", misc::priority_with_inputs(32)),
    ];
    let oracle = Oracle::new().with_sample_rounds(6).with_seed(0xAB5E11);
    for (name, mig) in &cases {
        oracle.verify(mig, name);
    }
}

#[test]
fn full_size_adder_functional() {
    // One paper-size benchmark end-to-end (the cheapest arithmetic one).
    // IMP is deliberately skipped here: NAND-synthesising a 256-input
    // adder is release-mode territory, and no other suite covers it.
    let oracle = Oracle::new().with_sample_rounds(3).with_imp(false);
    oracle.verify(&Benchmark::Adder.build(), "adder");
}
