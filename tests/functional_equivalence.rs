//! End-to-end functional equivalence: for every benchmark × configuration,
//! the compiled PLiM program executed on the crossbar machine must compute
//! the same outputs as direct MIG evaluation — the load-bearing invariant
//! of the whole reproduction (DESIGN.md §7).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rlim::benchmarks::Benchmark;
use rlim::compiler::{compile, CompileOptions};
use rlim::mig::Mig;
use rlim::plim::Machine;

fn configs() -> Vec<(&'static str, CompileOptions)> {
    vec![
        ("naive", CompileOptions::naive()),
        ("plim_compiler", CompileOptions::plim_compiler()),
        ("min_write", CompileOptions::min_write()),
        ("endurance_rewriting", CompileOptions::endurance_rewriting()),
        ("endurance_aware", CompileOptions::endurance_aware()),
        ("max_write_10", CompileOptions::endurance_aware().with_max_writes(10)),
        ("max_write_3", CompileOptions::endurance_aware().with_max_writes(3)),
    ]
}

/// Compiles `mig` under every configuration and cross-checks `rounds`
/// random input vectors against MIG evaluation.
fn assert_equivalent(name: &str, mig: &Mig, rounds: usize, seed: u64) {
    for (label, options) in configs() {
        let result = compile(mig, &options);
        result
            .program
            .validate()
            .unwrap_or_else(|e| panic!("{name}/{label}: invalid program: {e}"));
        // The rewritten graph must itself be equivalent to the original.
        let check = rlim::mig::equiv_random(mig, &result.mig, 4, seed);
        assert!(
            check.is_equal(),
            "{name}/{label}: rewriting changed the function: {check:?}"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for round in 0..rounds {
            let inputs: Vec<bool> = (0..mig.num_inputs()).map(|_| rng.gen()).collect();
            let expect = mig.evaluate(&inputs);
            let mut machine = Machine::for_program(&result.program);
            let got = machine
                .run(&result.program, &inputs)
                .unwrap_or_else(|e| panic!("{name}/{label}: endurance error: {e}"));
            assert_eq!(got, expect, "{name}/{label} round {round}");
        }
    }
}

#[test]
fn small_control_benchmarks() {
    for &b in Benchmark::small() {
        assert_equivalent(b.name(), &b.build(), 6, 0xC0FFEE ^ b as u64);
    }
}

#[test]
fn synthetic_benchmarks_small() {
    // The smaller synthetic profiles; mem_ctrl/log2 are covered by the
    // release-mode eval binaries (too slow for debug-mode tests).
    for &b in &[Benchmark::Ctrl, Benchmark::Router, Benchmark::Cavlc, Benchmark::Sin] {
        assert_equivalent(b.name(), &b.build(), 4, 0xFACADE ^ b as u64);
    }
}

#[test]
fn arithmetic_benchmarks_reduced_width() {
    use rlim::benchmarks::{arith, misc};
    // Same generators as the paper-size benchmarks, at widths that compile
    // in debug-mode test time.
    let cases: Vec<(&str, Mig)> = vec![
        ("adder16", arith::adder_with_width(16)),
        ("multiplier8", arith::multiplier_with_width(8)),
        ("square8", arith::square_with_width(8)),
        ("div8", arith::div_with_width(8)),
        ("sqrt6", arith::sqrt_with_width(6)),
        ("bar16", misc::bar_with_width(16)),
        ("max8", misc::max_with_width(8)),
        ("voter31", misc::voter_with_inputs(31)),
        ("dec6", misc::dec_with_width(6)),
        ("priority32", misc::priority_with_inputs(32)),
    ];
    for (name, mig) in &cases {
        assert_equivalent(name, mig, 4, 0xAB5E11);
    }
}

#[test]
fn full_size_adder_functional() {
    // One paper-size benchmark end-to-end (the cheapest arithmetic one).
    let mig = Benchmark::Adder.build();
    assert_equivalent("adder", &mig, 2, 0xADD);
}

#[test]
fn int2float_exhaustive_naive_vs_machine() {
    let mig = Benchmark::Int2float.build();
    let result = compile(&mig, &CompileOptions::endurance_aware());
    for raw in 0..(1u32 << 11) {
        let inputs: Vec<bool> = (0..11).map(|i| (raw >> i) & 1 == 1).collect();
        let mut machine = Machine::for_program(&result.program);
        let got = machine.run(&result.program, &inputs).expect("no limit");
        assert_eq!(got, mig.evaluate(&inputs), "raw={raw:#b}");
    }
}
