//! Property-based tests (proptest) over randomly generated MIGs: the
//! compiler, rewriting passes, and policies must uphold their invariants on
//! arbitrary graph shapes, not just the curated benchmarks.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rlim::compiler::{compile, CompileOptions};
use rlim::mig::random::{generate, RandomMigConfig};
use rlim::mig::rewrite::{rewrite, Algorithm};
use rlim::mig::{equiv_random, Mig};
use rlim::plim::{DispatchPolicy, Fleet, FleetConfig, Job, Machine};

/// Strategy: a seeded random MIG configuration small enough for debug-mode
/// compile+execute rounds.
fn mig_strategy() -> impl Strategy<Value = Mig> {
    (
        2usize..10,   // inputs
        1usize..8,    // outputs
        0usize..160,  // gates
        0.0f64..0.6,  // complement probability
        0.0f64..0.5,  // long-edge probability
        any::<u64>(), // seed
    )
        .prop_map(
            |(inputs, outputs, gates, complement_prob, long_edge_prob, seed)| {
                let cfg = RandomMigConfig {
                    inputs,
                    outputs,
                    gates,
                    complement_prob,
                    long_edge_prob,
                    ..Default::default()
                };
                generate(&cfg, seed)
            },
        )
}

fn any_options() -> impl Strategy<Value = CompileOptions> {
    prop_oneof![
        Just(CompileOptions::naive()),
        Just(CompileOptions::plim_compiler()),
        Just(CompileOptions::min_write()),
        Just(CompileOptions::endurance_rewriting()),
        Just(CompileOptions::endurance_aware()),
        (3u64..40).prop_map(|w| CompileOptions::endurance_aware().with_max_writes(w)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Every rewriting algorithm preserves the Boolean function.
    #[test]
    fn rewriting_preserves_function(mig in mig_strategy(), effort in 0usize..4) {
        for alg in [Algorithm::PlimCompiler, Algorithm::EnduranceAware] {
            let rewritten = rewrite(&mig, alg, effort);
            let check = equiv_random(&mig, &rewritten, 4, 99);
            prop_assert!(check.is_equal(), "{alg:?} changed the function: {check:?}");
        }
    }

    /// (b) compile → execute equals direct evaluation for every policy.
    #[test]
    fn compile_execute_matches_simulation(mig in mig_strategy(), options in any_options(), seed in any::<u64>()) {
        let result = compile(&mig, &options);
        prop_assert_eq!(result.program.validate(), Ok(()));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..3 {
            let inputs: Vec<bool> = (0..mig.num_inputs()).map(|_| rng.gen()).collect();
            let mut machine = Machine::for_program(&result.program);
            let got = machine.run(&result.program, &inputs).expect("no endurance limit");
            prop_assert_eq!(got, mig.evaluate(&inputs));
        }
    }

    /// (c) The maximum write strategy is a hard per-cell bound.
    #[test]
    fn max_write_bound_holds(mig in mig_strategy(), budget in 3u64..30) {
        let result = compile(&mig, &CompileOptions::endurance_aware().with_max_writes(budget));
        let counts = result.program.write_counts();
        let max = counts.iter().max().copied().unwrap_or(0);
        prop_assert!(max <= budget, "W={budget} but max={max}");
    }

    /// (d) Write statistics invariants.
    #[test]
    fn write_stats_invariants(mig in mig_strategy(), options in any_options()) {
        let result = compile(&mig, &options);
        let stats = result.write_stats();
        let counts = result.program.write_counts();
        prop_assert_eq!(stats.cells, counts.len());
        prop_assert_eq!(stats.total, counts.iter().sum::<u64>());
        prop_assert_eq!(stats.min, counts.iter().min().copied().unwrap_or(0));
        prop_assert_eq!(stats.max, counts.iter().max().copied().unwrap_or(0));
        let mean = stats.total as f64 / stats.cells.max(1) as f64;
        prop_assert!(stats.min as f64 <= mean + 1e-9);
        prop_assert!(mean <= stats.max as f64 + 1e-9);
        prop_assert!(stats.stdev >= 0.0);
        if stats.min == stats.max {
            prop_assert!(stats.stdev.abs() < 1e-9, "all-equal counts must have stdev 0");
        }
    }

    /// (e) min-write allocation changes only the *distribution*, never the
    /// instruction or cell count (paper §IV).
    #[test]
    fn min_write_is_cost_neutral(mig in mig_strategy()) {
        let lifo = compile(&mig, &CompileOptions::plim_compiler());
        let minw = compile(&mig, &CompileOptions::min_write());
        prop_assert_eq!(lifo.num_instructions(), minw.num_instructions());
        prop_assert_eq!(lifo.num_rrams(), minw.num_rrams());
    }

    /// (f) Compilation is deterministic.
    #[test]
    fn compile_is_deterministic(mig in mig_strategy(), options in any_options()) {
        let a = compile(&mig, &options);
        let b = compile(&mig, &options);
        prop_assert_eq!(a.num_rrams(), b.num_rrams());
        prop_assert_eq!(a.program.instructions, b.program.instructions);
    }

    /// (g) Input cells are never written by the program (they are
    /// preloaded), so the total write count equals the instruction count.
    #[test]
    fn every_instruction_is_one_write(mig in mig_strategy(), options in any_options()) {
        let result = compile(&mig, &options);
        let counts = result.program.write_counts();
        prop_assert_eq!(counts.iter().sum::<u64>() as usize, result.num_instructions());
    }

    /// (h) Fleet dispatch invariants on arbitrary graphs and workloads:
    /// outputs equal direct MIG evaluation in job order for every policy
    /// and thread count, serial == parallel (outputs and per-array wear),
    /// and per-array totals match the dispatched programs' static costs.
    #[test]
    fn fleet_dispatch_is_correct_and_deterministic(
        mig in mig_strategy(),
        arrays in 1usize..5,
        jobs in 1usize..12,
        policy_lw in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let heavy = compile(&mig, &CompileOptions::naive());
        let light = compile(&mig, &CompileOptions::endurance_aware().with_effort(1));
        let policy = if policy_lw { DispatchPolicy::LeastWorn } else { DispatchPolicy::RoundRobin };

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let input_sets: Vec<Vec<bool>> = (0..jobs)
            .map(|_| (0..mig.num_inputs()).map(|_| rng.gen()).collect())
            .collect();
        let picks: Vec<bool> = (0..jobs).map(|_| rng.gen()).collect();
        let job_list: Vec<Job<'_>> = picks
            .iter()
            .zip(&input_sets)
            .map(|(&h, inputs)| Job::new(if h { &heavy.program } else { &light.program }, inputs))
            .collect();

        let mut serial = Fleet::new(FleetConfig::new(arrays).with_policy(policy));
        let out_serial = serial.run_batch(&job_list, 1).expect("no limits configured");
        let mut parallel = Fleet::new(FleetConfig::new(arrays).with_policy(policy));
        let out_parallel = parallel.run_batch(&job_list, 0).expect("no limits configured");

        prop_assert_eq!(&out_serial, &out_parallel);
        for (out, inputs) in out_serial.iter().zip(&input_sets) {
            prop_assert_eq!(out, &mig.evaluate(inputs));
        }
        let mut planned_total = 0u64;
        for job in &job_list {
            planned_total += job.cost();
        }
        let mut executed_total = 0u64;
        for i in 0..arrays {
            prop_assert_eq!(
                serial.array(i).write_counts(),
                parallel.array(i).write_counts()
            );
            let executed: u64 = serial.array(i).write_counts().iter().sum();
            prop_assert_eq!(serial.total_writes(i), executed);
            executed_total += executed;
        }
        prop_assert_eq!(executed_total, planned_total);
    }

    /// (i) The fleet write budget is a hard per-array bound, and retired
    /// arrays stay frozen.
    #[test]
    fn fleet_budget_is_a_hard_bound(
        mig in mig_strategy(),
        arrays in 1usize..4,
        capacity in 1u64..6,
        policy_lw in any::<bool>(),
    ) {
        let result = compile(&mig, &CompileOptions::endurance_aware().with_effort(1));
        if result.num_instructions() == 0 {
            // A write-free program never exhausts any budget.
            return Ok(());
        }
        let cost = result.total_writes();
        let budget = capacity * cost;
        let policy = if policy_lw { DispatchPolicy::LeastWorn } else { DispatchPolicy::RoundRobin };
        let mut fleet = Fleet::new(
            FleetConfig::new(arrays)
                .with_policy(policy)
                .with_write_budget(budget),
        );
        let inputs = vec![false; mig.num_inputs()];
        let job = Job::new(&result.program, &inputs);

        // Run to exhaustion, one job at a time.
        let mut served = 0u64;
        while fleet.run_batch(&[job], 1).is_ok() {
            served += 1;
            prop_assert!(served <= arrays as u64 * capacity, "served past fleet capacity");
        }
        prop_assert_eq!(served, arrays as u64 * capacity);
        prop_assert_eq!(fleet.remaining_jobs(cost), Some(0));
        for i in 0..arrays {
            prop_assert!(fleet.total_writes(i) <= budget, "array {} over budget", i);
            prop_assert!(fleet.is_retired(i));
        }
    }
}
