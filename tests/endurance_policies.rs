//! Cross-crate behavioural tests of the endurance-management policies:
//! write-bound guarantees, policy cost relationships the paper states, and
//! failure injection with physical endurance limits.

use rlim::benchmarks::Benchmark;
use rlim::compiler::{compile, CompileOptions};
use rlim::plim::Machine;
use rlim::rram::lifetime::executions_until_failure;

#[test]
fn max_write_budget_is_hard_bound_on_every_benchmark() {
    for &b in Benchmark::small() {
        let mig = b.build();
        for budget in [3u64, 10, 20] {
            let r = compile(
                &mig,
                &CompileOptions::endurance_aware().with_max_writes(budget),
            );
            let counts = r.program.write_counts();
            let max = counts.iter().max().copied().unwrap_or(0);
            assert!(max <= budget, "{b}: W={budget} violated with max={max}");
        }
    }
}

#[test]
fn min_write_leaves_instruction_and_cell_counts_unchanged() {
    // Paper §IV: "the minimum write count strategy does not influence the
    // number of required instructions and RRAMs."
    for &b in Benchmark::small() {
        let mig = b.build();
        let lifo = compile(&mig, &CompileOptions::plim_compiler());
        let minw = compile(&mig, &CompileOptions::min_write());
        assert_eq!(lifo.num_instructions(), minw.num_instructions(), "{b} #I");
        assert_eq!(lifo.num_rrams(), minw.num_rrams(), "{b} #R");
    }
}

#[test]
fn tighter_budget_never_needs_fewer_cells() {
    // Paper Table III: #R grows (weakly) as the budget tightens.
    for &b in &[Benchmark::Priority, Benchmark::Cavlc, Benchmark::Router] {
        let mig = b.build();
        let mut previous = None;
        for budget in [100u64, 50, 20, 10, 5, 3] {
            let r = compile(
                &mig,
                &CompileOptions::endurance_aware().with_max_writes(budget),
            );
            if let Some((prev_budget, prev_r)) = previous {
                assert!(
                    r.num_rrams() >= prev_r,
                    "{b}: W={budget} used fewer cells ({}) than W={prev_budget} ({prev_r})",
                    r.num_rrams()
                );
            }
            previous = Some((budget, r.num_rrams()));
        }
    }
}

#[test]
fn budgeted_max_write_caps_the_observed_maximum() {
    // The W column caps max writes at W (Table I/III relationship).
    let mig = Benchmark::Cavlc.build();
    let unbounded = compile(&mig, &CompileOptions::endurance_aware());
    let natural_max = unbounded.write_stats().max;
    assert!(natural_max > 10, "cavlc should naturally exceed W=10");
    let bounded = compile(&mig, &CompileOptions::endurance_aware().with_max_writes(10));
    assert!(bounded.write_stats().max <= 10);
}

#[test]
fn endurance_exhaustion_fails_naive_before_managed() {
    // Failure injection: with a small physical endurance, the naive
    // program's hot cell dies after few executions while the managed one
    // keeps going.
    let mig = Benchmark::Priority.build();
    let naive = compile(&mig, &CompileOptions::naive());
    let managed = compile(&mig, &CompileOptions::endurance_aware().with_max_writes(10));

    let naive_max = naive.write_stats().max;
    let managed_max = managed.write_stats().max;
    assert!(
        naive_max > managed_max,
        "naive hot cell ({naive_max}) should exceed managed maximum ({managed_max})"
    );

    // Pick an endurance budget between one naive execution and one managed
    // execution's worth of headroom.
    let endurance = managed_max * 3;
    assert!(
        endurance < naive_max,
        "test premise: naive dies within one run"
    );

    let inputs = vec![false; mig.num_inputs()];

    let mut machine = Machine::with_endurance(&naive.program, endurance);
    machine.load_inputs(&naive.program, &inputs);
    let err = machine
        .execute(&naive.program)
        .expect_err("naive must exhaust a cell");
    let msg = err.to_string();
    assert!(!msg.is_empty(), "error message should describe the failure");

    let mut machine = Machine::with_endurance(&managed.program, endurance);
    for _ in 0..3 {
        let out = machine
            .run(&managed.program, &inputs)
            .expect("managed program survives three executions");
        assert_eq!(out, mig.evaluate(&inputs));
    }
}

#[test]
fn lifetime_model_matches_write_counts() {
    let mig = Benchmark::Dec.build();
    let r = compile(&mig, &CompileOptions::endurance_aware());
    let counts = r.program.write_counts();
    let max = counts.iter().max().copied().unwrap();
    let endurance = 1000u64;
    let expect = endurance / max;
    assert_eq!(
        executions_until_failure(counts.iter().copied(), endurance),
        expect
    );
}

#[test]
fn write_stats_cover_all_cells_including_inputs() {
    // Stats must be over *all* allocated cells — inputs are preloaded
    // wear-free, so min is typically 0 for input-rich circuits.
    let mig = Benchmark::Dec.build();
    let r = compile(&mig, &CompileOptions::naive());
    let stats = r.write_stats();
    assert_eq!(stats.cells, r.num_rrams());
    assert_eq!(stats.total as usize, r.num_instructions());
}

#[test]
fn rewriting_reduces_instructions_on_synthesised_circuits() {
    // Paper Table II: endurance-aware rewriting cuts #I by roughly a third
    // on synthesis-style circuits.
    for &b in &[Benchmark::Cavlc, Benchmark::Router, Benchmark::Ctrl] {
        let mig = b.build();
        let naive = compile(&mig, &CompileOptions::naive());
        let rewritten = compile(&mig, &CompileOptions::endurance_rewriting());
        assert!(
            rewritten.num_instructions() < naive.num_instructions(),
            "{b}: rewriting should reduce #I ({} vs {})",
            rewritten.num_instructions(),
            naive.num_instructions()
        );
    }
}

#[test]
fn technique_stack_improves_write_balance() {
    // The paper's headline: full-management stdev beats naive stdev on the
    // write-unbalanced circuits. (Already-balanced tiny circuits can
    // regress — the paper's own `dec` row shows -23.91% — so `dec` and
    // `int2float` are deliberately excluded here.)
    for &b in &[Benchmark::Cavlc, Benchmark::Priority, Benchmark::Router] {
        let mig = b.build();
        let naive = compile(&mig, &CompileOptions::naive()).write_stats();
        let full = compile(&mig, &CompileOptions::endurance_aware()).write_stats();
        assert!(
            full.stdev < naive.stdev,
            "{b}: full management should improve stdev ({:.2} vs {:.2})",
            full.stdev,
            naive.stdev
        );
    }
}
