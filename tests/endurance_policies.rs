//! Cross-crate behavioural tests of the endurance-management policies:
//! write-bound guarantees, policy cost relationships the paper states,
//! failure injection with physical endurance limits, and the fleet
//! dispatcher's array-granularity versions of the same guarantees.

use rlim::benchmarks::Benchmark;
use rlim::compiler::{compile, CompileOptions};
use rlim::plim::{DispatchPolicy, Fleet, FleetConfig, Job, Machine};
use rlim::rram::lifetime::executions_until_failure;

#[test]
fn max_write_budget_is_hard_bound_on_every_benchmark() {
    for &b in Benchmark::small() {
        let mig = b.build();
        for budget in [3u64, 10, 20] {
            let r = compile(
                &mig,
                &CompileOptions::endurance_aware().with_max_writes(budget),
            );
            let counts = r.program.write_counts();
            let max = counts.iter().max().copied().unwrap_or(0);
            assert!(max <= budget, "{b}: W={budget} violated with max={max}");
        }
    }
}

#[test]
fn min_write_leaves_instruction_and_cell_counts_unchanged() {
    // Paper §IV: "the minimum write count strategy does not influence the
    // number of required instructions and RRAMs."
    for &b in Benchmark::small() {
        let mig = b.build();
        let lifo = compile(&mig, &CompileOptions::plim_compiler());
        let minw = compile(&mig, &CompileOptions::min_write());
        assert_eq!(lifo.num_instructions(), minw.num_instructions(), "{b} #I");
        assert_eq!(lifo.num_rrams(), minw.num_rrams(), "{b} #R");
    }
}

#[test]
fn tighter_budget_never_needs_fewer_cells() {
    // Paper Table III: #R grows (weakly) as the budget tightens.
    for &b in &[Benchmark::Priority, Benchmark::Cavlc, Benchmark::Router] {
        let mig = b.build();
        let mut previous = None;
        for budget in [100u64, 50, 20, 10, 5, 3] {
            let r = compile(
                &mig,
                &CompileOptions::endurance_aware().with_max_writes(budget),
            );
            if let Some((prev_budget, prev_r)) = previous {
                assert!(
                    r.num_rrams() >= prev_r,
                    "{b}: W={budget} used fewer cells ({}) than W={prev_budget} ({prev_r})",
                    r.num_rrams()
                );
            }
            previous = Some((budget, r.num_rrams()));
        }
    }
}

#[test]
fn budgeted_max_write_caps_the_observed_maximum() {
    // The W column caps max writes at W (Table I/III relationship).
    let mig = Benchmark::Cavlc.build();
    let unbounded = compile(&mig, &CompileOptions::endurance_aware());
    let natural_max = unbounded.write_stats().max;
    assert!(natural_max > 10, "cavlc should naturally exceed W=10");
    let bounded = compile(&mig, &CompileOptions::endurance_aware().with_max_writes(10));
    assert!(bounded.write_stats().max <= 10);
}

#[test]
fn endurance_exhaustion_fails_naive_before_managed() {
    // Failure injection: with a small physical endurance, the naive
    // program's hot cell dies after few executions while the managed one
    // keeps going.
    let mig = Benchmark::Priority.build();
    let naive = compile(&mig, &CompileOptions::naive());
    let managed = compile(&mig, &CompileOptions::endurance_aware().with_max_writes(10));

    let naive_max = naive.write_stats().max;
    let managed_max = managed.write_stats().max;
    assert!(
        naive_max > managed_max,
        "naive hot cell ({naive_max}) should exceed managed maximum ({managed_max})"
    );

    // Pick an endurance budget between one naive execution and one managed
    // execution's worth of headroom.
    let endurance = managed_max * 3;
    assert!(
        endurance < naive_max,
        "test premise: naive dies within one run"
    );

    let inputs = vec![false; mig.num_inputs()];

    let mut machine = Machine::with_endurance(&naive.program, endurance);
    machine
        .load_inputs(&naive.program, &inputs)
        .expect("input preload is wear-free");
    let err = machine
        .execute(&naive.program)
        .expect_err("naive must exhaust a cell");
    let msg = err.to_string();
    assert!(!msg.is_empty(), "error message should describe the failure");

    let mut machine = Machine::with_endurance(&managed.program, endurance);
    for _ in 0..3 {
        let out = machine
            .run(&managed.program, &inputs)
            .expect("managed program survives three executions");
        assert_eq!(out, mig.evaluate(&inputs));
    }
}

#[test]
fn lifetime_model_matches_write_counts() {
    let mig = Benchmark::Dec.build();
    let r = compile(&mig, &CompileOptions::endurance_aware());
    let counts = r.program.write_counts();
    let max = counts.iter().max().copied().unwrap();
    let endurance = 1000u64;
    let expect = endurance / max;
    assert_eq!(
        executions_until_failure(counts.iter().copied(), endurance),
        expect
    );
}

#[test]
fn write_stats_cover_all_cells_including_inputs() {
    // Stats must be over *all* allocated cells — inputs are preloaded
    // wear-free, so min is typically 0 for input-rich circuits.
    let mig = Benchmark::Dec.build();
    let r = compile(&mig, &CompileOptions::naive());
    let stats = r.write_stats();
    assert_eq!(stats.cells, r.num_rrams());
    assert_eq!(stats.total as usize, r.num_instructions());
}

#[test]
fn rewriting_reduces_instructions_on_synthesised_circuits() {
    // Paper Table II: endurance-aware rewriting cuts #I by roughly a third
    // on synthesis-style circuits.
    for &b in &[Benchmark::Cavlc, Benchmark::Router, Benchmark::Ctrl] {
        let mig = b.build();
        let naive = compile(&mig, &CompileOptions::naive());
        let rewritten = compile(&mig, &CompileOptions::endurance_rewriting());
        assert!(
            rewritten.num_instructions() < naive.num_instructions(),
            "{b}: rewriting should reduce #I ({} vs {})",
            rewritten.num_instructions(),
            naive.num_instructions()
        );
    }
}

#[test]
fn fleet_serial_and_parallel_runs_are_identical() {
    let mig = Benchmark::Ctrl.build();
    let heavy = compile(&mig, &CompileOptions::naive());
    let light = compile(&mig, &CompileOptions::endurance_aware());
    let inputs: Vec<bool> = (0..mig.num_inputs()).map(|i| i % 3 == 0).collect();
    let jobs = Job::alternating(&heavy.program, &light.program, &inputs, 20);

    for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LeastWorn] {
        let mut serial = Fleet::new(FleetConfig::new(4).with_policy(policy));
        let out_serial = serial.run_batch(&jobs, 1).expect("serial run");
        let mut parallel = Fleet::new(FleetConfig::new(4).with_policy(policy));
        let out_parallel = parallel.run_batch(&jobs, 0).expect("parallel run");

        // Byte-identical outputs, in job order, matching the MIG.
        assert_eq!(out_serial, out_parallel, "{policy:?}");
        let expect = mig.evaluate(&inputs);
        for out in &out_serial {
            assert_eq!(out, &expect, "{policy:?}");
        }
        // Identical per-cell wear on every array.
        for i in 0..4 {
            assert_eq!(
                serial.array(i).write_counts(),
                parallel.array(i).write_counts(),
                "{policy:?} array {i}"
            );
        }
    }
}

#[test]
fn simd_batched_fleet_matches_unbatched_dispatch() {
    // SIMD lane-batching is a pure execution optimisation: on the same
    // alternating heavy/light workload it must produce byte-identical
    // outputs serial vs parallel, and the fleet's wear bookkeeping —
    // per-cell counts, per-array stats, FleetStats totals — must match
    // the unbatched dispatcher exactly (wear is counted per *logical*
    // write, so packing 64 jobs into one word pass changes nothing).
    let mig = Benchmark::Ctrl.build();
    let heavy = compile(&mig, &CompileOptions::naive());
    let light = compile(&mig, &CompileOptions::endurance_aware());
    let inputs: Vec<bool> = (0..mig.num_inputs()).map(|i| i % 3 == 0).collect();
    let jobs = Job::alternating(&heavy.program, &light.program, &inputs, 20);

    for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LeastWorn] {
        let mut scalar = Fleet::new(FleetConfig::new(4).with_policy(policy));
        let out_scalar = scalar.run_batch(&jobs, 1).expect("unbatched run");
        let mut serial = Fleet::new(FleetConfig::new(4).with_policy(policy));
        let out_serial = serial.run_batch_simd(&jobs, 1).expect("simd serial run");
        let mut parallel = Fleet::new(FleetConfig::new(4).with_policy(policy));
        let out_parallel = parallel
            .run_batch_simd(&jobs, 0)
            .expect("simd parallel run");

        assert_eq!(out_serial, out_parallel, "{policy:?}");
        assert_eq!(out_serial, out_scalar, "{policy:?}");
        let expect = mig.evaluate(&inputs);
        for out in &out_serial {
            assert_eq!(out, &expect, "{policy:?}");
        }
        // Wear totals and distributions match the unbatched dispatcher.
        assert_eq!(serial.stats().wear, scalar.stats().wear, "{policy:?}");
        assert_eq!(parallel.stats().wear, scalar.stats().wear, "{policy:?}");
        for i in 0..4 {
            assert_eq!(
                serial.array(i).write_counts(),
                scalar.array(i).write_counts(),
                "{policy:?} array {i} serial"
            );
            assert_eq!(
                parallel.array(i).write_counts(),
                scalar.array(i).write_counts(),
                "{policy:?} array {i} parallel"
            );
        }
    }
}

#[test]
fn least_worn_minimizes_max_array_wear_vs_round_robin() {
    // Periodic heavy/light traffic: round-robin pins every heavy job on
    // the same arrays; least-worn must strictly reduce the hottest
    // array's total writes on each of these benchmarks.
    for &b in &[Benchmark::Cavlc, Benchmark::Ctrl, Benchmark::Router] {
        let mig = b.build();
        let heavy = compile(&mig, &CompileOptions::naive());
        let light = compile(&mig, &CompileOptions::endurance_aware());
        let inputs = vec![false; mig.num_inputs()];
        let jobs = Job::alternating(&heavy.program, &light.program, &inputs, 24);

        let max_total = |policy: DispatchPolicy| -> u64 {
            let mut fleet = Fleet::new(FleetConfig::new(4).with_policy(policy));
            fleet.run_batch(&jobs, 0).expect("no budget configured");
            fleet.stats().wear.array_totals.max
        };
        let rr = max_total(DispatchPolicy::RoundRobin);
        let lw = max_total(DispatchPolicy::LeastWorn);
        assert!(
            lw < rr,
            "{b}: least-worn max {lw} should beat round-robin max {rr}"
        );
    }
}

#[test]
fn fleet_write_budget_retires_arrays_without_further_writes() {
    let mig = Benchmark::Int2float.build();
    let program = compile(&mig, &CompileOptions::endurance_aware()).program;
    let cost = program.num_instructions() as u64;
    let inputs = vec![false; mig.num_inputs()];
    // Budget fits exactly two jobs per array, with nothing left over, so
    // every array retires once its second job lands.
    let budget = 2 * cost;
    let mut fleet = Fleet::new(FleetConfig::new(3).with_write_budget(budget));

    // Capacity: 3 arrays × 2 jobs. Run them one batch at a time so
    // retirement is observable between batches.
    for _ in 0..6 {
        fleet
            .run_batch(&[Job::new(&program, &inputs)], 1)
            .expect("within fleet capacity");
    }
    assert_eq!(fleet.remaining_jobs(cost), Some(0));
    let frozen: Vec<Vec<u64>> = (0..3).map(|i| fleet.array(i).write_counts()).collect();
    for i in 0..3 {
        assert!(fleet.is_retired(i), "array {i} must be retired at budget");
        assert!(
            fleet.total_writes(i) <= budget,
            "array {i} exceeded its write budget"
        );
    }

    // The next job cannot be placed, and no retired array gains a write.
    let err = fleet
        .run_batch(&[Job::new(&program, &inputs)], 1)
        .unwrap_err();
    assert!(
        matches!(err, rlim::plim::FleetError::Exhausted { job: 0, .. }),
        "{err:?}"
    );
    for (i, counts) in frozen.iter().enumerate() {
        assert_eq!(
            &fleet.array(i).write_counts(),
            counts,
            "retired array {i} was written"
        );
    }
}

#[test]
fn fleet_outlives_single_crossbar_under_endurance_limit() {
    // The examples/fleet_sim.rs claim, asserted: with a physical per-cell
    // endurance, a least-worn fleet of 4 serves ~4x the jobs one array
    // serves before the first cell failure.
    let mig = Benchmark::Ctrl.build();
    let heavy = compile(&mig, &CompileOptions::naive());
    let light = compile(&mig, &CompileOptions::endurance_aware());
    let inputs = vec![false; mig.num_inputs()];

    let jobs_until_failure = |arrays: usize| -> usize {
        let mut fleet = Fleet::new(
            FleetConfig::new(arrays)
                .with_policy(DispatchPolicy::LeastWorn)
                .with_endurance(1_000),
        );
        let jobs = Job::alternating(&heavy.program, &light.program, &inputs, 2);
        for round in 0..10_000 {
            if fleet.run_batch(&[jobs[round % 2]], 1).is_err() {
                return round;
            }
        }
        panic!("workload never exhausted the endurance limit");
    };

    let single = jobs_until_failure(1);
    let fleet = jobs_until_failure(4);
    // ≥ 3.5x: the ideal 4x minus batching boundary effects.
    assert!(
        2 * fleet >= 7 * single,
        "fleet of 4 ({fleet} jobs) should serve ~4x one array ({single} jobs)"
    );
}

#[test]
fn technique_stack_improves_write_balance() {
    // The paper's headline: full-management stdev beats naive stdev on the
    // write-unbalanced circuits. (Already-balanced tiny circuits can
    // regress — the paper's own `dec` row shows -23.91% — so `dec` and
    // `int2float` are deliberately excluded here.)
    for &b in &[Benchmark::Cavlc, Benchmark::Priority, Benchmark::Router] {
        let mig = b.build();
        let naive = compile(&mig, &CompileOptions::naive()).write_stats();
        let full = compile(&mig, &CompileOptions::endurance_aware()).write_stats();
        assert!(
            full.stdev < naive.stdev,
            "{b}: full management should improve stdev ({:.2} vs {:.2})",
            full.stdev,
            naive.stdev
        );
    }
}
