//! Cross-crate checks of the IMP baseline against the RM3 flow: both
//! compute the same functions, and the paper's §II claims about their
//! relative costs hold on the benchmark suite.

use rlim::benchmarks::Benchmark;
use rlim::compiler::{compile, CompileOptions};
use rlim::imp::{synthesize, ImpMachine, ImpSynthOptions};
use rlim::plim::Machine;
use rlim::rram::WriteStats;
use rlim_testkit::Oracle;

#[test]
fn imp_and_rm3_agree_on_benchmarks() {
    // The testkit oracle drives both backends (exhaustively for int2float
    // and ctrl, sampled for router) under every compiler preset.
    let oracle = Oracle::new().with_sample_rounds(8).with_seed(0x1111);
    for &b in &[Benchmark::Int2float, Benchmark::Ctrl, Benchmark::Router] {
        oracle.verify(&b.build(), b.name());
    }
}

#[test]
fn rm3_needs_fewer_operations_than_imp() {
    // §II / [19]: RM3 beats IMP on operation count; on these circuits the
    // factor is at least 1.5× everywhere.
    for &b in Benchmark::small() {
        let mig = b.build();
        let imp = synthesize(&mig, &ImpSynthOptions::min_write());
        let rm3 = compile(&mig, &CompileOptions::min_write().with_effort(0));
        assert!(
            imp.num_instructions() as f64 >= 1.5 * rm3.num_instructions() as f64,
            "{b}: IMP {} ops vs RM3 {} instructions",
            imp.num_instructions(),
            rm3.num_instructions()
        );
    }
}

#[test]
fn imp_concentrates_writes_harder_than_rm3() {
    // The work-cell effect: under the same allocation policy, IMP's
    // maximum per-cell write count is at least as high as RM3's on every
    // small benchmark (strictly higher on most).
    let mut strictly_higher = 0;
    for &b in Benchmark::small() {
        let mig = b.build();
        let imp = synthesize(&mig, &ImpSynthOptions::min_write());
        let rm3 = compile(&mig, &CompileOptions::min_write().with_effort(0));
        let imp_stats = WriteStats::from_counts(imp.write_counts());
        let rm3_stats = rm3.write_stats();
        assert!(
            imp_stats.max >= rm3_stats.max,
            "{b}: IMP max {} vs RM3 max {}",
            imp_stats.max,
            rm3_stats.max
        );
        if imp_stats.max > rm3_stats.max {
            strictly_higher += 1;
        }
    }
    assert!(strictly_higher >= 4, "IMP should be strictly worse on most");
}

#[test]
fn imp_endurance_failure_injection() {
    // With a tight endurance limit the IMP program dies on its hottest
    // work cell; the RM3 program with the same limit survives.
    let mig = Benchmark::Int2float.build();
    let imp = synthesize(&mig, &ImpSynthOptions::min_write());
    let rm3 = compile(&mig, &CompileOptions::min_write().with_effort(0));
    let imp_max = WriteStats::from_counts(imp.write_counts()).max;
    let rm3_max = rm3.write_stats().max;
    assert!(imp_max > rm3_max, "test premise");
    let limit = rm3_max; // enough for RM3, not for IMP

    let inputs = vec![false; mig.num_inputs()];
    let mut imp_machine = ImpMachine::with_endurance(&imp, limit);
    assert!(
        imp_machine.run(&imp, &inputs).is_err(),
        "IMP exhausts a cell"
    );

    let mut plim_machine = Machine::with_endurance(&rm3.program, limit);
    assert!(
        plim_machine.run(&rm3.program, &inputs).is_ok(),
        "RM3 survives"
    );
}
