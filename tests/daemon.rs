//! Black-box protocol suite for `rlimd`, the compile-job daemon.
//!
//! Every test here talks to a real daemon over a real TCP socket — the
//! same path `rlim report --remote` takes — and checks the contract
//! from the outside:
//!
//! * concurrent clients receive responses byte-identical to a direct
//!   [`Service::run_batch`];
//! * a repeated spec is served from the compile cache with identical
//!   bytes (modulo the `cached` flag) and a frozen miss counter;
//! * a full queue answers structured rejections while in-flight jobs
//!   run to completion;
//! * `shutdown` drains in-flight work, then the socket refuses
//!   connections;
//! * random `JobSpec`s round-trip exactly through the wire encoding,
//!   and garbage lines get structured errors without killing workers.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rlim::benchmarks::Benchmark;
use rlim::compiler::CompileOptions;
use rlim::daemon::{
    decode_request, decode_response, encode_request, serve, Client, DaemonConfig, Request, Response,
};
use rlim::service::{ChaosSpec, FleetSpec};
use rlim::{BackendKind, JobSpec, Service};

fn daemon(workers: usize, queue_depth: usize) -> rlim::daemon::DaemonHandle {
    serve(DaemonConfig {
        workers,
        queue_depth,
        ..Default::default()
    })
    .expect("daemon binds an ephemeral port")
}

/// Polls the daemon's metrics until `ready` holds (the black-box way to
/// wait for workers to pick up or queue jobs).
fn wait_for(
    addr: std::net::SocketAddr,
    what: &str,
    ready: impl Fn(&rlim::daemon::MetricsSnapshot) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut client = Client::connect(addr).unwrap();
    loop {
        let snapshot = client.metrics().unwrap();
        if ready(&snapshot) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A job slow enough (seconds of fleet simulation) to keep a worker
/// busy while other connections race against it.
fn slow_spec() -> JobSpec {
    JobSpec::benchmark(Benchmark::Ctrl)
        .with_options(CompileOptions::naive())
        .with_fleet(FleetSpec::new(1).with_jobs(64_000))
}

fn submit_on_thread(
    addr: std::net::SocketAddr,
    spec: JobSpec,
) -> std::thread::JoinHandle<Response> {
    std::thread::spawn(move || {
        Client::connect(addr)
            .unwrap()
            .submit(&spec)
            .expect("submission completes")
    })
}

// ---- (a) concurrency: daemon == direct service, byte for byte ----------

/// Eight concurrent clients with eight distinct specs receive exactly
/// the bytes a direct batch run would serialize — the daemon's worker
/// pool, queue and cache are invisible to correctness.
#[test]
fn concurrent_clients_match_run_batch_byte_identical() {
    let specs = vec![
        JobSpec::benchmark(Benchmark::Ctrl).with_options(CompileOptions::naive()),
        JobSpec::benchmark(Benchmark::Int2float).with_options(CompileOptions::naive()),
        JobSpec::benchmark(Benchmark::Dec)
            .with_options(CompileOptions::naive())
            .with_program_text(true),
        JobSpec::benchmark(Benchmark::Router).with_options(CompileOptions::naive()),
        JobSpec::benchmark(Benchmark::Ctrl)
            .with_options(CompileOptions::endurance_aware().with_effort(1)),
        JobSpec::benchmark(Benchmark::Ctrl)
            .with_options(CompileOptions::naive())
            .with_backend(BackendKind::Imp),
        JobSpec::benchmark(Benchmark::Int2float)
            .with_options(CompileOptions::min_write().with_effort(1)),
        JobSpec::benchmark(Benchmark::Dec)
            .with_options(CompileOptions::naive())
            .with_projection_arrays(2),
    ];
    let direct: Vec<String> = Service::new()
        .with_threads(1)
        .run_batch(&specs)
        .unwrap()
        .iter()
        .map(|r| r.to_json().render_compact())
        .collect();

    let handle = daemon(4, 16);
    let addr = handle.addr();
    let threads: Vec<_> = specs
        .iter()
        .map(|spec| submit_on_thread(addr, spec.clone()))
        .collect();
    let remote: Vec<String> = threads
        .into_iter()
        .map(|t| match t.join().unwrap() {
            Response::Report(line) => line.line,
            other => panic!("expected a report, got {other:?}"),
        })
        .collect();

    assert_eq!(remote, direct);
    handle.shutdown();
    let last = handle.join();
    assert_eq!(last.jobs_served, 8);
    assert_eq!(last.jobs_failed, 0);
}

// ---- (b) the compile cache --------------------------------------------

/// A repeated spec flips `cached` to `true` with otherwise identical
/// report bytes, and the miss counter stays frozen — the second answer
/// never recompiled.
#[test]
fn repeat_jobs_hit_the_cache_with_identical_bytes() {
    let handle = daemon(2, 8);
    let addr = handle.addr();
    let spec = JobSpec::benchmark(Benchmark::Ctrl).with_options(CompileOptions::naive());

    let mut client = Client::connect(addr).unwrap();
    let first = match client.submit(&spec).unwrap() {
        Response::Report(line) => line.line,
        other => panic!("{other:?}"),
    };
    assert!(first.contains("\"cached\":false"), "{first}");
    let after_miss = client.metrics().unwrap();
    assert_eq!((after_miss.cache.misses, after_miss.cache.hits), (1, 0));

    let second = match client.submit(&spec).unwrap() {
        Response::Report(line) => line.line,
        other => panic!("{other:?}"),
    };
    assert_eq!(
        second,
        first.replace("\"cached\":false", "\"cached\":true"),
        "a hit must be byte-identical modulo the cached flag"
    );
    let after_hit = client.metrics().unwrap();
    assert_eq!(
        (after_hit.cache.misses, after_hit.cache.hits),
        (1, 1),
        "the miss counter must freeze on repeats"
    );

    // Backend-class sharing: hosted-rm3 executes the same compiled
    // program, so it hits rm3's entry — with its own backend label.
    let hosted = match client
        .submit(&spec.clone().with_backend(BackendKind::HostedRm3))
        .unwrap()
    {
        Response::Report(line) => line.line,
        other => panic!("{other:?}"),
    };
    assert!(hosted.contains("\"cached\":true"), "{hosted}");
    assert!(hosted.contains("\"backend\":\"hosted-rm3\""), "{hosted}");
    assert_eq!(client.metrics().unwrap().cache.misses, 1);

    handle.shutdown();
    handle.join();
}

/// Correctness regression: the cache key includes the chaos rider. Two
/// specs differing only in `--fault-seed` must miss each other's
/// entries — a fault-injected fleet is never served a different seed's
/// report.
#[test]
fn fault_seeds_never_share_cache_entries() {
    let handle = daemon(2, 8);
    let addr = handle.addr();
    let chaos_spec = |seed: u64| {
        JobSpec::benchmark(Benchmark::Ctrl)
            .with_options(CompileOptions::naive())
            .with_fleet(
                FleetSpec::new(2)
                    .with_jobs(8)
                    .with_chaos(ChaosSpec::new(seed)),
            )
    };

    let mut client = Client::connect(addr).unwrap();
    for seed in [1, 2] {
        match client.submit(&chaos_spec(seed)).unwrap() {
            Response::Report(line) => {
                assert!(line.line.contains("\"cached\":false"), "{}", line.line);
                assert!(
                    line.line.contains(&format!("\"seed\":{seed}")),
                    "{}",
                    line.line
                );
            }
            other => panic!("{other:?}"),
        }
    }
    let stats = client.metrics().unwrap().cache;
    assert_eq!((stats.misses, stats.hits), (2, 0), "seeds must not collide");

    // The same seed does hit its own entry.
    match client.submit(&chaos_spec(1)).unwrap() {
        Response::Report(line) => assert!(line.line.contains("\"cached\":true")),
        other => panic!("{other:?}"),
    }
    let stats = client.metrics().unwrap().cache;
    assert_eq!((stats.misses, stats.hits), (2, 1));

    // A fault-free fleet never matches a chaos entry either.
    let fault_free = JobSpec::benchmark(Benchmark::Ctrl)
        .with_options(CompileOptions::naive())
        .with_fleet(FleetSpec::new(2).with_jobs(8));
    match client.submit(&fault_free).unwrap() {
        Response::Report(line) => assert!(line.line.contains("\"cached\":false")),
        other => panic!("{other:?}"),
    }

    handle.shutdown();
    handle.join();
}

// ---- (c) admission control ---------------------------------------------

/// With one worker and a depth-1 queue, a third job is refused with a
/// structured `rejected` response while both in-flight jobs complete
/// normally.
#[test]
fn full_queue_rejects_without_disturbing_in_flight_jobs() {
    let handle = daemon(1, 1);
    let addr = handle.addr();

    let running = submit_on_thread(addr, slow_spec());
    wait_for(addr, "the worker to go busy", |m| m.workers_busy == 1);

    let queued_spec =
        JobSpec::benchmark(Benchmark::Int2float).with_options(CompileOptions::naive());
    let queued = submit_on_thread(addr, queued_spec.clone());
    wait_for(addr, "the queue to fill", |m| m.queue_depth == 1);

    // The queue is full: an immediate structured rejection.
    let overflow = JobSpec::benchmark(Benchmark::Dec).with_options(CompileOptions::naive());
    match Client::connect(addr).unwrap().submit(&overflow).unwrap() {
        Response::Rejected {
            queue_depth,
            queue_capacity,
            message,
        } => {
            assert_eq!((queue_depth, queue_capacity), (1, 1));
            assert_eq!(message, "job queue full");
        }
        other => panic!("expected a rejection, got {other:?}"),
    }

    // Neither in-flight job noticed: both complete with real reports,
    // byte-identical to direct runs.
    let slow_direct = Service::new()
        .with_threads(1)
        .run(&slow_spec())
        .unwrap()
        .to_json()
        .render_compact();
    let queued_direct = Service::new()
        .with_threads(1)
        .run(&queued_spec)
        .unwrap()
        .to_json()
        .render_compact();
    match running.join().unwrap() {
        Response::Report(line) => assert_eq!(line.line, slow_direct),
        other => panic!("{other:?}"),
    }
    match queued.join().unwrap() {
        Response::Report(line) => assert_eq!(line.line, queued_direct),
        other => panic!("{other:?}"),
    }

    handle.shutdown();
    let last = handle.join();
    assert_eq!(last.jobs_rejected, 1);
    assert_eq!(last.jobs_served, 2);
    assert_eq!(last.jobs_failed, 0);
}

// ---- (d) graceful shutdown ---------------------------------------------

/// `shutdown` acknowledges, lets the in-flight job finish and deliver
/// its report, then the socket refuses new connections.
#[test]
fn shutdown_drains_in_flight_work_then_refuses_connections() {
    let handle = daemon(1, 4);
    let addr = handle.addr();

    let running = submit_on_thread(addr, slow_spec());
    wait_for(addr, "the worker to go busy", |m| m.workers_busy == 1);

    let mut control = Client::connect(addr).unwrap();
    control.shutdown().expect("shutdown acknowledged");
    // Once draining, health reports the daemon is no longer accepting
    // and fresh jobs on a live connection are refused.
    let health = control.healthz().unwrap();
    assert!(!health.accepting);
    match control
        .submit(&JobSpec::benchmark(Benchmark::Ctrl).with_options(CompileOptions::naive()))
        .unwrap()
    {
        Response::Rejected { message, .. } => assert_eq!(message, "daemon is draining"),
        other => panic!("expected a drain rejection, got {other:?}"),
    }

    // The in-flight job still completes and delivers its bytes.
    match running.join().unwrap() {
        Response::Report(line) => {
            assert!(line.line.contains("\"fleet\":{"), "{}", line.line);
        }
        other => panic!("{other:?}"),
    }

    let last = handle.join();
    assert_eq!(last.jobs_served, 1);
    // The listener is gone: connections are refused.
    assert!(
        Client::connect(addr).is_err(),
        "socket must refuse connections after shutdown"
    );
}

// ---- wire round-trip and framing fuzz ----------------------------------

fn options_strategy() -> impl Strategy<Value = CompileOptions> {
    (
        prop_oneof![
            Just("naive"),
            Just("plim21"),
            Just("min-write"),
            Just("ea-rewriting"),
            Just("endurance-aware"),
        ],
        (any::<bool>(), 0usize..10),
        (any::<bool>(), 3u64..200),
        any::<bool>(),
    )
        .prop_map(
            |(preset, (some_e, effort), (some_w, max_writes), peephole)| {
                let mut options = CompileOptions::preset(preset).expect("canonical preset");
                if some_e {
                    options = options.with_effort(effort);
                }
                if some_w {
                    options = options.with_max_writes(max_writes);
                }
                options.with_peephole(peephole)
            },
        )
}

fn chaos_strategy() -> impl Strategy<Value = ChaosSpec> {
    (
        any::<u64>(),
        0usize..3,
        0usize..3,
        0usize..3,
        any::<bool>(),
        0usize..16,
        1u64..100,
    )
        .prop_map(|(seed, m, s, p, recovery, spares, max_faults)| {
            // Grid floats chosen to be exact at the wire's precisions
            // (median: 1 decimal, sigma/stuck: 4 decimals).
            let medians = [512.0, 4096.0, 100.5];
            let sigmas = [0.25, 0.1234, 0.5];
            let stucks = [0.01, 0.0005, 0.375];
            ChaosSpec::new(seed)
                .with_endurance_median(medians[m])
                .with_endurance_sigma(sigmas[s])
                .with_stuck_probability(stucks[p])
                .with_recovery(recovery)
                .with_spares(spares)
                .with_max_faults(max_faults)
        })
}

fn fleet_strategy() -> impl Strategy<Value = FleetSpec> {
    (
        1usize..6,
        1usize..40,
        any::<bool>(),
        (any::<bool>(), 1u64..100_000),
        (any::<bool>(), any::<u64>()),
        any::<bool>(),
        (any::<bool>(), chaos_strategy()).prop_map(|(some, c)| some.then_some(c)),
    )
        .prop_map(
            |(arrays, jobs, round_robin, (some_b, budget), (some_s, seed), simd, chaos)| {
                let mut fleet = FleetSpec::new(arrays).with_jobs(jobs).with_simd(simd);
                if round_robin {
                    fleet = fleet.with_dispatch(rlim::plim::DispatchPolicy::RoundRobin);
                }
                if some_b {
                    fleet = fleet.with_write_budget(budget);
                }
                if some_s {
                    fleet = fleet.with_input_seed(seed);
                }
                if let Some(chaos) = chaos {
                    fleet = fleet.with_chaos(chaos);
                }
                fleet
            },
        )
}

fn spec_strategy() -> impl Strategy<Value = JobSpec> {
    (
        0usize..18,
        any::<bool>(),
        prop_oneof![
            Just(BackendKind::Rm3),
            Just(BackendKind::HostedRm3),
            Just(BackendKind::WideRm3),
            Just(BackendKind::Imp),
        ],
        options_strategy(),
        (any::<bool>(), fleet_strategy()).prop_map(|(some, f)| some.then_some(f)),
        any::<bool>(),
        1usize..9,
    )
        .prop_map(|(bench, blif, backend, options, fleet, program, arrays)| {
            let benchmark = Benchmark::all()[bench];
            let mut spec = if blif {
                JobSpec::blif_path(format!("/tmp/{}.blif", benchmark.name()))
            } else {
                JobSpec::benchmark(benchmark)
            };
            spec = spec
                .with_backend(backend)
                .with_options(options)
                .with_program_text(program)
                .with_projection_arrays(arrays);
            if let Some(fleet) = fleet {
                spec = spec.with_fleet(fleet);
            }
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite: `JobSpec → wire line → JobSpec → wire line` is exact —
    /// the wire encoding loses nothing, including fleet/chaos riders
    /// (the proptest mirror of the argv ↔ spec round-trip).
    #[test]
    fn wire_spec_roundtrip_is_exact(spec in spec_strategy()) {
        let line = encode_request(&Request::Job(Box::new(spec.clone())))
            .expect("benchmark/blif specs are wire-expressible");
        let decoded = match decode_request(&line).expect("own encoding decodes") {
            Request::Job(inner) => *inner,
            other => panic!("{other:?}"),
        };
        prop_assert_eq!(&decoded, &spec);
        let again = encode_request(&Request::Job(Box::new(decoded))).unwrap();
        prop_assert_eq!(line, again);
    }
}

/// One long-lived daemon shared by the framing fuzz (ephemeral port,
/// lives for the test process).
fn fuzz_daemon_addr() -> std::net::SocketAddr {
    static ADDR: OnceLock<std::net::SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let handle = serve(DaemonConfig {
            workers: 1,
            ..Default::default()
        })
        .expect("fuzz daemon starts");
        let addr = handle.addr();
        std::mem::forget(handle);
        addr
    })
}

fn garbage_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("{".to_string()),
        Just("[1,2".to_string()),
        Just("nullish".to_string()),
        Just("1e9".to_string()),
        Just("\"half".to_string()),
        Just("{\"verb\":\"warp\"}".to_string()),
        Just("{\"verb\":\"job\"}".to_string()),
        Just("{\"verb\":\"job\",\"spec\":{}}".to_string()),
        Just("{\"verb\":\"metrics\",\"extra\":1}".to_string()),
        Just("{\"verb\":\"job\",\"spec\":null,\"spec\":null}".to_string()),
        // Random printable-ASCII noise.  The leading `\x7f` keeps the line
        // non-blank (blank lines are protocol no-ops) and guarantees the
        // line is not accidentally valid JSON, without needing a filter.
        proptest::collection::vec(32u8..127u8, 0usize..40).prop_map(|bytes| {
            let mut s = String::from("\u{7f}");
            s.extend(bytes.into_iter().map(char::from));
            s
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite: garbage lines never hang a connection or kill a
    /// worker — each gets a structured one-line error, and the daemon
    /// still serves real work on the same socket afterwards.
    #[test]
    fn garbage_lines_get_structured_errors_and_workers_survive(garbage in garbage_strategy()) {
        let addr = fuzz_daemon_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.write_all(garbage.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        prop_assert!(
            reply.starts_with("{\"error\":"),
            "garbage must get a structured error, got {reply:?}"
        );
        match decode_response(reply.trim_end()).unwrap() {
            Response::Error { usage, .. } => prop_assert!(usage),
            other => panic!("{other:?}"),
        }
        // The same connection still speaks the protocol…
        stream.write_all(b"{\"verb\":\"healthz\"}\n").unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        prop_assert!(reply.starts_with("{\"healthz\":"), "{reply}");
    }
}

/// After the fuzz barrage, the worker pool still compiles — no thread
/// died swallowing garbage.
#[test]
fn workers_survive_malformed_specs_that_pass_framing() {
    let addr = fuzz_daemon_addr();
    let mut client = Client::connect(addr).unwrap();
    // A well-framed job whose spec fails validation…
    let line = "{\"verb\":\"job\",\"spec\":{\"source\":{\"benchmark\":\"nonesuch\"},\
\"backend\":\"rm3\",\"options\":{\"rewriting\":null,\"effort\":0,\
\"selection\":\"topological\",\"allocation\":\"lifo\",\"max_writes\":null,\
\"peephole\":false},\"fleet\":null,\"program\":false,\"projection_arrays\":4}}";
    let reply = client.request_line(line).unwrap();
    assert!(reply.starts_with("{\"error\":"), "{reply}");
    // …and a real job right after, on the same daemon, still compiles.
    let spec = JobSpec::benchmark(Benchmark::Ctrl).with_options(CompileOptions::naive());
    match client.submit(&spec).unwrap() {
        Response::Report(line) => assert!(line.line.contains("\"label\":\"ctrl\"")),
        other => panic!("{other:?}"),
    }
}
