//! The service-layer contract: the argv ↔ [`JobSpec`] round-trip, the
//! pinned [`Report`] JSON schema, and the batch determinism guarantee
//! (`run_batch` serial == parallel, order-stable).

use proptest::prelude::*;
use rlim::benchmarks::Benchmark;
use rlim::compiler::CompileOptions;
use rlim::service::json::Json;
use rlim::service::FleetSpec;
use rlim::{BackendKind, JobSpec, Service};
use rlim_cli::{parse_report_spec, report_argv};

// ---- Golden JSON schema ---------------------------------------------------

/// Flattens a JSON value into `path: type` lines, arrays described by
/// their first element. Key order is the serialization order, so the
/// golden below also pins field ordering.
fn schema_lines(value: &Json, path: &str, out: &mut Vec<String>) {
    match value {
        Json::Null => out.push(format!("{path}: null")),
        Json::Bool(_) => out.push(format!("{path}: bool")),
        Json::UInt(_) | Json::Int(_) => out.push(format!("{path}: int")),
        Json::Float { .. } => out.push(format!("{path}: float")),
        Json::Str(_) => out.push(format!("{path}: string")),
        Json::Array(items) => match items.first() {
            None => out.push(format!("{path}: array(empty)")),
            Some(first) => schema_lines(first, &format!("{path}[]"), out),
        },
        Json::Object(entries) => {
            for (key, value) in entries {
                schema_lines(value, &format!("{path}.{key}"), out);
            }
        }
    }
}

fn schema_of(report: &rlim::Report) -> String {
    let mut lines = Vec::new();
    schema_lines(&report.to_json(), "$", &mut lines);
    lines.join("\n")
}

/// The pinned schema of a plain (fleet-less, listing-less) report — what
/// `rlim report --json <benchmark>` emits. Bump
/// `rlim::service::REPORT_SCHEMA_VERSION` when this changes.
const REPORT_SCHEMA: &str = "\
$.schema: int
$.label: string
$.backend: string
$.policy.preset: string
$.policy.rewriting: null
$.policy.selection: string
$.policy.allocation: string
$.policy.effort: int
$.policy.max_writes: null
$.policy.peephole: bool
$.policy.copy_reuse: bool
$.policy.esat: bool
$.policy.esat_nodes: int
$.policy.esat_iters: int
$.circuit.inputs: int
$.circuit.outputs: int
$.circuit.gates: int
$.instructions: int
$.rrams: int
$.total_writes: int
$.writes.min: int
$.writes.max: int
$.writes.mean: float
$.writes.stdev: float
$.writes.cells: int
$.lifetime.endurance: int
$.lifetime.single_array_runs: int
$.lifetime.fleet_arrays: int
$.lifetime.fleet_runs: int
$.program: null
$.fleet: null
$.cached: bool";

/// The additional shape when a fleet rider ran and a listing was
/// requested: `program` becomes a string and `fleet` an object.
const FLEET_SCHEMA_SUFFIX: &str = "\
$.program: string
$.fleet.arrays: int
$.fleet.dispatch: string
$.fleet.simd: bool
$.fleet.jobs: int
$.fleet.heavy_instructions: int
$.fleet.light_instructions: int
$.fleet.stream_writes: int
$.fleet.per_array[].jobs: int
$.fleet.per_array[].writes: int
$.fleet.per_array[].retired: bool
$.fleet.wear.arrays: int
$.fleet.wear.array_totals.min: int
$.fleet.wear.array_totals.max: int
$.fleet.wear.array_totals.mean: float
$.fleet.wear.array_totals.stdev: float
$.fleet.wear.array_totals.cells: int
$.fleet.wear.array_peaks.min: int
$.fleet.wear.array_peaks.max: int
$.fleet.wear.array_peaks.mean: float
$.fleet.wear.array_peaks.stdev: float
$.fleet.wear.array_peaks.cells: int
$.fleet.wear.cells.min: int
$.fleet.wear.cells.max: int
$.fleet.wear.cells.mean: float
$.fleet.wear.cells.stdev: float
$.fleet.wear.cells.cells: int
$.fleet.retired: int
$.fleet.remaining_jobs: int
$.fleet.first_retirement_horizon: int
$.fleet.fault: null";

/// The chaos-mode expansion of that trailing `fault` null.
const CHAOS_SCHEMA_SUFFIX: &str = "\
$.fleet.fault.seed: int
$.fleet.fault.endurance_median: float
$.fleet.fault.endurance_sigma: float
$.fleet.fault.stuck_probability: float
$.fleet.fault.recovery: bool
$.fleet.fault.faults: int
$.fleet.fault.worn: int
$.fleet.fault.stuck: int
$.fleet.fault.remaps: int
$.fleet.fault.retirements: int
$.fleet.fault.broken_cells: int
$.fleet.fault.events[]: string";

/// The acceptance gate: `rlim report --json` on `div` matches the pinned
/// schema, and the schema is benchmark-independent.
#[test]
fn report_json_schema_is_pinned_on_div() {
    let spec = JobSpec::benchmark(Benchmark::Div).with_options(CompileOptions::naive());
    let report = Service::new().run(&spec).unwrap();
    assert_eq!(schema_of(&report), REPORT_SCHEMA);

    // The same schema serves every benchmark; a rewriting preset only
    // turns the `rewriting` null into a string.
    let other = JobSpec::benchmark(Benchmark::Int2float)
        .with_options(CompileOptions::endurance_aware().with_effort(1));
    let report = Service::new().run(&other).unwrap();
    assert_eq!(
        schema_of(&report),
        REPORT_SCHEMA.replace("$.policy.rewriting: null", "$.policy.rewriting: string")
    );
}

#[test]
fn report_json_schema_with_fleet_and_program() {
    let spec = JobSpec::benchmark(Benchmark::Ctrl)
        .with_options(CompileOptions::naive())
        .with_program_text(true)
        .with_fleet(
            FleetSpec::new(2)
                .with_jobs(6)
                .with_write_budget(100_000)
                .with_input_seed(7),
        );
    let report = Service::new().run(&spec).unwrap();
    // The base schema with its trailing `program`/`fleet` nulls replaced
    // by the expanded shapes.
    let base: Vec<&str> = REPORT_SCHEMA.lines().collect();
    assert_eq!(
        base[base.len() - 3..],
        ["$.program: null", "$.fleet: null", "$.cached: bool"]
    );
    let expect = format!(
        "{}\n{}\n$.cached: bool",
        base[..base.len() - 3].join("\n"),
        FLEET_SCHEMA_SUFFIX
    );
    assert_eq!(schema_of(&report), expect);
}

/// Chaos mode expands the fleet's trailing `fault` null into the fault
/// summary object (seed, fault-model parameters, detection/recovery
/// counters, and the rendered event log).
#[test]
fn report_json_schema_with_chaos_fleet() {
    let chaos = rlim::service::ChaosSpec::new(7)
        .with_endurance_median(160.0)
        .with_endurance_sigma(0.3)
        .with_stuck_probability(0.02);
    let spec = JobSpec::benchmark(Benchmark::Ctrl)
        .with_options(CompileOptions::endurance_aware().with_effort(1))
        .with_program_text(true)
        .with_fleet(FleetSpec::new(4).with_jobs(24).with_chaos(chaos));
    let report = Service::new().run(&spec).unwrap();
    let fault = report
        .fleet
        .as_ref()
        .and_then(|f| f.fault.as_ref())
        .expect("chaos fleet records a fault summary");
    assert!(!fault.events.is_empty(), "median-160 devices fault");
    let base: Vec<&str> = REPORT_SCHEMA.lines().collect();
    // Endurance-aware presets name a rewriting algorithm, the unbudgeted
    // fleet has null horizons, and chaos expands the `fault` null.
    let expect = format!(
        "{}\n{}\n$.cached: bool",
        base[..base.len() - 3].join("\n"),
        FLEET_SCHEMA_SUFFIX
            .replace(
                "$.fleet.remaining_jobs: int",
                "$.fleet.remaining_jobs: null"
            )
            .replace(
                "$.fleet.first_retirement_horizon: int",
                "$.fleet.first_retirement_horizon: null"
            )
            .replace("$.fleet.fault: null", CHAOS_SCHEMA_SUFFIX)
    )
    .replace("$.policy.rewriting: null", "$.policy.rewriting: string");
    assert_eq!(schema_of(&report), expect);
}

/// The exact `rlim report --json` text for a tiny deterministic job —
/// freezes value formatting (float precision, null rendering, nesting),
/// complementing the key/type pin above.
#[test]
fn report_json_golden_document() {
    let spec = JobSpec::benchmark(Benchmark::Int2float).with_options(CompileOptions::naive());
    let report = Service::new().run(&spec).unwrap();
    let json = report.to_json_string();
    for needle in [
        "\"schema\": 6,\n",
        "\"label\": \"int2float\",\n",
        "\"backend\": \"rm3\",\n",
        "\"preset\": \"naive\",\n",
        "\"rewriting\": null,\n",
        "\"endurance\": 10000000000,\n",
        "\"program\": null,\n",
        "\"fleet\": null,\n",
        "\"cached\": false\n",
    ] {
        assert!(json.contains(needle), "missing {needle:?} in:\n{json}");
    }
    // Serialization is deterministic run to run.
    let again = Service::new().run(&spec).unwrap();
    assert_eq!(json, again.to_json_string());
}

// ---- Bench-DB golden schema -----------------------------------------------

/// The exact on-disk text of a bench-DB record — field order, float
/// precision and indentation are all load-bearing (the DB reader
/// line-scrapes this shape, and committed history must stay
/// diff-stable). Bump deliberately, never accidentally.
const BENCH_DB_GOLDEN: &str = "\
[
  {
    \"run\": 1,
    \"benchmark\": \"div\",
    \"arrays\": 4,
    \"jobs\": 256,
    \"instructions\": 25000000,
    \"scalar_seconds\": 0.125000,
    \"scalar_ops_per_second\": 200000000,
    \"simd_seconds\": 0.005000,
    \"simd_ops_per_second\": 5000000000,
    \"speedup\": 25.000,
    \"max_cell_writes\": 10,
    \"write_stdev\": 1.9700
  }
]
";

fn bench_record(run: u64) -> rlim_bench::db::BenchRecord {
    rlim_bench::db::BenchRecord {
        run,
        benchmark: "div".to_owned(),
        arrays: 4,
        jobs: 256,
        instructions: 25_000_000,
        scalar_seconds: 0.125,
        scalar_ops_per_second: 2.0e8,
        simd_seconds: 0.005,
        simd_ops_per_second: 5.0e9,
        speedup: 25.0,
        max_cell_writes: 10,
        write_stdev: 1.97,
    }
}

/// Satellite: the bench-DB serialization is pinned — one record renders
/// to the exact golden text, and appending is a pure suffix splice that
/// leaves committed records byte-identical and round-trips through the
/// reader.
#[test]
fn bench_db_schema_is_pinned_and_append_only() {
    use rlim_bench::db;

    let path = std::env::temp_dir().join(format!(
        "rlim_service_api_bench_db_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    db::append(&path, &bench_record(1)).unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), BENCH_DB_GOLDEN);

    // Appending keeps every committed byte up to the closing bracket.
    db::append(&path, &bench_record(2)).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.starts_with(BENCH_DB_GOLDEN.strip_suffix("\n]\n").unwrap()));
    assert!(text.ends_with("\n]\n"));

    // And the reader reconstructs exactly what was written.
    let records = db::records(&path).unwrap();
    assert_eq!(records, vec![bench_record(1), bench_record(2)]);
    std::fs::remove_file(&path).unwrap();
}

// ---- Batch determinism ----------------------------------------------------

fn determinism_batch() -> Vec<JobSpec> {
    let mut specs = vec![
        JobSpec::benchmark(Benchmark::Ctrl).with_options(CompileOptions::naive()),
        JobSpec::benchmark(Benchmark::Int2float)
            .with_options(CompileOptions::endurance_aware().with_effort(1)),
        JobSpec::benchmark(Benchmark::Ctrl)
            .with_options(CompileOptions::endurance_aware().with_effort(1))
            .with_backend(BackendKind::Imp),
        JobSpec::benchmark(Benchmark::Dec)
            .with_options(CompileOptions::min_write().with_effort(1))
            .with_program_text(true),
        JobSpec::benchmark(Benchmark::Int2float)
            .with_options(
                CompileOptions::endurance_aware()
                    .with_effort(1)
                    .with_copy_reuse(true),
            )
            .with_program_text(true),
        JobSpec::benchmark(Benchmark::Ctrl).with_options(
            CompileOptions::endurance_aware()
                .with_effort(1)
                .with_esat(true)
                .with_esat_nodes(4_000)
                .with_esat_iters(2),
        ),
    ];
    specs.push(
        JobSpec::benchmark(Benchmark::Router)
            .with_options(CompileOptions::endurance_aware().with_effort(1))
            .with_fleet(FleetSpec::new(3).with_jobs(9).with_input_seed(42)),
    );
    specs
}

/// The tentpole guarantee: a forced-serial batch and a parallel batch
/// serialize byte-identically, in spec order.
#[test]
fn run_batch_serial_equals_parallel_byte_identical() {
    let specs = determinism_batch();
    let serial: Vec<String> = Service::new()
        .with_threads(1)
        .run_batch(&specs)
        .unwrap()
        .iter()
        .map(|r| r.to_json_string())
        .collect();
    for threads in [0, 2, 8] {
        let parallel: Vec<String> = Service::new()
            .with_threads(threads)
            .run_batch(&specs)
            .unwrap()
            .iter()
            .map(|r| r.to_json_string())
            .collect();
        assert_eq!(serial, parallel, "threads={threads}");
    }
    // Order is stable: report labels follow spec order.
    assert_eq!(
        serial
            .iter()
            .map(|json| {
                json.lines()
                    .find(|l| l.contains("\"label\""))
                    .unwrap()
                    .to_string()
            })
            .collect::<Vec<_>>(),
        [
            "  \"label\": \"ctrl\",",
            "  \"label\": \"int2float\",",
            "  \"label\": \"ctrl\",",
            "  \"label\": \"dec\",",
            "  \"label\": \"int2float\",",
            "  \"label\": \"ctrl\",",
            "  \"label\": \"router\","
        ]
    );
}

// ---- argv ↔ JobSpec round-trip -------------------------------------------

fn preset_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("naive"),
        Just("plim21"),
        Just("min-write"),
        Just("ea-rewriting"),
        Just("endurance-aware"),
    ]
}

fn backend_strategy() -> impl Strategy<Value = BackendKind> {
    prop_oneof![
        Just(BackendKind::Rm3),
        Just(BackendKind::HostedRm3),
        Just(BackendKind::WideRm3),
        Just(BackendKind::Imp),
    ]
}

fn spec_strategy() -> impl Strategy<Value = JobSpec> {
    (
        0usize..18,
        preset_strategy(),
        backend_strategy(),
        (any::<bool>(), 0usize..10).prop_map(|(some, v)| some.then_some(v)),
        (any::<bool>(), 3u64..200).prop_map(|(some, v)| some.then_some(v)),
        (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
        (
            any::<bool>(),
            (any::<bool>(), 1u32..100_000),
            (any::<bool>(), 1u32..9),
        ),
        1usize..9,
    )
        .prop_map(
            |(
                bench,
                preset,
                backend,
                effort,
                max_writes,
                (peephole, copy_reuse, program, blif),
                (esat, (esat_nodes_set, esat_nodes), (esat_iters_set, esat_iters)),
                arrays,
            )| {
                let mut options = CompileOptions::preset(preset).expect("canonical preset");
                if let Some(e) = effort {
                    options = options.with_effort(e);
                }
                if let Some(w) = max_writes {
                    options = options.with_max_writes(w);
                }
                options = options
                    .with_peephole(peephole)
                    .with_copy_reuse(copy_reuse)
                    .with_esat(esat);
                if esat_nodes_set {
                    options = options.with_esat_nodes(esat_nodes);
                }
                if esat_iters_set {
                    options = options.with_esat_iters(esat_iters);
                }
                let benchmark = Benchmark::all()[bench];
                let mut spec = if blif {
                    // Path sources round-trip too (the file need not exist
                    // to parse; the service opens it only at run time).
                    JobSpec::blif_path(format!("/tmp/{}.blif", benchmark.name()))
                } else {
                    JobSpec::benchmark(benchmark)
                };
                spec = spec
                    .with_backend(backend)
                    .with_options(options)
                    .with_program_text(program)
                    .with_projection_arrays(arrays);
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite: `argv → JobSpec → argv` is the identity on canonical
    /// argvs, and `JobSpec → argv → JobSpec` reconstructs the spec.
    #[test]
    fn report_argv_roundtrip(spec in spec_strategy()) {
        let argv = report_argv(&spec).expect("canonical specs have an argv");
        prop_assert_eq!(argv[0].as_str(), "report");
        let reparsed = parse_report_spec(&argv[1..]).expect("own argv parses");
        prop_assert_eq!(&reparsed, &spec);
        // Idempotence: the argv of the reparsed spec is the same argv.
        let argv2 = report_argv(&reparsed).expect("still canonical");
        prop_assert_eq!(argv, argv2);
    }
}

// ---- Daemon wire-protocol goldens -----------------------------------------

/// The exact request line for a plain job — one compact JSON object per
/// line is the daemon's entire framing, so these bytes are the protocol.
/// Bump deliberately alongside `REPORT_SCHEMA_VERSION`, never by
/// accident.
const JOB_REQUEST_GOLDEN: &str = "{\"verb\":\"job\",\"spec\":{\
\"source\":{\"benchmark\":\"ctrl\"},\
\"backend\":\"rm3\",\
\"options\":{\"rewriting\":null,\"effort\":0,\"selection\":\"topological\",\
\"allocation\":\"lifo\",\"max_writes\":null,\"peephole\":false,\
\"copy_reuse\":false,\"esat\":false,\"esat_nodes\":50000,\"esat_iters\":4},\
\"fleet\":null,\"program\":false,\"projection_arrays\":4}}";

/// The same spec with every rider attached: fleet, chaos (floats at
/// their report precisions), program listing and projection override.
const CHAOS_REQUEST_GOLDEN: &str = "{\"verb\":\"job\",\"spec\":{\
\"source\":{\"benchmark\":\"ctrl\"},\
\"backend\":\"rm3\",\
\"options\":{\"rewriting\":null,\"effort\":0,\"selection\":\"topological\",\
\"allocation\":\"lifo\",\"max_writes\":null,\"peephole\":false,\
\"copy_reuse\":false,\"esat\":false,\"esat_nodes\":50000,\"esat_iters\":4},\
\"fleet\":{\"arrays\":2,\"jobs\":6,\"dispatch\":\"least-worn\",\
\"write_budget\":null,\"input_seed\":7,\"simd\":false,\
\"chaos\":{\"fault_seed\":3,\"endurance_median\":4096.0,\
\"endurance_sigma\":0.2500,\"stuck_probability\":0.0100,\
\"recovery\":true,\"spares\":8,\"max_faults\":64}},\
\"program\":true,\"projection_arrays\":4}}";

/// Satellite: the wire protocol is pinned byte-for-byte — request lines,
/// control verbs and every response envelope. A daemon and a client
/// from different builds must agree on these exact strings.
#[test]
fn daemon_wire_protocol_is_pinned() {
    use rlim::daemon::{encode_request, Request};

    let plain = JobSpec::benchmark(Benchmark::Ctrl).with_options(CompileOptions::naive());
    assert_eq!(
        encode_request(&Request::Job(Box::new(plain))).unwrap(),
        JOB_REQUEST_GOLDEN
    );

    let chaos = JobSpec::benchmark(Benchmark::Ctrl)
        .with_options(CompileOptions::naive())
        .with_program_text(true)
        .with_fleet(
            FleetSpec::new(2)
                .with_jobs(6)
                .with_input_seed(7)
                .with_chaos(rlim::service::ChaosSpec::new(3)),
        );
    assert_eq!(
        encode_request(&Request::Job(Box::new(chaos))).unwrap(),
        CHAOS_REQUEST_GOLDEN
    );

    assert_eq!(
        encode_request(&Request::Metrics).unwrap(),
        "{\"verb\":\"metrics\"}"
    );
    assert_eq!(
        encode_request(&Request::Healthz).unwrap(),
        "{\"verb\":\"healthz\"}"
    );
    assert_eq!(
        encode_request(&Request::Shutdown).unwrap(),
        "{\"verb\":\"shutdown\"}"
    );
}

/// The response side of the wire pin: envelopes and the metrics payload.
#[test]
fn daemon_response_envelopes_are_pinned() {
    use rlim::daemon::wire;
    use rlim::daemon::{CacheStats, Health, MetricsSnapshot};
    use rlim::Error;

    assert_eq!(
        wire::rejected_line(8, 8, "job queue full"),
        "{\"rejected\":{\"queue_depth\":8,\"queue_capacity\":8,\
\"message\":\"job queue full\"}}"
    );
    assert_eq!(
        wire::error_line(&Error::UnknownBenchmark("nonesuch".into())),
        format!(
            "{{\"error\":{{\"message\":\"{}\",\"usage\":true}}}}",
            Error::UnknownBenchmark("nonesuch".into())
        )
    );
    assert_eq!(
        wire::healthz_line(&Health {
            ok: true,
            accepting: true,
            workers: 2,
            queue_depth: 0,
        }),
        "{\"healthz\":{\"ok\":true,\"accepting\":true,\"workers\":2,\"queue_depth\":0}}"
    );
    assert_eq!(wire::shutdown_line(), "{\"shutdown\":{\"draining\":true}}");

    let snapshot = MetricsSnapshot {
        uptime_ticks: 5,
        workers: 2,
        workers_busy: 1,
        queue_depth: 0,
        queue_capacity: 8,
        jobs_served: 3,
        jobs_failed: 0,
        jobs_rejected: 1,
        cache: CacheStats {
            entries: 2,
            capacity: 256,
            hits: 1,
            misses: 2,
            evictions: 0,
        },
    };
    assert_eq!(
        wire::metrics_line(&snapshot),
        "{\"metrics\":{\"uptime_ticks\":5,\"workers\":2,\"workers_busy\":1,\
\"queue_depth\":0,\"queue_capacity\":8,\"jobs_served\":3,\"jobs_failed\":0,\
\"jobs_rejected\":1,\"cache\":{\"entries\":2,\"capacity\":256,\"hits\":1,\
\"misses\":2,\"evictions\":0}}}"
    );
}

/// Satellite: the canonical preset-name list is load-bearing vocabulary
/// (CLI `--policy`, wire options, cache keys, eval table columns) — pin
/// it so additions are deliberate, and check every name round-trips
/// through `preset`/`preset_name`.
#[test]
fn preset_names_are_pinned_and_round_trip() {
    assert_eq!(
        CompileOptions::preset_names(),
        &[
            "naive",
            "plim21",
            "min-write",
            "ea-rewriting",
            "endurance-aware"
        ]
    );
    for &name in CompileOptions::preset_names() {
        let preset = CompileOptions::preset(name).expect("canonical name resolves");
        assert_eq!(preset.preset_name(), Some(name));
        // Per-run modifiers never change the answer.
        assert_eq!(
            preset
                .with_peephole(true)
                .with_copy_reuse(true)
                .with_esat(true)
                .preset_name(),
            Some(name)
        );
    }
}

#[test]
fn argv_roundtrip_rejects_inexpressible_specs() {
    use rlim::mig::Mig;
    // In-memory sources have no command-line form.
    assert!(report_argv(&JobSpec::mig(Mig::new(1))).is_err());
    // Hand-rolled option sets match no preset.
    let custom = CompileOptions {
        rewriting: None,
        ..CompileOptions::endurance_aware()
    };
    let spec = JobSpec::benchmark(Benchmark::Ctrl).with_options(custom);
    assert!(report_argv(&spec).is_err());
    // Fleet riders belong to `rlim fleet`.
    let spec = JobSpec::benchmark(Benchmark::Ctrl).with_fleet(FleetSpec::new(2));
    assert!(report_argv(&spec).is_err());
}
