//! Property-based tests of the word-level bit-parallel execution path:
//! on arbitrary random MIGs, compiler presets and lane counts, one
//! 64-lane-celled word pass must be indistinguishable from the same
//! number of independent scalar runs — output bits *and* per-cell
//! logical write counts (the wear-equivalence invariant that keeps the
//! paper's endurance numbers valid on the SIMD path).

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rlim::compiler::{compile, Backend, CompileOptions, Rm3Backend, WideRm3Backend};
use rlim::mig::random::{generate, RandomMigConfig};
use rlim::mig::Mig;
use rlim::plim::{run_once, run_once_wide, DispatchPolicy, Fleet, FleetConfig, Job};

/// Strategy: a seeded random MIG configuration small enough for
/// debug-mode compile+execute rounds (same shape as property_based.rs).
fn mig_strategy() -> impl Strategy<Value = Mig> {
    (
        2usize..10,   // inputs
        1usize..8,    // outputs
        0usize..160,  // gates
        0.0f64..0.6,  // complement probability
        0.0f64..0.5,  // long-edge probability
        any::<u64>(), // seed
    )
        .prop_map(
            |(inputs, outputs, gates, complement_prob, long_edge_prob, seed)| {
                let cfg = RandomMigConfig {
                    inputs,
                    outputs,
                    gates,
                    complement_prob,
                    long_edge_prob,
                    ..Default::default()
                };
                generate(&cfg, seed)
            },
        )
}

fn any_options() -> impl Strategy<Value = CompileOptions> {
    prop_oneof![
        Just(CompileOptions::naive()),
        Just(CompileOptions::plim_compiler()),
        Just(CompileOptions::min_write()),
        Just(CompileOptions::endurance_rewriting()),
        Just(CompileOptions::endurance_aware()),
        Just(CompileOptions::naive().with_peephole(true)),
        (3u64..40).prop_map(|w| CompileOptions::endurance_aware().with_max_writes(w)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) The tentpole invariant: a `lanes`-wide word pass equals
    /// `lanes` independent scalar runs bit-for-bit, and its per-cell
    /// write counts are exactly `lanes ×` the (input-independent)
    /// scalar per-run counts.
    #[test]
    fn wide_run_equals_independent_scalar_runs(
        mig in mig_strategy(),
        options in any_options(),
        lanes in 1usize..65,
        seed in any::<u64>(),
    ) {
        let result = compile(&mig, &options);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let input_sets: Vec<Vec<bool>> = (0..lanes)
            .map(|_| (0..mig.num_inputs()).map(|_| rng.gen()).collect())
            .collect();
        let lane_inputs: Vec<&[bool]> = input_sets.iter().map(Vec::as_slice).collect();
        let (wide_outputs, wide_counts) = run_once_wide(&result.program, &lane_inputs);

        prop_assert_eq!(wide_outputs.len(), lanes);
        let mut scalar_counts = None;
        for (k, inputs) in input_sets.iter().enumerate() {
            let (outputs, counts) = run_once(&result.program, inputs);
            prop_assert_eq!(&wide_outputs[k], &outputs, "lane {} diverges", k);
            prop_assert_eq!(&outputs, &mig.evaluate(inputs), "lane {} vs MIG", k);
            // Scalar per-run write counts are input-independent — every
            // instruction writes its destination exactly once.
            if let Some(first) = &scalar_counts {
                prop_assert_eq!(first, &counts, "scalar counts vary with inputs");
            } else {
                scalar_counts = Some(counts);
            }
        }
        let scalar_counts = scalar_counts.expect("lanes >= 1");
        let expected: Vec<u64> = scalar_counts.iter().map(|&c| lanes as u64 * c).collect();
        prop_assert_eq!(wide_counts, expected, "wear must scale by lane count");
    }

    /// (b) The `WideRm3Backend` batch API chunks arbitrary pattern
    /// counts (including > 64, forcing multiple word passes) and agrees
    /// with the scalar backend pattern-by-pattern.
    #[test]
    fn wide_backend_execute_many_chunks_correctly(
        mig in mig_strategy(),
        patterns in 1usize..150,
        seed in any::<u64>(),
    ) {
        let options = CompileOptions::endurance_aware().with_effort(1);
        let program = WideRm3Backend.compile(&mig, &options);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let input_sets: Vec<Vec<bool>> = (0..patterns)
            .map(|_| (0..mig.num_inputs()).map(|_| rng.gen()).collect())
            .collect();
        let refs: Vec<&[bool]> = input_sets.iter().map(Vec::as_slice).collect();
        let wide = WideRm3Backend.execute_many(&program, &refs);
        prop_assert_eq!(wide.len(), patterns);
        for (k, inputs) in input_sets.iter().enumerate() {
            let scalar = Rm3Backend.execute(&program, inputs).expect("no endurance limit");
            prop_assert_eq!(&wide[k], &scalar, "pattern {}", k);
        }
    }

    /// (c) SIMD fleet dispatch on random graphs and workloads: outputs
    /// and per-array per-cell wear match the unbatched dispatcher for
    /// every policy, serial and parallel.
    #[test]
    fn simd_fleet_matches_unbatched_on_random_workloads(
        mig in mig_strategy(),
        arrays in 1usize..5,
        jobs in 1usize..12,
        policy_lw in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let heavy = compile(&mig, &CompileOptions::naive());
        let light = compile(&mig, &CompileOptions::endurance_aware().with_effort(1));
        let policy = if policy_lw { DispatchPolicy::LeastWorn } else { DispatchPolicy::RoundRobin };

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let input_sets: Vec<Vec<bool>> = (0..jobs)
            .map(|_| (0..mig.num_inputs()).map(|_| rng.gen()).collect())
            .collect();
        let picks: Vec<bool> = (0..jobs).map(|_| rng.gen()).collect();
        let job_list: Vec<Job<'_>> = picks
            .iter()
            .zip(&input_sets)
            .map(|(&h, inputs)| Job::new(if h { &heavy.program } else { &light.program }, inputs))
            .collect();

        let mut scalar = Fleet::new(FleetConfig::new(arrays).with_policy(policy));
        let out_scalar = scalar.run_batch(&job_list, 1).expect("no limits configured");
        let mut serial = Fleet::new(FleetConfig::new(arrays).with_policy(policy));
        let out_serial = serial.run_batch_simd(&job_list, 1).expect("no limits configured");
        let mut parallel = Fleet::new(FleetConfig::new(arrays).with_policy(policy));
        let out_parallel = parallel.run_batch_simd(&job_list, 0).expect("no limits configured");

        prop_assert_eq!(&out_serial, &out_scalar);
        prop_assert_eq!(&out_serial, &out_parallel);
        for (out, inputs) in out_serial.iter().zip(&input_sets) {
            prop_assert_eq!(out, &mig.evaluate(inputs));
        }
        for i in 0..arrays {
            prop_assert_eq!(
                serial.array(i).write_counts(),
                scalar.array(i).write_counts(),
                "array {} serial wear", i
            );
            prop_assert_eq!(
                parallel.array(i).write_counts(),
                scalar.array(i).write_counts(),
                "array {} parallel wear", i
            );
        }
    }
}
