//! Property-based tests of the word-level bit-parallel execution path:
//! on arbitrary random MIGs, compiler presets and lane counts, one
//! 64-lane-celled word pass must be indistinguishable from the same
//! number of independent scalar runs — output bits *and* per-cell
//! logical write counts (the wear-equivalence invariant that keeps the
//! paper's endurance numbers valid on the SIMD path).

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rlim::compiler::{compile, Backend, CompileOptions, Rm3Backend, WideRm3Backend};
use rlim::mig::random::{generate, RandomMigConfig};
use rlim::mig::Mig;
use rlim::plim::{
    run_once, run_once_wide, DispatchPolicy, Fleet, FleetConfig, Job, Machine, WideMachine,
};
use rlim::rram::WideCrossbar;

/// Strategy: a seeded random MIG configuration small enough for
/// debug-mode compile+execute rounds (same shape as property_based.rs).
fn mig_strategy() -> impl Strategy<Value = Mig> {
    (
        2usize..10,   // inputs
        1usize..8,    // outputs
        0usize..160,  // gates
        0.0f64..0.6,  // complement probability
        0.0f64..0.5,  // long-edge probability
        any::<u64>(), // seed
    )
        .prop_map(
            |(inputs, outputs, gates, complement_prob, long_edge_prob, seed)| {
                let cfg = RandomMigConfig {
                    inputs,
                    outputs,
                    gates,
                    complement_prob,
                    long_edge_prob,
                    ..Default::default()
                };
                generate(&cfg, seed)
            },
        )
}

fn any_options() -> impl Strategy<Value = CompileOptions> {
    prop_oneof![
        Just(CompileOptions::naive()),
        Just(CompileOptions::plim_compiler()),
        Just(CompileOptions::min_write()),
        Just(CompileOptions::endurance_rewriting()),
        Just(CompileOptions::endurance_aware()),
        Just(CompileOptions::naive().with_peephole(true)),
        (3u64..40).prop_map(|w| CompileOptions::endurance_aware().with_max_writes(w)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) The tentpole invariant: a `lanes`-wide word pass equals
    /// `lanes` independent scalar runs bit-for-bit, and its per-cell
    /// write counts are exactly `lanes ×` the (input-independent)
    /// scalar per-run counts.
    #[test]
    fn wide_run_equals_independent_scalar_runs(
        mig in mig_strategy(),
        options in any_options(),
        lanes in 1usize..65,
        seed in any::<u64>(),
    ) {
        let result = compile(&mig, &options);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let input_sets: Vec<Vec<bool>> = (0..lanes)
            .map(|_| (0..mig.num_inputs()).map(|_| rng.gen()).collect())
            .collect();
        let lane_inputs: Vec<&[bool]> = input_sets.iter().map(Vec::as_slice).collect();
        let (wide_outputs, wide_counts) = run_once_wide(&result.program, &lane_inputs);

        prop_assert_eq!(wide_outputs.len(), lanes);
        let mut scalar_counts = None;
        for (k, inputs) in input_sets.iter().enumerate() {
            let (outputs, counts) = run_once(&result.program, inputs);
            prop_assert_eq!(&wide_outputs[k], &outputs, "lane {} diverges", k);
            prop_assert_eq!(&outputs, &mig.evaluate(inputs), "lane {} vs MIG", k);
            // Scalar per-run write counts are input-independent — every
            // instruction writes its destination exactly once.
            if let Some(first) = &scalar_counts {
                prop_assert_eq!(first, &counts, "scalar counts vary with inputs");
            } else {
                scalar_counts = Some(counts);
            }
        }
        let scalar_counts = scalar_counts.expect("lanes >= 1");
        let expected: Vec<u64> = scalar_counts.iter().map(|&c| lanes as u64 * c).collect();
        prop_assert_eq!(wide_counts, expected, "wear must scale by lane count");
    }

    /// (b) The `WideRm3Backend` batch API chunks arbitrary pattern
    /// counts (including > 64, forcing multiple word passes) and agrees
    /// with the scalar backend pattern-by-pattern.
    #[test]
    fn wide_backend_execute_many_chunks_correctly(
        mig in mig_strategy(),
        patterns in 1usize..150,
        seed in any::<u64>(),
    ) {
        let options = CompileOptions::endurance_aware().with_effort(1);
        let program = WideRm3Backend.compile(&mig, &options);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let input_sets: Vec<Vec<bool>> = (0..patterns)
            .map(|_| (0..mig.num_inputs()).map(|_| rng.gen()).collect())
            .collect();
        let refs: Vec<&[bool]> = input_sets.iter().map(Vec::as_slice).collect();
        let wide = WideRm3Backend.execute_many(&program, &refs);
        prop_assert_eq!(wide.len(), patterns);
        for (k, inputs) in input_sets.iter().enumerate() {
            let scalar = Rm3Backend.execute(&program, inputs).expect("no endurance limit");
            prop_assert_eq!(&wide[k], &scalar, "pattern {}", k);
        }
    }

    /// (d) Satellite: the wide path under an endurance limit `E = 64·t`.
    /// `WideCrossbar`'s conservative pre-check is exactly as permissive
    /// as the accumulated wear of 64 scalar runs: both paths fail iff
    /// some cell's per-run write count exceeds `t`, and every failing
    /// cell stalls having absorbed exactly `E` logical writes. The wide
    /// failure additionally lands on the same cell, at 64× the write
    /// count, as a single scalar run against the per-run budget `t` —
    /// the interleaving-free restatement of "64 runs at once" (the
    /// accumulated-serial path may fail on a different cell first, since
    /// it interleaves at run granularity instead of instruction
    /// granularity, but never at a different logical write count).
    #[test]
    fn wide_endurance_precheck_matches_scalar_runs(
        mig in mig_strategy(),
        options in any_options(),
        seed in any::<u64>(),
        threshold_pick in any::<u64>(),
    ) {
        let result = compile(&mig, &options);
        let program = &result.program;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let input_sets: Vec<Vec<bool>> = (0..64)
            .map(|_| (0..mig.num_inputs()).map(|_| rng.gen()).collect())
            .collect();
        let lane_inputs: Vec<&[bool]> = input_sets.iter().map(Vec::as_slice).collect();

        // Per-run per-cell write counts are input-independent.
        let (_, per_run) = run_once(program, &input_sets[0]);
        let max_per_run = per_run.iter().copied().max().unwrap_or(0);
        if max_per_run == 0 {
            // Trivial program (no instructions): nothing to wear out.
            return Ok(());
        }
        // A per-run budget around the peak, so both outcomes are hit.
        let t = 1 + threshold_pick % (max_per_run + 1);
        let limit = 64 * t;
        let should_fail = max_per_run > t;

        // The 64-lane word pass against E.
        let mut wide = WideMachine::with_array(WideCrossbar::with_endurance(limit), 64);
        wide.ensure_cells(program.num_cells);
        let wide_result = wide.run(program, &lane_inputs);

        // 64 scalar runs accumulating wear on one crossbar against E.
        let mut scalar = Machine::with_endurance(program, limit);
        let mut scalar_fault = None;
        for inputs in &input_sets {
            if let Err(fault) = scalar.run(program, inputs) {
                scalar_fault = Some(fault);
                break;
            }
        }

        // One scalar run against the per-run budget t.
        let mut single = Machine::with_endurance(program, t);
        let single_result = single.run(program, &input_sets[0]);

        prop_assert_eq!(wide_result.is_err(), should_fail, "wide vs prediction");
        prop_assert_eq!(scalar_fault.is_some(), should_fail, "scalar vs prediction");
        prop_assert_eq!(single_result.is_err(), should_fail, "single vs prediction");
        match (wide_result, single_result) {
            (Ok(_), Ok(_)) => {
                // All paths complete with identical final wear: 64× the
                // per-run counts.
                let expected: Vec<u64> = per_run.iter().map(|&c| 64 * c).collect();
                prop_assert_eq!(wide.array().write_counts(), expected.clone());
                prop_assert_eq!(scalar.array().write_counts(), expected);
            }
            (Err(wide_err), Err(single_err)) => {
                // Same cell as the single budget-t run, at 64× the
                // logical write count.
                prop_assert_eq!(wide_err.cell, single_err.cell());
                prop_assert_eq!(wide_err.limit, limit);
                prop_assert_eq!(
                    wide.array().writes(wide_err.cell),
                    64 * single.array().writes(single_err.cell())
                );
                // Every failing path stalls its cell at exactly E logical
                // writes — the "same logical write count" guarantee.
                prop_assert_eq!(wide.array().writes(wide_err.cell), limit);
                let fault = scalar_fault.expect("accumulated runs fail too");
                prop_assert_eq!(scalar.array().writes(fault.cell()), limit);
            }
            (wide, single) => prop_assert!(
                false,
                "paths disagree: wide ok={} single ok={}",
                wide.is_ok(),
                single.is_ok()
            ),
        }
    }

    /// (c) SIMD fleet dispatch on random graphs and workloads: outputs
    /// and per-array per-cell wear match the unbatched dispatcher for
    /// every policy, serial and parallel.
    #[test]
    fn simd_fleet_matches_unbatched_on_random_workloads(
        mig in mig_strategy(),
        arrays in 1usize..5,
        jobs in 1usize..12,
        policy_lw in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let heavy = compile(&mig, &CompileOptions::naive());
        let light = compile(&mig, &CompileOptions::endurance_aware().with_effort(1));
        let policy = if policy_lw { DispatchPolicy::LeastWorn } else { DispatchPolicy::RoundRobin };

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let input_sets: Vec<Vec<bool>> = (0..jobs)
            .map(|_| (0..mig.num_inputs()).map(|_| rng.gen()).collect())
            .collect();
        let picks: Vec<bool> = (0..jobs).map(|_| rng.gen()).collect();
        let job_list: Vec<Job<'_>> = picks
            .iter()
            .zip(&input_sets)
            .map(|(&h, inputs)| Job::new(if h { &heavy.program } else { &light.program }, inputs))
            .collect();

        let mut scalar = Fleet::new(FleetConfig::new(arrays).with_policy(policy));
        let out_scalar = scalar.run_batch(&job_list, 1).expect("no limits configured");
        let mut serial = Fleet::new(FleetConfig::new(arrays).with_policy(policy));
        let out_serial = serial.run_batch_simd(&job_list, 1).expect("no limits configured");
        let mut parallel = Fleet::new(FleetConfig::new(arrays).with_policy(policy));
        let out_parallel = parallel.run_batch_simd(&job_list, 0).expect("no limits configured");

        prop_assert_eq!(&out_serial, &out_scalar);
        prop_assert_eq!(&out_serial, &out_parallel);
        for (out, inputs) in out_serial.iter().zip(&input_sets) {
            prop_assert_eq!(out, &mig.evaluate(inputs));
        }
        for i in 0..arrays {
            prop_assert_eq!(
                serial.array(i).write_counts(),
                scalar.array(i).write_counts(),
                "array {} serial wear", i
            );
            prop_assert_eq!(
                parallel.array(i).write_counts(),
                scalar.array(i).write_counts(),
                "array {} parallel wear", i
            );
        }
    }
}
