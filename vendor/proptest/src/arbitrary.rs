//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.gen::<u64>() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats across a wide dynamic range (no NaN/inf: the
        // workspace's properties are about logic, not float edge cases).
        let mantissa: f64 = rng.gen_range(-1.0..1.0);
        let exp = rng.gen_range(-60i32..60);
        mantissa * (exp as f64).exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

arbitrary_tuple!(A);
arbitrary_tuple!(A, B);
arbitrary_tuple!(A, B, C);
arbitrary_tuple!(A, B, C, D);
