//! The case runner: config, RNG, regression-seed replay, env overrides.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::{Path, PathBuf};

/// Per-suite configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property (before env overrides).
    pub cases: u32,
    /// Maximum number of `TestCaseError::Reject` outcomes tolerated.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 1024,
        }
    }
}

/// The RNG handed to strategies: deterministic per case seed.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Creates a generator for one test case.
    pub fn from_seed(seed: u64) -> Self {
        Self(ChaCha8Rng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The input was rejected (e.g. by `prop_assume!`); not a failure.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Builds a rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// FNV-1a — a stable name hash so case seeds differ between properties but
/// never between runs.
fn fnv1a(data: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in data.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Locates `proptest-regressions/<stem>.txt` for a `file!()` path by probing
/// the current directory and its ancestors (cargo runs test binaries from
/// the package root, but `file!()` paths are workspace-relative).
fn regression_path(source_file: &str) -> Option<PathBuf> {
    let stem = Path::new(source_file)
        .file_stem()?
        .to_string_lossy()
        .into_owned();
    let rel = Path::new("proptest-regressions").join(format!("{stem}.txt"));
    let mut base = std::env::current_dir().ok()?;
    for _ in 0..5 {
        let candidate = base.join(&rel);
        if candidate.exists() {
            return Some(candidate);
        }
        base = base.parent()?.to_path_buf();
    }
    None
}

/// Parses `xs <u64>` lines (decimal or `0x` hex); `#` starts a comment.
fn regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("xs ")?;
            let token = rest.split_whitespace().next()?;
            match token.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => token.parse().ok(),
            }
        })
        .collect()
}

/// The number of random cases to run: `PROPTEST_CASES` wins over the
/// config so CI can run deeper than local without editing the suites.
pub fn resolve_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
}

/// Runs one property: regression seeds first, then `cases` random cases.
/// Panics (test failure) on the first falsified case, reporting the seed to
/// pin in the regression corpus.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, source_file: &str, f: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let regressions = regression_path(source_file);
    let pinned = regressions
        .as_deref()
        .map(regression_seeds)
        .unwrap_or_default();
    let cases = resolve_cases(config);
    let base = fnv1a(name) ^ fnv1a(source_file).rotate_left(17);
    let random =
        (0..cases as u64).map(|i| base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));

    let mut rejects = 0u32;
    for (kind, seed) in pinned
        .iter()
        .map(|&s| ("regression", s))
        .chain(random.map(|s| ("random", s)))
    {
        let mut rng = TestRng::from_seed(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("panic with non-string payload");
                Err(TestCaseError::fail(format!("case panicked: {msg}")))
            });
        match outcome {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "proptest {name}: too many rejected cases ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                let corpus = regressions
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| format!("proptest-regressions/ for {source_file}"));
                panic!(
                    "proptest {name}: falsified by {kind} case, seed = 0x{seed:016x}\n\
                     {msg}\n\
                     To pin this case, add the line `xs 0x{seed:016x}` to {corpus}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_lines_parse_decimal_hex_and_comments() {
        let dir = std::env::temp_dir().join("rlim-proptest-parse-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("corpus.txt");
        std::fs::write(&file, "# comment\nxs 7\nxs 0x10\nbogus\nxs nonsense\n").unwrap();
        assert_eq!(regression_seeds(&file), vec![7, 16]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pinned_seed_is_replayed_before_random_cases() {
        // Build a corpus next to a fake source path under the temp dir,
        // chdir there, and check the pinned seed reaches the property
        // first and is reported as a regression case on failure.
        let dir = std::env::temp_dir().join("rlim-proptest-replay-test");
        let corpus_dir = dir.join("proptest-regressions");
        std::fs::create_dir_all(&corpus_dir).unwrap();
        std::fs::write(corpus_dir.join("fake_suite.txt"), "xs 0xdead\n").unwrap();
        let original = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let config = ProptestConfig::with_cases(0);
        let seen = std::cell::RefCell::new(Vec::new());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_proptest(&config, "pinned", "tests/fake_suite.rs", |rng| {
                seen.borrow_mut().push(rng.next_u64());
                Err(TestCaseError::fail("always fails"))
            });
        }));

        std::env::set_current_dir(original).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        let message = *outcome.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("regression case"), "{message}");
        assert!(message.contains("0x000000000000dead"), "{message}");
        assert_eq!(seen.borrow().len(), 1, "pinned seed ran exactly once");
        assert_eq!(seen.borrow()[0], TestRng::from_seed(0xdead).next_u64());
    }

    #[test]
    fn proptest_cases_env_overrides_config() {
        // `cargo test` may run this crate's tests in parallel, but no other
        // test in this crate reads PROPTEST_CASES.
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(resolve_cases(&ProptestConfig::with_cases(9)), 9);
        std::env::set_var("PROPTEST_CASES", "33");
        assert_eq!(resolve_cases(&ProptestConfig::with_cases(9)), 33);
        std::env::remove_var("PROPTEST_CASES");
    }
}
