//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! slice of proptest the workspace's property suites use:
//!
//! * the [`proptest!`] macro with `name in strategy` and `name: Type`
//!   parameter forms, doc comments, and `#![proptest_config(..)]`;
//! * [`strategy::Strategy`] with `prop_map`, implemented for primitive
//!   ranges, tuples, [`strategy::Just`] and [`prop_oneof!`] unions;
//! * `any::<T>()` for primitives;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`;
//! * `PROPTEST_CASES` env-var case-count override and a
//!   `proptest-regressions/` seed-replay corpus (format: `xs <u64>` lines).
//!
//! Differences from real proptest: no shrinking (failures report the
//! offending seed instead — add it to the regression file to pin it), and
//! regression files store the *case seed*, not a value-tree hash.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

/// One-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors of values from `element` with lengths in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests. Supports `#![proptest_config(..)]`, doc
/// comments, and both `name in strategy` and `name: Type` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: expands each `fn` in a `proptest!` block into a `#[test]`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr);) => {};
    (($config:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_proptest(&__config, stringify!($name), file!(), |__rng| {
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns!(($config); $($rest)*);
    };
}

/// Internal: binds one `proptest!` parameter per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strategy:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strategy), $rng);
    };
    ($rng:ident; $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strategy), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident: $ty:ty) => {
        let $name = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
    };
    ($rng:ident; $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Asserts a boolean property; on failure the current case is reported
/// with its reproduction seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// `proptest::prop` namespace alias used by some imports.
pub mod prop {
    pub use crate::collection;
}
