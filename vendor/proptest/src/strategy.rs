//! Value-generation strategies (no shrinking in this offline subset).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Helper used by `prop_oneof!` to coerce into a boxed strategy.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between several strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
