//! Offline, API-compatible subset of `criterion`.
//!
//! Implements enough of the criterion 0.5 surface for this workspace's
//! benches to compile and produce useful wall-clock numbers without
//! crates.io access: `Criterion`, `BenchmarkGroup`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's bootstrap statistics it
//! reports min/median over a fixed-iteration sample, which is enough for
//! coarse regression spotting. Like real criterion, full timing runs only
//! under `cargo bench` (which passes `--bench`); any other invocation —
//! `cargo test --benches`, running the binary directly — executes every
//! benchmark body exactly once as a smoke check.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes `--bench` to harness=false targets under
        // `cargo bench` but nothing under `cargo test --benches`, so
        // time only when `--bench` is present (real criterion's rule).
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Self { test_mode }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let mut group = self.benchmark_group(label.clone());
        group.bench_function(label, f);
        group.finish();
        self
    }
}

/// Units for reporting throughput alongside time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Labels a benchmark with a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Labels a benchmark by parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// A set of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares work-per-iteration so a rate is reported with the time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        if self.criterion.test_mode {
            let mut bencher = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            println!("test {label} ... ok");
            return;
        }
        // Warm-up pass, then timed samples.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed / bencher.iters as u32);
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!("  {:.2} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
            }
            Throughput::Bytes(n) => {
                format!(
                    "  {:.2} MiB/s",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
        });
        println!(
            "bench {label:<56} min {min:>12.3?}  median {median:>12.3?}{}",
            rate.unwrap_or_default()
        );
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs and times `f`, `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` over group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
