//! Primitive distributions: `Standard` sampling and uniform ranges.

use crate::RngCore;

/// Types that can produce values of `T` from a source of randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for primitives: uniform over all values for
/// integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform range sampling.
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can be sampled from directly (`rng.gen_range(range)`).
    pub trait SampleRange<T> {
        /// Samples one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! range_int {
        ($($ty:ty),*) => {$(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Multiply-shift bounded sampling (Lemire); the tiny
                    // modulo bias of a plain `% span` is avoided by using
                    // the high 64 bits of a 128-bit product.
                    let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + hi) as $ty
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    if start == <$ty>::MIN && end == <$ty>::MAX {
                        return rng.next_u64() as $ty;
                    }
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (start as i128 + hi) as $ty
                }
            }
        )*};
    }

    range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_float {
        ($($ty:ty),*) => {$(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let unit = ((rng.next_u64() >> 11) as f64)
                        * (1.0 / (1u64 << 53) as f64);
                    let v = self.start as f64
                        + unit * (self.end as f64 - self.start as f64);
                    // Guard against rounding up to the excluded endpoint.
                    if v as $ty >= self.end {
                        self.start
                    } else {
                        v as $ty
                    }
                }
            }
        )*};
    }

    range_float!(f32, f64);
}
