//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` APIs the codebase actually uses are vendored here:
//! [`RngCore`], [`SeedableRng`] (including `seed_from_u64`), and the [`Rng`]
//! extension trait with `gen`, `gen_bool` and `gen_range` over primitive
//! ranges. Distribution sampling beyond `Standard`-style primitives is out
//! of scope. Swapping this crate for the real `rand` is a one-line change
//! in the workspace manifest.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way `rand` 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea, Flood 2014), matching rand_core 0.6.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value whose type implements the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53-bit uniform in [0, 1), the same precision rand uses.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}
