//! Standard generators: a small xoshiro-based `StdRng`/`SmallRng`.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — small, fast, and plenty for tests and synthetic data.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

/// Alias — this vendored subset does not distinguish small from standard.
pub type SmallRng = StdRng;

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }
}
