//! Offline, API-compatible subset of `rand_chacha` 0.3.
//!
//! Implements the genuine ChaCha block function (Bernstein 2008) in counter
//! mode, so [`ChaCha8Rng`] and friends are real cryptographic-quality
//! deterministic generators — only the word order of the reference stream
//! is simplified. Every consumer in this workspace seeds via
//! `SeedableRng::seed_from_u64`, so cross-version stream compatibility with
//! crates.io `rand_chacha` is not required, only self-consistency.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha generator with a configurable round count.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// Key + counter + nonce state matrix template.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "exhausted".
    index: usize,
}

/// ChaCha with 8 rounds — the workspace's workhorse test RNG.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut work = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut work, 0, 4, 8, 12);
            quarter_round(&mut work, 1, 5, 9, 13);
            quarter_round(&mut work, 2, 6, 10, 14);
            quarter_round(&mut work, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut work, 0, 5, 10, 15);
            quarter_round(&mut work, 1, 6, 11, 12);
            quarter_round(&mut work, 2, 7, 8, 13);
            quarter_round(&mut work, 3, 4, 9, 14);
        }
        for (w, s) in work.iter_mut().zip(&self.state) {
            *w = w.wrapping_add(*s);
        }
        self.block = work;
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..16: block counter and nonce, all zero at start.
        Self {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn blocks_differ() {
        // 16 words per block: consecutive blocks must not repeat.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let block1: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let block2: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(block1, block2);
    }

    #[test]
    fn bits_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64_000 bits, expect ~32_000 ones; 6 sigma is ±760.
        assert!((31_240..=32_760).contains(&ones), "ones = {ones}");
    }
}
