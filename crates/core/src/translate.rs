//! The allocate-and-translate pass: MIG nodes → RM3 instructions.
//!
//! ## Node translation
//!
//! A majority gate `n = ⟨s_a, s_b, s_c⟩` is computed by one main RM3
//! instruction whose three roles must be filled from the child signals:
//!
//! * `P` is read as stored — free for constants and uncomplemented children;
//!   a complemented child needs its inverse materialised (2 instructions,
//!   1 cell).
//! * `Q` is inverted by the operation — free for constants and *complemented*
//!   children (this is why a node with exactly one complemented edge is
//!   ideal); an uncomplemented child needs its inverse materialised.
//! * `Z` must be a cell currently holding the third operand's value, and is
//!   overwritten. An uncomplemented child at its **last pending use** (and,
//!   under the maximum write count strategy, with budget left) is consumed
//!   in place for free; otherwise the value is copied into an allocated cell
//!   (2 instructions, 1 cell).
//!
//! The translator tries all six role assignments and emits the cheapest.
//!
//! ## Micro-op recipes (cost in instructions)
//!
//! | recipe | sequence | writes on target |
//! |---|---|---|
//! | `set0(c)` | `RM3(0, 1, c)` | 1 |
//! | `set1(c)` | `RM3(1, 0, c)` | 1 |
//! | `copy(c ← s)` | `set0(c); RM3(s, 0, c)` | 2 |
//! | `copy_inv(c ← s)` | `set1(c); RM3(0, s, c)` | 2 |
//!
//! The translation order is an input: [`TranslatePass`] consumes the
//! schedule produced by [`crate::pipeline::SchedulePass`] and is otherwise
//! oblivious to the selection policy.

use rlim_mig::{Mig, NodeId, Signal};
use rlim_plim::{Instruction, Operand, Program};
use rlim_rram::CellId;

use crate::cells::CellManager;
use crate::options::CompileOptions;
use crate::pipeline::{initial_fanout, Pass, PipelineState};

/// Translates the scheduled nodes into an RM3 [`Program`], allocating
/// cells as it goes (the *allocate + translate* pipeline stage).
#[derive(Debug, Clone, Copy, Default)]
pub struct TranslatePass;

impl Pass for TranslatePass {
    fn name(&self) -> &'static str {
        "translate"
    }

    fn run(&self, state: &mut PipelineState<'_>) {
        let schedule = state
            .schedule
            .take()
            .expect("translate pass needs a schedule");
        // The schedule pass leaves the initial pending-use counts behind so
        // the structural view is computed only once per compilation.
        let fanout = state.fanout.take().unwrap_or_else(|| {
            let graph = state.graph();
            initial_fanout(graph, &rlim_mig::StructuralView::of(graph))
        });
        let program = Translator::new(state.graph(), state.options, fanout).run(&schedule);
        state.program = Some(program);
    }
}

/// Role-assignment cost: `(extra instructions, extra cells)`; the main RM3
/// itself is not included (it is always 1 instruction).
type Cost = (u32, u32);

/// How each role will be realised, decided before any emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadPlan {
    /// Pass a constant operand.
    Const(bool),
    /// Read the child's cell directly.
    Direct(NodeId),
    /// Materialise the complement of the child's value in a temp cell.
    MaterialiseInverse(NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DestPlan {
    /// Overwrite the cell of this child (its last pending use).
    InPlace(NodeId),
    /// Allocate a cell and set it to a constant.
    LoadConst(bool),
    /// Allocate a cell and copy the child's value into it.
    CopyValue(NodeId),
    /// Allocate a cell and copy the child's complement into it.
    CopyInverse(NodeId),
}

struct Translator<'a> {
    mig: &'a Mig,
    cells: CellManager,
    instructions: Vec<Instruction>,
    /// Cell currently holding each node's (uncomplemented) value.
    node_cell: Vec<Option<CellId>>,
    /// Pending uses per node: live gate-children edges + PO references.
    /// PO references are never consumed, pinning PO cells forever.
    fanout_remaining: Vec<u32>,
    input_cells: Vec<CellId>,
}

impl<'a> Translator<'a> {
    fn new(mig: &'a Mig, options: &CompileOptions, fanout_remaining: Vec<u32>) -> Self {
        Translator {
            mig,
            cells: CellManager::new(options.allocation, options.max_writes),
            instructions: Vec::new(),
            node_cell: vec![None; mig.num_nodes()],
            fanout_remaining,
            input_cells: Vec::new(),
        }
    }

    fn run(mut self, schedule: &[NodeId]) -> Program {
        // Primary inputs are preloaded into the first cells (wear-free).
        for i in 0..self.mig.num_inputs() {
            let cell = self.cells.alloc_fresh();
            let node = self.mig.input(i).node();
            self.node_cell[node.index()] = Some(cell);
            self.input_cells.push(cell);
            // Inputs nothing ever reads can be recycled immediately.
            if self.fanout_remaining[node.index()] == 0 {
                self.node_cell[node.index()] = None;
                self.cells.release(cell);
            }
        }

        // Translate nodes in schedule order.
        for &n in schedule {
            self.translate(n);
        }

        // Resolve primary outputs; complemented or constant outputs need a
        // materialisation cell (shared per distinct signal).
        let mut po_cache: std::collections::HashMap<Signal, CellId> =
            std::collections::HashMap::new();
        let outputs: Vec<Signal> = self.mig.outputs().to_vec();
        let mut output_cells = Vec::with_capacity(outputs.len());
        for s in outputs {
            let cell = if let Some(&c) = po_cache.get(&s) {
                c
            } else {
                let c = match s.constant_value() {
                    Some(bit) => {
                        let c = self.cells.alloc(1);
                        self.set_const(c, bit);
                        c
                    }
                    None if !s.is_complement() => self.node_cell[s.node().index()]
                        .expect("primary output node must have been computed"),
                    None => {
                        let src = self.node_cell[s.node().index()]
                            .expect("primary output node must have been computed");
                        let c = self.cells.alloc(2);
                        self.copy_inv(c, src);
                        c
                    }
                };
                po_cache.insert(s, c);
                c
            };
            output_cells.push(cell);
        }

        Program {
            instructions: self.instructions,
            num_cells: self.cells.num_cells(),
            input_cells: self.input_cells,
            output_cells,
        }
    }

    // ---- Emission primitives ------------------------------------------

    fn emit(&mut self, p: Operand, q: Operand, z: CellId) {
        self.instructions.push(Instruction { p, q, z });
        self.cells.record_write(z);
    }

    /// `c ← bit` (1 instruction).
    fn set_const(&mut self, c: CellId, bit: bool) {
        if bit {
            // ⟨1, !0, z⟩ = 1
            self.emit(Operand::Const(true), Operand::Const(false), c);
        } else {
            // ⟨0, !1, z⟩ = 0
            self.emit(Operand::Const(false), Operand::Const(true), c);
        }
    }

    /// `c ← value(src)` (2 instructions).
    fn copy(&mut self, c: CellId, src: CellId) {
        self.set_const(c, false);
        // ⟨v, !0, 0⟩ = ⟨v, 1, 0⟩ = v
        self.emit(Operand::Cell(src), Operand::Const(false), c);
    }

    /// `c ← !value(src)` (2 instructions).
    fn copy_inv(&mut self, c: CellId, src: CellId) {
        self.set_const(c, true);
        // ⟨0, !v, 1⟩ = !v
        self.emit(Operand::Const(false), Operand::Cell(src), c);
    }

    // ---- Node translation ---------------------------------------------

    /// Cost and plan of using `s` as the P operand.
    fn plan_p(&self, s: Signal) -> (Cost, ReadPlan) {
        match s.constant_value() {
            Some(bit) => ((0, 0), ReadPlan::Const(bit)),
            None if !s.is_complement() => ((0, 0), ReadPlan::Direct(s.node())),
            None => ((2, 1), ReadPlan::MaterialiseInverse(s.node())),
        }
    }

    /// Cost and plan of using `s` as the Q operand (RM3 inverts Q, so the
    /// stored value must be the complement of the desired signal).
    fn plan_q(&self, s: Signal) -> (Cost, ReadPlan) {
        match s.constant_value() {
            // Need Q̄ = bit ⇒ Q = !bit.
            Some(bit) => ((0, 0), ReadPlan::Const(!bit)),
            // Complemented child: the stored value *is* the inverse. Free.
            None if s.is_complement() => ((0, 0), ReadPlan::Direct(s.node())),
            // Uncomplemented: materialise the inverse.
            None => ((2, 1), ReadPlan::MaterialiseInverse(s.node())),
        }
    }

    /// Cost and plan of using `s` as the destination Z.
    fn plan_z(&self, s: Signal) -> (Cost, DestPlan) {
        match s.constant_value() {
            Some(bit) => ((1, 1), DestPlan::LoadConst(bit)),
            None if s.is_complement() => ((2, 1), DestPlan::CopyInverse(s.node())),
            None => {
                let node = s.node();
                let consumable = self.fanout_remaining[node.index()] == 1
                    && self.node_cell[node.index()].is_some_and(|c| self.cells.fits_budget(c, 1));
                if consumable {
                    ((0, 0), DestPlan::InPlace(node))
                } else {
                    ((2, 1), DestPlan::CopyValue(node))
                }
            }
        }
    }

    /// Translates one majority gate into RM3 instructions.
    fn translate(&mut self, n: NodeId) {
        let ch = self.mig.children(n);

        // Enumerate all six role assignments; keep the cheapest.
        const PERMS: [(usize, usize, usize); 6] = [
            (0, 1, 2),
            (0, 2, 1),
            (1, 0, 2),
            (1, 2, 0),
            (2, 0, 1),
            (2, 1, 0),
        ];
        let mut best: Option<(Cost, ReadPlan, ReadPlan, DestPlan)> = None;
        for (pi, qi, zi) in PERMS {
            let ((ip, cp), p_plan) = self.plan_p(ch[pi]);
            let ((iq, cq), q_plan) = self.plan_q(ch[qi]);
            let ((iz, cz), z_plan) = self.plan_z(ch[zi]);
            let cost = (ip + iq + iz, cp + cq + cz);
            if best.is_none_or(|(c, _, _, _)| cost < c) {
                best = Some((cost, p_plan, q_plan, z_plan));
            }
        }
        let (_, p_plan, q_plan, z_plan) = best.expect("six permutations evaluated");

        // Materialise read operands first (their recipes must not disturb
        // the destination).
        let mut temps: Vec<CellId> = Vec::new();
        let p_op = self.realise_read(p_plan, &mut temps);
        let q_op = self.realise_read(q_plan, &mut temps);

        // Prepare the destination.
        let (dest, in_place_child) = match z_plan {
            DestPlan::InPlace(child) => {
                let cell = self.node_cell[child.index()].expect("in-place child has a cell");
                (cell, Some(child))
            }
            DestPlan::LoadConst(bit) => {
                let cell = self.cells.alloc(2); // set + main write
                self.set_const(cell, bit);
                (cell, None)
            }
            DestPlan::CopyValue(child) => {
                let src = self.node_cell[child.index()].expect("computed child has a cell");
                let cell = self.cells.alloc(3); // set + load + main write
                self.copy(cell, src);
                (cell, None)
            }
            DestPlan::CopyInverse(child) => {
                let src = self.node_cell[child.index()].expect("computed child has a cell");
                let cell = self.cells.alloc(3);
                self.copy_inv(cell, src);
                (cell, None)
            }
        };

        // The main RM3 operation.
        self.emit(p_op, q_op, dest);
        self.node_cell[n.index()] = Some(dest);

        // Temps die immediately after the main op.
        for t in temps {
            self.cells.release(t);
        }

        // Consume one pending use per child; release cells that reached
        // their last use (the in-place child's cell now belongs to `n`).
        for s in ch {
            if s.is_constant() {
                continue;
            }
            let child = s.node();
            self.fanout_remaining[child.index()] -= 1;
            if self.fanout_remaining[child.index()] == 0 {
                if in_place_child == Some(child) {
                    self.node_cell[child.index()] = None;
                } else if let Some(cell) = self.node_cell[child.index()].take() {
                    self.cells.release(cell);
                }
            }
        }
    }

    fn realise_read(&mut self, plan: ReadPlan, temps: &mut Vec<CellId>) -> Operand {
        match plan {
            ReadPlan::Const(bit) => Operand::Const(bit),
            ReadPlan::Direct(node) => {
                Operand::Cell(self.node_cell[node.index()].expect("computed child has a cell"))
            }
            ReadPlan::MaterialiseInverse(node) => {
                let src = self.node_cell[node.index()].expect("computed child has a cell");
                let temp = self.cells.alloc(2);
                self.copy_inv(temp, src);
                temps.push(temp);
                Operand::Cell(temp)
            }
        }
    }
}
