//! The allocate-and-translate pass: MIG nodes → RM3 instructions.
//!
//! ## Node translation
//!
//! A majority gate `n = ⟨s_a, s_b, s_c⟩` is computed by one main RM3
//! instruction whose three roles must be filled from the child signals:
//!
//! * `P` is read as stored — free for constants and uncomplemented children;
//!   a complemented child needs its inverse materialised (2 instructions,
//!   1 cell).
//! * `Q` is inverted by the operation — free for constants and *complemented*
//!   children (this is why a node with exactly one complemented edge is
//!   ideal); an uncomplemented child needs its inverse materialised.
//! * `Z` must be a cell currently holding the third operand's value, and is
//!   overwritten. An uncomplemented child at its **last pending use** (and,
//!   under the maximum write count strategy, with budget left) is consumed
//!   in place for free; otherwise the value is copied into an allocated cell
//!   (2 instructions, 1 cell).
//!
//! The translator tries all six role assignments and emits the cheapest.
//!
//! ## Micro-op recipes (cost in instructions)
//!
//! | recipe | sequence | writes on target |
//! |---|---|---|
//! | `set0(c)` | `RM3(0, 1, c)` | 1 |
//! | `set1(c)` | `RM3(1, 0, c)` | 1 |
//! | `copy(c ← s)` | `set0(c); RM3(s, 0, c)` | 2 |
//! | `copy_inv(c ← s)` | `set1(c); RM3(0, s, c)` | 2 |
//!
//! The translation order is an input: [`TranslatePass`] consumes the
//! schedule produced by [`crate::pipeline::SchedulePass`] and is otherwise
//! oblivious to the selection policy.
//!
//! ## Copy discovery and spilling (`CompileOptions::copy_reuse`)
//!
//! With copy-reuse enabled the translator additionally runs the
//! [`crate::values`] abstract-value analysis *while emitting* and treats
//! the crossbar like a register file (see ARCHITECTURE.md, "Allocation as
//! register allocation"):
//!
//! * **copy discovery** — a role that would re-materialise a value
//!   already cached in some cell (typically a parked `copy_inv` temp of a
//!   multi-fanout complemented edge) reads that cell instead, eliding the
//!   whole 2-instruction chain;
//! * **constant mapping** — a destination that would allocate-and-set a
//!   constant (or re-copy a value) takes a *free* cell already holding it,
//!   chosen least-worn-first, eliding the setup writes;
//! * **spilling** — pool allocations skip free cells whose cached value a
//!   still-live node may want again, falling back to a fresh zero-wear
//!   cell (a cold spare row) instead of clobbering the cache.
//!
//! All reuse decisions are re-validated against the tracker at emission
//! time, and cells start as opaque unknowns — a copy-discovery read can
//! never be satisfied by residue a previous job left in the array. With
//! the flag off (the default) this machinery is fully bypassed and the
//! emitted programs are byte-identical to the baseline translator's.

use std::collections::HashMap;

use rlim_mig::{Mig, NodeId, Signal};
use rlim_plim::{Instruction, Operand, Program};
use rlim_rram::CellId;

use crate::cells::CellManager;
use crate::options::CompileOptions;
use crate::pipeline::{initial_fanout, Pass, PipelineState};
use crate::values::{Holders, ValueId, Values, FALSE, TRUE};

/// Translates the scheduled nodes into an RM3 [`Program`], allocating
/// cells as it goes (the *allocate + translate* pipeline stage).
#[derive(Debug, Clone, Copy, Default)]
pub struct TranslatePass;

impl Pass for TranslatePass {
    fn name(&self) -> &'static str {
        "translate"
    }

    fn run(&self, state: &mut PipelineState<'_>) {
        let schedule = state
            .schedule
            .take()
            .expect("translate pass needs a schedule");
        // The schedule pass leaves the initial pending-use counts behind so
        // the structural view is computed only once per compilation.
        let fanout = state.fanout.take().unwrap_or_else(|| {
            let graph = state.graph();
            initial_fanout(graph, &rlim_mig::StructuralView::of(graph))
        });
        let program = Translator::new(state.graph(), state.options, fanout).run(&schedule);
        state.program = Some(program);
    }
}

/// Role-assignment cost: `(extra instructions, extra cells)`; the main RM3
/// itself is not included (it is always 1 instruction).
type Cost = (u32, u32);

/// How each role will be realised, decided before any emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadPlan {
    /// Pass a constant operand.
    Const(bool),
    /// Read the child's cell directly.
    Direct(NodeId),
    /// Copy discovery: read a cell that already caches the needed value.
    Reuse(CellId),
    /// Materialise the complement of the child's value in a temp cell.
    MaterialiseInverse(NodeId),
}

/// How an allocated destination is initialised before the main RM3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DestInit {
    /// Set the cell to a constant (1 instruction).
    Const(bool),
    /// Copy the child's value into the cell (2 instructions).
    Copy(NodeId),
    /// Copy the child's complement into the cell (2 instructions).
    CopyInverse(NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DestPlan {
    /// Overwrite the cell of this child (its last pending use).
    InPlace(NodeId),
    /// Allocate a cell and initialise it.
    Alloc(DestInit),
    /// Copy discovery: take a free cell that already caches the required
    /// initial value; the init doubles as the fallback if the cell is
    /// pinned by a read of the same gate at realisation time.
    TakeCached(CellId, DestInit),
}

/// The copy-reuse bookkeeping, present only when
/// `CompileOptions::copy_reuse` is on.
struct ReuseState {
    values: Values,
    holders: Holders,
    /// Abstract (uncomplemented) value per computed node.
    node_value: Vec<Option<ValueId>>,
    /// How many live nodes want each *stored inverse* (keyed by the
    /// complement of the node's value; constants are never tracked).
    /// Drives the spilling heuristic: a free cell caching a wanted
    /// inverse is worth protecting from recycling, because a future
    /// complemented read can then elide a whole materialisation chain.
    live_need: HashMap<ValueId, u32>,
}

impl ReuseState {
    fn new(num_nodes: usize) -> Self {
        ReuseState {
            values: Values::empty(),
            holders: Holders::new(),
            node_value: vec![None; num_nodes],
            live_need: HashMap::new(),
        }
    }

    /// Tracks one emitted instruction: the destination's new abstract
    /// value, and the holder index entry it creates.
    fn record(&mut self, inst: &Instruction) {
        if let Operand::Cell(c) = inst.p {
            self.values.ensure_cell(c);
        }
        if let Operand::Cell(c) = inst.q {
            self.values.ensure_cell(c);
        }
        self.values.ensure_cell(inst.z);
        let v = self.values.rm3_result(inst);
        self.values.set(inst.z, v);
        self.holders.note(v, inst.z, &self.values);
    }

    /// Seeds a primary input: the machine preloads `cell` externally, so
    /// the cell holds the input's (opaque) value without a program write.
    fn preload_input(&mut self, node: NodeId, cell: CellId, live: bool) {
        self.values.ensure_cell(cell);
        let v = self.values.fresh();
        self.values.set(cell, v);
        self.holders.note(v, cell, &self.values);
        self.node_value[node.index()] = Some(v);
        if live {
            self.add_live(v);
        }
    }

    /// The abstract value of a signal, if its node has been computed.
    fn sig_value(&self, s: Signal) -> Option<ValueId> {
        if let Some(bit) = s.constant_value() {
            return Some(if bit { TRUE } else { FALSE });
        }
        self.node_value[s.node().index()].map(|v| if s.is_complement() { v ^ 1 } else { v })
    }

    fn add_live(&mut self, v: ValueId) {
        if v >= 2 {
            *self.live_need.entry(v ^ 1).or_insert(0) += 1;
        }
    }

    fn remove_live(&mut self, v: ValueId) {
        if v >= 2 {
            if let Some(n) = self.live_need.get_mut(&(v ^ 1)) {
                *n -= 1;
                if *n == 0 {
                    self.live_need.remove(&(v ^ 1));
                }
            }
        }
    }

    /// Whether recycling `cell` would clobber a cached inverse some live
    /// node may still want (the spill predicate).
    fn is_useful(&self, cell: CellId) -> bool {
        self.values
            .get(cell)
            .is_some_and(|v| v >= 2 && self.live_need.contains_key(&v))
    }
}

struct Translator<'a> {
    mig: &'a Mig,
    cells: CellManager,
    instructions: Vec<Instruction>,
    /// Cell currently holding each node's (uncomplemented) value.
    node_cell: Vec<Option<CellId>>,
    /// Pending uses per node: live gate-children edges + PO references.
    /// PO references are never consumed, pinning PO cells forever.
    fanout_remaining: Vec<u32>,
    input_cells: Vec<CellId>,
    /// Copy-discovery + spilling state (`None` when the option is off; the
    /// baseline code paths are then taken verbatim).
    reuse: Option<ReuseState>,
}

impl<'a> Translator<'a> {
    fn new(mig: &'a Mig, options: &CompileOptions, fanout_remaining: Vec<u32>) -> Self {
        Translator {
            mig,
            cells: CellManager::new(options.allocation, options.max_writes),
            instructions: Vec::new(),
            node_cell: vec![None; mig.num_nodes()],
            fanout_remaining,
            input_cells: Vec::new(),
            reuse: options.copy_reuse.then(|| ReuseState::new(mig.num_nodes())),
        }
    }

    fn run(mut self, schedule: &[NodeId]) -> Program {
        // Primary inputs are preloaded into the first cells (wear-free).
        for i in 0..self.mig.num_inputs() {
            let cell = self.cells.alloc_fresh();
            let node = self.mig.input(i).node();
            self.node_cell[node.index()] = Some(cell);
            self.input_cells.push(cell);
            let live = self.fanout_remaining[node.index()] > 0;
            if let Some(r) = &mut self.reuse {
                r.preload_input(node, cell, live);
            }
            // Inputs nothing ever reads can be recycled immediately.
            if !live {
                self.node_cell[node.index()] = None;
                self.cells.release(cell);
            }
        }

        // Translate nodes in schedule order.
        for &n in schedule {
            self.translate(n);
        }

        // Resolve primary outputs; complemented or constant outputs need a
        // materialisation cell (shared per distinct signal) — unless copy
        // discovery finds a cell already holding the output value.
        let mut po_cache: std::collections::HashMap<Signal, CellId> =
            std::collections::HashMap::new();
        let outputs: Vec<Signal> = self.mig.outputs().to_vec();
        let mut output_cells = Vec::with_capacity(outputs.len());
        for s in outputs {
            let cell = if let Some(&c) = po_cache.get(&s) {
                c
            } else {
                let c = match s.constant_value() {
                    Some(bit) => {
                        let v = if bit { TRUE } else { FALSE };
                        if let Some(h) = self.claim_output_holder(v) {
                            h
                        } else {
                            let c = self.alloc_spill_aware(1);
                            self.set_const(c, bit);
                            c
                        }
                    }
                    None if !s.is_complement() => self.node_cell[s.node().index()]
                        .expect("primary output node must have been computed"),
                    None => {
                        let v = self.reuse.as_ref().and_then(|r| r.sig_value(s));
                        if let Some(h) = v.and_then(|v| self.claim_output_holder(v)) {
                            h
                        } else {
                            let src = self.node_cell[s.node().index()]
                                .expect("primary output node must have been computed");
                            let c = self.alloc_spill_aware(2);
                            self.copy_inv(c, src);
                            c
                        }
                    }
                };
                po_cache.insert(s, c);
                c
            };
            output_cells.push(cell);
        }

        Program {
            instructions: self.instructions,
            num_cells: self.cells.num_cells(),
            input_cells: self.input_cells,
            output_cells,
        }
    }

    // ---- Emission primitives ------------------------------------------

    fn emit(&mut self, inst: Instruction) {
        if let Some(r) = &mut self.reuse {
            r.record(&inst);
        }
        self.cells.record_write(inst.z);
        self.instructions.push(inst);
    }

    /// `c ← bit` (1 instruction).
    fn set_const(&mut self, c: CellId, bit: bool) {
        self.emit(Instruction::set_const(c, bit));
    }

    /// `c ← value(src)` (2 instructions).
    fn copy(&mut self, c: CellId, src: CellId) {
        self.set_const(c, false);
        self.emit(Instruction::load(src, c));
    }

    /// `c ← !value(src)` (2 instructions).
    fn copy_inv(&mut self, c: CellId, src: CellId) {
        self.set_const(c, true);
        self.emit(Instruction::load_inv(src, c));
    }

    // ---- Copy-discovery queries ---------------------------------------

    /// A *free* cell caching `v` with budget for the main write, chosen
    /// least-worn-first (wear tie-break on the cell index) — the
    /// constant-mapping / destination flavour of copy discovery.
    fn find_cached_dest(&self, v: ValueId) -> Option<CellId> {
        let r = self.reuse.as_ref()?;
        let mut best: Option<CellId> = None;
        for &h in r.holders.candidates(v) {
            if r.values.get(h) != Some(v) || !self.cells.is_free(h) || !self.cells.fits_budget(h, 1)
            {
                continue;
            }
            let better = best.is_none_or(|b| {
                (self.cells.writes_of(h), h.index()) < (self.cells.writes_of(b), b.index())
            });
            if better {
                best = Some(h);
            }
        }
        best
    }

    /// Claims a holder of `v` as a primary-output cell: free holders are
    /// taken out of the pool for good (nothing may recycle an output
    /// cell); live or retired holders are referenced as-is.
    fn claim_output_holder(&mut self, v: ValueId) -> Option<CellId> {
        let h = {
            let r = self.reuse.as_ref()?;
            r.holders.find(v, &r.values, |_| true)?
        };
        if self.cells.is_free(h) {
            self.cells.take(h);
        }
        Some(h)
    }

    /// Pool allocation for destinations and temps. With copy-reuse on,
    /// free cells still caching a wanted value are spilled past: the
    /// request falls through to a fresh zero-wear cell (a cold spare row,
    /// least-worn by definition) instead of clobbering the cache.
    fn alloc_spill_aware(&mut self, budget: u64) -> CellId {
        match &self.reuse {
            None => self.cells.alloc(budget),
            Some(r) => match self.cells.try_alloc_avoiding(budget, |c| r.is_useful(c)) {
                Some(c) => c,
                None => self.cells.alloc_fresh(),
            },
        }
    }

    // ---- Node translation ---------------------------------------------

    /// Cost and plan of using `s` as the P operand.
    fn plan_p(&self, s: Signal) -> (Cost, ReadPlan) {
        match s.constant_value() {
            Some(bit) => ((0, 0), ReadPlan::Const(bit)),
            None if !s.is_complement() => ((0, 0), ReadPlan::Direct(s.node())),
            None => self.plan_inverse_read(s.node()),
        }
    }

    /// Cost and plan of using `s` as the Q operand (RM3 inverts Q, so the
    /// stored value must be the complement of the desired signal).
    fn plan_q(&self, s: Signal) -> (Cost, ReadPlan) {
        match s.constant_value() {
            // Need Q̄ = bit ⇒ Q = !bit.
            Some(bit) => ((0, 0), ReadPlan::Const(!bit)),
            // Complemented child: the stored value *is* the inverse. Free.
            None if s.is_complement() => ((0, 0), ReadPlan::Direct(s.node())),
            // Uncomplemented: the stored inverse must come from somewhere.
            None => self.plan_inverse_read(s.node()),
        }
    }

    /// Both read misfits need the stored *inverse* of `node`'s value:
    /// reuse a cell that already caches it (for free), else materialise
    /// it into a temp (2 instructions, 1 cell).
    fn plan_inverse_read(&self, node: NodeId) -> (Cost, ReadPlan) {
        if let Some(r) = &self.reuse {
            if let Some(v) = r.node_value[node.index()] {
                if let Some(h) = r.holders.find(v ^ 1, &r.values, |_| true) {
                    return ((0, 0), ReadPlan::Reuse(h));
                }
            }
        }
        ((2, 1), ReadPlan::MaterialiseInverse(node))
    }

    /// Cost and plan of using `s` as the destination Z.
    fn plan_z(&self, s: Signal) -> (Cost, DestPlan) {
        match s.constant_value() {
            Some(bit) => {
                let v = if bit { TRUE } else { FALSE };
                self.plan_dest_init((1, 1), DestInit::Const(bit), Some(v))
            }
            None if s.is_complement() => {
                let node = s.node();
                let v = self
                    .reuse
                    .as_ref()
                    .and_then(|r| r.node_value[node.index()])
                    .map(|v| v ^ 1);
                self.plan_dest_init((2, 1), DestInit::CopyInverse(node), v)
            }
            None => {
                let node = s.node();
                let consumable = self.fanout_remaining[node.index()] == 1
                    && self.node_cell[node.index()].is_some_and(|c| self.cells.fits_budget(c, 1));
                if consumable {
                    ((0, 0), DestPlan::InPlace(node))
                } else {
                    let v = self.reuse.as_ref().and_then(|r| r.node_value[node.index()]);
                    self.plan_dest_init((2, 1), DestInit::Copy(node), v)
                }
            }
        }
    }

    /// Upgrades an allocate-and-initialise destination to a cached free
    /// holder when copy discovery finds one.
    fn plan_dest_init(
        &self,
        base: Cost,
        init: DestInit,
        value: Option<ValueId>,
    ) -> (Cost, DestPlan) {
        if let Some(h) = value.and_then(|v| self.find_cached_dest(v)) {
            return ((0, 0), DestPlan::TakeCached(h, init));
        }
        (base, DestPlan::Alloc(init))
    }

    /// Translates one majority gate into RM3 instructions.
    fn translate(&mut self, n: NodeId) {
        let ch = self.mig.children(n);

        // Enumerate all six role assignments; keep the cheapest.
        const PERMS: [(usize, usize, usize); 6] = [
            (0, 1, 2),
            (0, 2, 1),
            (1, 0, 2),
            (1, 2, 0),
            (2, 0, 1),
            (2, 1, 0),
        ];
        let mut best: Option<(Cost, ReadPlan, ReadPlan, DestPlan)> = None;
        for (pi, qi, zi) in PERMS {
            let ((ip, cp), p_plan) = self.plan_p(ch[pi]);
            let ((iq, cq), q_plan) = self.plan_q(ch[qi]);
            let ((iz, cz), z_plan) = self.plan_z(ch[zi]);
            let cost = (ip + iq + iz, cp + cq + cz);
            if best.is_none_or(|(c, _, _, _)| cost < c) {
                best = Some((cost, p_plan, q_plan, z_plan));
            }
        }
        let (_, p_plan, q_plan, mut z_plan) = best.expect("six permutations evaluated");

        // Pin reused holders that sit in the free pool *before* any
        // allocation below, so temp/destination requests cannot recycle
        // them between here and the main op that reads them.
        let mut reserved: Vec<CellId> = Vec::new();
        for plan in [p_plan, q_plan] {
            if let ReadPlan::Reuse(h) = plan {
                if self.cells.is_free(h) {
                    self.cells.take(h);
                    reserved.push(h);
                }
            }
        }
        if let DestPlan::TakeCached(cell, init) = z_plan {
            if self.cells.is_free(cell) {
                self.cells.take(cell);
            } else {
                // The holder doubles as a read of this gate (now pinned):
                // fall back to materialising the destination normally.
                z_plan = DestPlan::Alloc(init);
            }
        }

        // Materialise read operands first (their recipes must not disturb
        // the destination).
        let mut temps: Vec<CellId> = Vec::new();
        let p_op = self.realise_read(p_plan, &mut temps);
        let q_op = self.realise_read(q_plan, &mut temps);

        // Prepare the destination.
        let (dest, in_place_child) = match z_plan {
            DestPlan::InPlace(child) => {
                let cell = self.node_cell[child.index()].expect("in-place child has a cell");
                (cell, Some(child))
            }
            DestPlan::TakeCached(cell, _) => (cell, None),
            DestPlan::Alloc(init) => (self.realise_alloc_dest(init), None),
        };

        // The main RM3 operation.
        self.emit(Instruction {
            p: p_op,
            q: q_op,
            z: dest,
        });
        self.node_cell[n.index()] = Some(dest);
        let live = self.fanout_remaining[n.index()] > 0;
        if let Some(r) = &mut self.reuse {
            let v = r.values.get(dest).expect("emitted destination is tracked");
            r.node_value[n.index()] = Some(v);
            if live {
                r.add_live(v);
            }
        }

        // Temps die immediately after the main op, and pinned read
        // holders go back to the pool unchanged (reads are wear-free).
        for t in temps {
            self.cells.release(t);
        }
        for h in reserved {
            self.cells.release(h);
        }

        // Consume one pending use per child; release cells that reached
        // their last use (the in-place child's cell now belongs to `n`).
        for s in ch {
            if s.is_constant() {
                continue;
            }
            let child = s.node();
            self.fanout_remaining[child.index()] -= 1;
            if self.fanout_remaining[child.index()] == 0 {
                if let Some(r) = &mut self.reuse {
                    if let Some(v) = r.node_value[child.index()] {
                        r.remove_live(v);
                    }
                }
                if in_place_child == Some(child) {
                    self.node_cell[child.index()] = None;
                } else if let Some(cell) = self.node_cell[child.index()].take() {
                    self.cells.release(cell);
                }
            }
        }
    }

    fn realise_read(&mut self, plan: ReadPlan, temps: &mut Vec<CellId>) -> Operand {
        match plan {
            ReadPlan::Const(bit) => Operand::Const(bit),
            ReadPlan::Direct(node) => {
                Operand::Cell(self.node_cell[node.index()].expect("computed child has a cell"))
            }
            ReadPlan::Reuse(cell) => Operand::Cell(cell),
            ReadPlan::MaterialiseInverse(node) => {
                let src = self.node_cell[node.index()].expect("computed child has a cell");
                let temp = self.alloc_spill_aware(2);
                self.copy_inv(temp, src);
                temps.push(temp);
                Operand::Cell(temp)
            }
        }
    }

    fn realise_alloc_dest(&mut self, init: DestInit) -> CellId {
        match init {
            DestInit::Const(bit) => {
                let cell = self.alloc_spill_aware(2); // set + main write
                self.set_const(cell, bit);
                cell
            }
            DestInit::Copy(node) => {
                let src = self.node_cell[node.index()].expect("computed child has a cell");
                let cell = self.alloc_spill_aware(3); // set + load + main write
                self.copy(cell, src);
                cell
            }
            DestInit::CopyInverse(node) => {
                let src = self.node_cell[node.index()].expect("computed child has a cell");
                let cell = self.alloc_spill_aware(3);
                self.copy_inv(cell, src);
                cell
            }
        }
    }
}
