//! Whole-program abstract value tracking: which cells currently hold
//! which literal, constant or complement.
//!
//! This module is the shared analysis behind two optimisations:
//!
//! * the **peephole pass** (`crate::peephole`) walks an *emitted*
//!   program and elides writes whose destination provably already holds
//!   the written value;
//! * the **copy-reuse translator** (`crate::translate`, enabled by
//!   `CompileOptions::with_copy_reuse`) consults the same abstraction
//!   *while allocating*, reading values that already live somewhere in
//!   the array instead of re-materialising them — register-allocation
//!   style copy discovery.
//!
//! The abstraction is deliberately conservative. Value ids are allocated
//! in complement pairs — `v ^ 1` is always the inverse of `v`, with
//! [`FALSE`]` = 0` and [`TRUE`]` = 1` seeding the constant pair — so a
//! complemented operand lookup is one xor away. Equal ids imply equal
//! concrete values; unequal ids imply nothing. Crucially, cells start as
//! opaque unknowns, **not** as zeros: a fleet re-dispatches programs onto
//! arrays still holding a previous job's values, so no analysis in this
//! module can ever be satisfied by residue the program did not write
//! itself.

use std::collections::HashMap;

use rlim_plim::{Instruction, Operand};
use rlim_rram::CellId;

/// Abstract value id. Ids are allocated in complement pairs: `v ^ 1` is
/// always the inverse of `v`, with [`FALSE`] and [`TRUE`] seeding the
/// constant pair. Equal ids imply equal concrete values; unequal ids
/// imply nothing.
pub type ValueId = u64;

/// The id of constant logic 0.
pub const FALSE: ValueId = 0;
/// The id of constant logic 1 (the complement of [`FALSE`]).
pub const TRUE: ValueId = 1;

/// Abstract value per cell, with a fresh-unknown allocator.
///
/// Construct with [`Values::new`] for a fixed-size program walk (the
/// peephole) or [`Values::empty`] for a translator that creates cells on
/// the fly (grow with [`Values::ensure_cell`]).
#[derive(Debug, Clone)]
pub struct Values {
    /// Abstract value per cell.
    cell: Vec<ValueId>,
    next: ValueId,
}

impl Values {
    /// A tracker over `num_cells` cells, each starting as its own opaque
    /// unknown (ids 2, 4, 6, … — never a constant, never each other).
    pub fn new(num_cells: usize) -> Self {
        let cell: Vec<ValueId> = (0..num_cells as u64).map(|i| 2 + 2 * i).collect();
        let next = 2 + 2 * num_cells as u64;
        Values { cell, next }
    }

    /// A tracker with no cells yet (see [`Values::ensure_cell`]).
    pub fn empty() -> Self {
        Values::new(0)
    }

    /// Grows the table so `cell` is tracked; newly covered cells are
    /// seeded as opaque unknowns, exactly like [`Values::new`] seeds them.
    pub fn ensure_cell(&mut self, cell: CellId) {
        while self.cell.len() <= cell.index() {
            let id = self.fresh();
            self.cell.push(id);
        }
    }

    /// A brand-new unknown (even id; its complement is `id ^ 1`).
    pub fn fresh(&mut self) -> ValueId {
        let id = self.next;
        self.next += 2;
        id
    }

    /// The value an operand reads right now.
    ///
    /// # Panics
    ///
    /// Panics if a cell operand is not tracked yet (see
    /// [`Values::ensure_cell`]).
    pub fn of(&self, op: Operand) -> ValueId {
        match op {
            Operand::Const(false) => FALSE,
            Operand::Const(true) => TRUE,
            Operand::Cell(c) => self.cell[c.index()],
        }
    }

    /// The value `cell` currently holds, or `None` if the cell is not
    /// tracked.
    pub fn get(&self, cell: CellId) -> Option<ValueId> {
        self.cell.get(cell.index()).copied()
    }

    /// Records that `cell` now holds `value`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not tracked yet.
    pub fn set(&mut self, cell: CellId, value: ValueId) {
        self.cell[cell.index()] = value;
    }

    /// Abstract result of `z ← ⟨p, q̄, z⟩` given the operand values.
    /// Returns a known id when the majority collapses, a fresh unknown
    /// otherwise. Does **not** update the destination — callers decide
    /// whether the write happens.
    pub fn rm3_result(&mut self, inst: &Instruction) -> ValueId {
        let p = self.of(inst.p);
        let q = self.of(inst.q);
        let z = self.cell[inst.z.index()];
        let q_inv = q ^ 1; // value actually fed into the majority
        if p == q_inv {
            // ⟨x, x, z⟩ = x (covers set0/set1: ⟨b, b, z⟩ = b).
            p
        } else if p == z {
            // ⟨x, q̄, x⟩ = x.
            p
        } else if q_inv == z {
            // ⟨p, x, x⟩ = x.
            z
        } else if p == q {
            // q̄ = p̄: ⟨x, x̄, z⟩ = z — a write of the old value.
            z
        } else if z == FALSE {
            // ⟨p, q̄, 0⟩ = p ∧ q̄.
            match (p, q) {
                (_, FALSE) => p, // p ∧ 1 = p
                (FALSE, _) | (_, TRUE) => FALSE,
                _ => self.fresh(),
            }
        } else if z == TRUE {
            // ⟨p, q̄, 1⟩ = p ∨ q̄.
            match (p, q) {
                (_, TRUE) => p, // p ∨ 0 = p
                (TRUE, _) | (_, FALSE) => TRUE,
                (FALSE, _) => q ^ 1, // 0 ∨ q̄ = q̄
                _ => self.fresh(),
            }
        } else {
            self.fresh()
        }
    }
}

/// The result a `set; load` chain into `chain[0].z` computes, when the
/// two instructions form the translator's `copy` / `copy_inv` recipe.
pub fn chain_result(first: &Instruction, second: &Instruction, values: &Values) -> Option<ValueId> {
    if first.z != second.z {
        return None;
    }
    match (first.p, first.q, second.p, second.q) {
        // copy: set0(c); RM3(s, 0, c) = value(s).
        (Operand::Const(false), Operand::Const(true), Operand::Cell(s), Operand::Const(false))
            if s != first.z =>
        {
            Some(values.cell[s.index()])
        }
        // copy_inv: set1(c); RM3(0, s, c) = !value(s).
        (Operand::Const(true), Operand::Const(false), Operand::Const(false), Operand::Cell(s))
            if s != first.z =>
        {
            Some(values.cell[s.index()] ^ 1)
        }
        _ => None,
    }
}

/// A reverse index from value id to the cells last observed holding it.
///
/// Entries go stale when a holder is overwritten; every query re-checks
/// candidates against the live [`Values`] table, and [`Holders::note`]
/// prunes dead candidates as a side effect, so the per-value lists stay
/// short. The map is only ever accessed by key — never iterated — so
/// lookups are deterministic regardless of hash order.
#[derive(Debug, Clone, Default)]
pub struct Holders {
    map: HashMap<ValueId, Vec<CellId>>,
}

impl Holders {
    /// An empty index.
    pub fn new() -> Self {
        Holders::default()
    }

    /// Records that `cell` now holds `value`, pruning candidates the
    /// tracker no longer confirms. Constants are indexed like any other
    /// value, so `FALSE`/`TRUE` holders are discoverable too.
    pub fn note(&mut self, value: ValueId, cell: CellId, values: &Values) {
        let list = self.map.entry(value).or_default();
        list.retain(|&h| h != cell && values.get(h) == Some(value));
        list.push(cell);
    }

    /// The candidate holders of `value`, oldest first. Candidates may be
    /// stale — confirm each against the [`Values`] table before use (or
    /// go through [`Holders::find`]).
    pub fn candidates(&self, value: ValueId) -> &[CellId] {
        self.map.get(&value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The first confirmed holder of `value` (oldest first) accepted by
    /// `keep`. Staleness is re-checked against `values` on every call.
    pub fn find(
        &self,
        value: ValueId,
        values: &Values,
        mut keep: impl FnMut(CellId) -> bool,
    ) -> Option<CellId> {
        self.candidates(value)
            .iter()
            .copied()
            .find(|&h| values.get(h) == Some(value) && keep(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    fn set0(z: CellId) -> Instruction {
        Instruction {
            p: Operand::Const(false),
            q: Operand::Const(true),
            z,
        }
    }

    #[test]
    fn cells_start_opaque_and_distinct() {
        let v = Values::new(3);
        let ids: Vec<ValueId> = (0..3).map(|i| v.get(c(i)).unwrap()).collect();
        assert_eq!(ids, vec![2, 4, 6]);
        assert!(ids.iter().all(|&id| id != FALSE && id != TRUE));
    }

    #[test]
    fn ensure_cell_matches_eager_seeding() {
        let mut lazy = Values::empty();
        lazy.ensure_cell(c(2));
        let eager = Values::new(3);
        for i in 0..3 {
            assert_eq!(lazy.get(c(i)), eager.get(c(i)));
        }
        assert_eq!(lazy.get(c(3)), None);
    }

    #[test]
    fn complement_pairs_are_one_xor_away() {
        let mut v = Values::new(1);
        let id = v.fresh();
        assert_eq!(id % 2, 0, "fresh ids are the even half of a pair");
        assert_eq!(TRUE, FALSE ^ 1);
        assert_ne!(id, id ^ 1);
    }

    #[test]
    fn rm3_result_tracks_set_recipes() {
        let mut v = Values::new(2);
        assert_eq!(v.rm3_result(&set0(c(1))), FALSE);
        let set1 = Instruction {
            p: Operand::Const(true),
            q: Operand::Const(false),
            z: c(1),
        };
        assert_eq!(v.rm3_result(&set1), TRUE);
    }

    #[test]
    fn holders_confirm_against_the_tracker() {
        let mut values = Values::new(3);
        let mut holders = Holders::new();
        values.set(c(0), FALSE);
        holders.note(FALSE, c(0), &values);
        assert_eq!(holders.find(FALSE, &values, |_| true), Some(c(0)));

        // Overwrite the holder: the candidate goes stale and stops
        // matching even though the index still lists it.
        let unknown = values.fresh();
        values.set(c(0), unknown);
        assert_eq!(holders.find(FALSE, &values, |_| true), None);
    }

    #[test]
    fn holders_filter_and_prune() {
        let mut values = Values::new(4);
        let mut holders = Holders::new();
        for i in 0..3 {
            values.set(c(i), TRUE);
            holders.note(TRUE, c(i), &values);
        }
        // Oldest-first order, with a caller-side filter.
        assert_eq!(holders.find(TRUE, &values, |_| true), Some(c(0)));
        assert_eq!(holders.find(TRUE, &values, |h| h != c(0)), Some(c(1)));

        // Kill the first two holders; the next note() prunes them.
        let dead = values.fresh();
        values.set(c(0), dead);
        let dead2 = values.fresh();
        values.set(c(1), dead2);
        values.set(c(3), TRUE);
        holders.note(TRUE, c(3), &values);
        assert_eq!(holders.candidates(TRUE), &[c(2), c(3)]);
    }

    #[test]
    fn chain_result_recognises_copy_recipes() {
        let values = Values::new(3);
        let src = values.get(c(0)).unwrap();
        let copy_load = Instruction {
            p: Operand::Cell(c(0)),
            q: Operand::Const(false),
            z: c(1),
        };
        assert_eq!(chain_result(&set0(c(1)), &copy_load, &values), Some(src));

        let set1 = Instruction {
            p: Operand::Const(true),
            q: Operand::Const(false),
            z: c(1),
        };
        let inv_load = Instruction {
            p: Operand::Const(false),
            q: Operand::Cell(c(0)),
            z: c(1),
        };
        assert_eq!(chain_result(&set1, &inv_load, &values), Some(src ^ 1));
        // Mismatched destinations are not a chain.
        assert_eq!(chain_result(&set0(c(2)), &copy_load, &values), None);
    }
}
