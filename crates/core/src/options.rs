//! Compilation configuration: the paper's technique matrix.

use rlim_mig::rewrite::Algorithm;

/// How freed RRAM cells are handed back out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Allocation {
    /// Most-recently-freed first — the behaviour of the baseline compiler,
    /// which concentrates writes on a few hot cells.
    #[default]
    Lifo,
    /// The paper's *minimum write count strategy*: return the freed cell
    /// with the smallest write count.
    MinWrite,
}

/// Which computable MIG node is translated next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Selection {
    /// Creation order (children before parents) — the naive baseline.
    #[default]
    Topological,
    /// The DAC'16 PLiM-compiler priority: maximise the number of RRAMs
    /// released by the computation, tie-break on the smaller fanout level
    /// index.
    AreaAware,
    /// The paper's Algorithm 3: minimise the fanout level index (shortest
    /// storage duration first), tie-break on more releasing RRAMs.
    EnduranceAware,
}

/// Full compiler configuration.
///
/// The constructors mirror the columns of the paper's Table I (see
/// `DESIGN.md` §3.6 for the mapping).
///
/// # Examples
///
/// ```
/// use rlim_compiler::{Allocation, CompileOptions, Selection};
///
/// let opts = CompileOptions::endurance_aware().with_max_writes(20);
/// assert_eq!(opts.allocation, Allocation::MinWrite);
/// assert_eq!(opts.selection, Selection::EnduranceAware);
/// assert_eq!(opts.max_writes, Some(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// MIG rewriting to apply before translation; `None` compiles the graph
    /// as given (the naive baseline).
    pub rewriting: Option<Algorithm>,
    /// Rewriting effort cycles (the paper uses 5).
    pub effort: usize,
    /// Node-selection policy.
    pub selection: Selection,
    /// Cell-allocation policy.
    pub allocation: Allocation,
    /// The *maximum write count strategy*: when set, no cell ever receives
    /// more than this many writes; cells at the limit are retired and fresh
    /// cells allocated instead. Must be ≥ 3 so that the copy recipes
    /// (initialise + load + destination write) fit in one cell's budget.
    pub max_writes: Option<u64>,
    /// Run the peephole write-elision pass over the emitted program,
    /// deleting provably redundant destination writes. Off by default so
    /// the emitted programs stay bit-for-bit comparable with the paper's
    /// configuration columns; turning it on can only shrink `#I` and
    /// per-cell write counts, never grow them.
    pub peephole: bool,
    /// Register-allocation-style copy discovery in the translator: track
    /// which cells already hold which value (constants, copies,
    /// complements), read operands from existing holders instead of
    /// re-materialising them, reuse free cached cells as destinations
    /// least-worn-first, and spill still-useful cells to cold spare rows
    /// instead of recycling them under write pressure. Off by default so
    /// the emitted programs stay bit-for-bit comparable with the paper's
    /// configuration columns.
    pub copy_reuse: bool,
    /// Equality saturation: after the greedy rewriting fixed point, load
    /// the graph into an e-graph, saturate the Ω rules within the
    /// budgets below, and extract the cheapest realization under the
    /// preset's cost weights (`rlim-egraph`). The compiler keeps the
    /// extracted graph only when its compiled wear profile is pointwise
    /// no worse than without saturation, so the option can only improve
    /// the paper's metrics. Off by default so the emitted programs stay
    /// bit-for-bit comparable with the paper's configuration columns.
    pub esat: bool,
    /// Saturation node budget: stop applying rules once the e-graph
    /// holds this many live e-nodes (see `rlim_egraph::Budget`).
    pub esat_nodes: u32,
    /// Saturation iteration budget: maximum match/apply/rebuild rounds.
    pub esat_iters: u32,
}

/// Default saturation node budget (see [`CompileOptions::esat_nodes`]).
pub const DEFAULT_ESAT_NODES: u32 = 50_000;

/// Default saturation iteration budget (see
/// [`CompileOptions::esat_iters`]).
pub const DEFAULT_ESAT_ITERS: u32 = 4;

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::endurance_aware()
    }
}

impl CompileOptions {
    /// The naive baseline: no rewriting, topological order, LIFO pool
    /// (Table I column "naive").
    pub fn naive() -> Self {
        CompileOptions {
            rewriting: None,
            effort: 0,
            selection: Selection::Topological,
            allocation: Allocation::Lifo,
            max_writes: None,
            peephole: false,
            copy_reuse: false,
            esat: false,
            esat_nodes: DEFAULT_ESAT_NODES,
            esat_iters: DEFAULT_ESAT_ITERS,
        }
    }

    /// The DAC'16 PLiM compiler (Table I column "PLiM compiler \[21\]"):
    /// Algorithm 1 rewriting + area-aware selection.
    pub fn plim_compiler() -> Self {
        CompileOptions {
            rewriting: Some(Algorithm::PlimCompiler),
            effort: 5,
            selection: Selection::AreaAware,
            allocation: Allocation::Lifo,
            max_writes: None,
            peephole: false,
            copy_reuse: false,
            esat: false,
            esat_nodes: DEFAULT_ESAT_NODES,
            esat_iters: DEFAULT_ESAT_ITERS,
        }
    }

    /// [`CompileOptions::plim_compiler`] plus the minimum write count
    /// strategy (Table I column "Minimum write strategy").
    pub fn min_write() -> Self {
        CompileOptions {
            allocation: Allocation::MinWrite,
            ..CompileOptions::plim_compiler()
        }
    }

    /// [`CompileOptions::min_write`] with the endurance-aware rewriting of
    /// Algorithm 2 (Table I column "+ endurance-aware MIG rewriting").
    pub fn endurance_rewriting() -> Self {
        CompileOptions {
            rewriting: Some(Algorithm::EnduranceAware),
            ..CompileOptions::min_write()
        }
    }

    /// The full endurance-aware compilation without a write bound
    /// (Table I column "+ endurance-aware MIG rewriting and compilation"):
    /// Algorithm 2 rewriting, Algorithm 3 node selection, minimum-write
    /// allocation.
    pub fn endurance_aware() -> Self {
        CompileOptions {
            selection: Selection::EnduranceAware,
            ..CompileOptions::endurance_rewriting()
        }
    }

    /// Adds the maximum write count strategy (Table III).
    ///
    /// # Panics
    ///
    /// Panics if `limit < 3`: a fresh destination cell needs up to three
    /// writes (initialise, load, destination write) for one node.
    pub fn with_max_writes(mut self, limit: u64) -> Self {
        assert!(limit >= 3, "max_writes must be at least 3, got {limit}");
        self.max_writes = Some(limit);
        self
    }

    /// Sets the rewriting effort.
    pub fn with_effort(mut self, effort: usize) -> Self {
        self.effort = effort;
        self
    }

    /// Enables or disables the peephole write-elision pass.
    pub fn with_peephole(mut self, peephole: bool) -> Self {
        self.peephole = peephole;
        self
    }

    /// Enables or disables copy discovery + spilling-aware allocation in
    /// the translator (see [`CompileOptions::copy_reuse`]).
    pub fn with_copy_reuse(mut self, copy_reuse: bool) -> Self {
        self.copy_reuse = copy_reuse;
        self
    }

    /// Enables or disables equality saturation (see
    /// [`CompileOptions::esat`]).
    pub fn with_esat(mut self, esat: bool) -> Self {
        self.esat = esat;
        self
    }

    /// Sets the saturation node budget.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is 0: a zero budget would forbid even loading
    /// the graph.
    pub fn with_esat_nodes(mut self, nodes: u32) -> Self {
        assert!(nodes > 0, "esat node budget must be positive");
        self.esat_nodes = nodes;
        self
    }

    /// Sets the saturation iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if `iters` is 0: a zero budget would make `--esat` a
    /// silent no-op.
    pub fn with_esat_iters(mut self, iters: u32) -> Self {
        assert!(iters > 0, "esat iteration budget must be positive");
        self.esat_iters = iters;
        self
    }

    /// The canonical preset names, in the paper's Table I column order.
    /// These are the strings accepted by [`CompileOptions::preset`] and
    /// produced by [`CompileOptions::preset_name`], and the vocabulary the
    /// CLI's `--policy` flag speaks.
    pub fn preset_names() -> &'static [&'static str] {
        &[
            "naive",
            "plim21",
            "min-write",
            "ea-rewriting",
            "endurance-aware",
        ]
    }

    /// Looks up a preset by its canonical name (see
    /// [`CompileOptions::preset_names`]); `None` for unknown names.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlim_compiler::CompileOptions;
    ///
    /// assert_eq!(
    ///     CompileOptions::preset("endurance-aware"),
    ///     Some(CompileOptions::endurance_aware())
    /// );
    /// assert_eq!(CompileOptions::preset("yolo"), None);
    /// ```
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "naive" => Some(CompileOptions::naive()),
            "plim21" => Some(CompileOptions::plim_compiler()),
            "min-write" => Some(CompileOptions::min_write()),
            "ea-rewriting" => Some(CompileOptions::endurance_rewriting()),
            "endurance-aware" => Some(CompileOptions::endurance_aware()),
            _ => None,
        }
    }

    /// The canonical name of the preset this configuration is based on,
    /// judged by the technique triple (rewriting algorithm, selection,
    /// allocation) — the knobs that define the paper's columns. Effort,
    /// write budget and the peephole pass are per-run modifiers and do not
    /// affect the answer. Returns `None` for hand-rolled combinations that
    /// match no column.
    pub fn preset_name(&self) -> Option<&'static str> {
        Self::preset_names().iter().copied().find(|name| {
            let p = Self::preset(name).expect("every canonical name resolves");
            (self.rewriting, self.selection, self.allocation)
                == (p.rewriting, p.selection, p.allocation)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_column_mapping() {
        let naive = CompileOptions::naive();
        assert_eq!(naive.rewriting, None);
        assert_eq!(naive.selection, Selection::Topological);
        assert_eq!(naive.allocation, Allocation::Lifo);

        let plim = CompileOptions::plim_compiler();
        assert_eq!(plim.rewriting, Some(Algorithm::PlimCompiler));
        assert_eq!(plim.selection, Selection::AreaAware);
        assert_eq!(plim.allocation, Allocation::Lifo);

        let minw = CompileOptions::min_write();
        assert_eq!(minw.rewriting, Some(Algorithm::PlimCompiler));
        assert_eq!(minw.allocation, Allocation::MinWrite);
        assert_eq!(minw.selection, Selection::AreaAware);

        let ear = CompileOptions::endurance_rewriting();
        assert_eq!(ear.rewriting, Some(Algorithm::EnduranceAware));
        assert_eq!(ear.selection, Selection::AreaAware);

        let full = CompileOptions::endurance_aware();
        assert_eq!(full.rewriting, Some(Algorithm::EnduranceAware));
        assert_eq!(full.selection, Selection::EnduranceAware);
        assert_eq!(full.allocation, Allocation::MinWrite);
        assert_eq!(full.max_writes, None);
        assert_eq!(full.effort, 5);
    }

    #[test]
    fn default_is_endurance_aware() {
        assert_eq!(CompileOptions::default(), CompileOptions::endurance_aware());
    }

    #[test]
    fn with_max_writes_accepts_paper_values() {
        for w in [10, 20, 50, 100] {
            let o = CompileOptions::endurance_aware().with_max_writes(w);
            assert_eq!(o.max_writes, Some(w));
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_write_budget_rejected() {
        let _ = CompileOptions::endurance_aware().with_max_writes(2);
    }

    #[test]
    fn with_effort() {
        let o = CompileOptions::plim_compiler().with_effort(2);
        assert_eq!(o.effort, 2);
    }

    #[test]
    fn preset_roundtrips_through_its_name() {
        for &name in CompileOptions::preset_names() {
            let preset = CompileOptions::preset(name).unwrap();
            assert_eq!(preset.preset_name(), Some(name), "{name}");
            // Per-run modifiers keep the preset identity.
            assert_eq!(preset.with_effort(9).preset_name(), Some(name));
            assert_eq!(preset.with_peephole(true).preset_name(), Some(name));
            assert_eq!(preset.with_copy_reuse(true).preset_name(), Some(name));
            assert_eq!(preset.with_esat(true).preset_name(), Some(name));
            assert_eq!(preset.with_max_writes(20).preset_name(), Some(name));
        }
        assert_eq!(CompileOptions::preset("nonesuch"), None);
    }

    #[test]
    fn hand_rolled_options_have_no_preset_name() {
        // The sweep's effort-0 point: endurance-aware techniques without
        // rewriting matches no Table I column.
        let o = CompileOptions {
            rewriting: None,
            ..CompileOptions::endurance_aware()
        };
        assert_eq!(o.preset_name(), None);
    }

    #[test]
    fn peephole_defaults_off_in_every_preset() {
        for preset in [
            CompileOptions::naive(),
            CompileOptions::plim_compiler(),
            CompileOptions::min_write(),
            CompileOptions::endurance_rewriting(),
            CompileOptions::endurance_aware(),
        ] {
            assert!(!preset.peephole, "paper columns exclude the peephole");
            assert!(!preset.copy_reuse, "paper columns exclude copy reuse");
            assert!(!preset.esat, "paper columns exclude equality saturation");
            assert_eq!(preset.esat_nodes, DEFAULT_ESAT_NODES);
            assert_eq!(preset.esat_iters, DEFAULT_ESAT_ITERS);
        }
        let on = CompileOptions::endurance_aware().with_peephole(true);
        assert!(on.peephole);
        let reuse = CompileOptions::endurance_aware().with_copy_reuse(true);
        assert!(reuse.copy_reuse);
    }

    #[test]
    fn esat_builders_set_the_flag_and_budgets() {
        let o = CompileOptions::endurance_aware()
            .with_esat(true)
            .with_esat_nodes(10_000)
            .with_esat_iters(2);
        assert!(o.esat);
        assert_eq!(o.esat_nodes, 10_000);
        assert_eq!(o.esat_iters, 2);
    }

    #[test]
    #[should_panic(expected = "node budget must be positive")]
    fn zero_esat_node_budget_rejected() {
        let _ = CompileOptions::endurance_aware().with_esat_nodes(0);
    }

    #[test]
    #[should_panic(expected = "iteration budget must be positive")]
    fn zero_esat_iteration_budget_rejected() {
        let _ = CompileOptions::endurance_aware().with_esat_iters(0);
    }
}
