//! The generic backend layer: one compile-and-execute interface for every
//! in-memory computing style.
//!
//! A [`Backend`] turns an MIG into a [`Program`] over its own
//! [`Isa`] and executes such programs against its machine model. Three
//! backends cover the paper's comparison space:
//!
//! * [`Rm3Backend`] — the PLiM/RM3 flow through the standard pass
//!   pipeline, executed on the external `Machine`;
//! * [`HostedRm3Backend`] — the same programs, self-hosted in the
//!   crossbar and driven by the `Controller` FSM (paper §III-A2);
//! * [`WideRm3Backend`] — the same programs again, executed bit-parallel
//!   on the word-level `WideMachine` (one `u64` word per cell, up to 64
//!   input vectors per instruction, wear accounted per logical write);
//! * [`ImpBackend`] — the material-implication NAND-synthesis baseline
//!   (paper §II), executed on the `ImpMachine`.
//!
//! Everything downstream — the differential oracle, the evaluation
//! binaries, the CLI — talks to backends through this trait, so the
//! RM3-vs-IMPLY comparison is a like-for-like run through shared
//! infrastructure.

use rlim_imp::{synthesize, ImpAllocation, ImpMachine, ImpOp, ImpSynthOptions};
use rlim_isa::{Isa, Program};
use rlim_mig::rewrite::rewrite;
use rlim_mig::Mig;
use rlim_plim::{Controller, Instruction, Machine, WideMachine};
use rlim_rram::WriteFault;

use crate::options::{Allocation, CompileOptions};
use crate::peephole::elide_dead_writes;

/// A complete compile-and-execute backend for one instruction set.
///
/// # Examples
///
/// Every backend computes the same function from the same options:
///
/// ```
/// use rlim_compiler::{Backend, CompileOptions, ImpBackend, Rm3Backend};
/// use rlim_mig::Mig;
///
/// let mut mig = Mig::new(2);
/// let (a, b) = (mig.input(0), mig.input(1));
/// let g = mig.xor(a, b);
/// mig.add_output(g);
///
/// let options = CompileOptions::naive();
/// let rm3 = Rm3Backend.compile(&mig, &options);
/// let imp = ImpBackend.compile(&mig, &options);
/// for inputs in [[false, true], [true, true]] {
///     assert_eq!(
///         Rm3Backend.execute(&rm3, &inputs).unwrap(),
///         ImpBackend.execute(&imp, &inputs).unwrap(),
///     );
/// }
/// ```
pub trait Backend {
    /// The backend's instruction set.
    type Instr: Isa;

    /// Short backend label used in reports and failure messages.
    const NAME: &'static str;

    /// Compiles `mig` into a program under the shared options (each
    /// backend interprets the applicable subset: rewriting and allocation
    /// apply everywhere; selection and the write budget are RM3 pipeline
    /// stages).
    fn compile(&self, mig: &Mig, options: &CompileOptions) -> Program<Self::Instr>;

    /// Executes `program` on this backend's machine model, returning the
    /// primary outputs.
    ///
    /// # Errors
    ///
    /// Returns a [`WriteFault`] if an endurance-limited execution wears
    /// out a cell, or — on a fault-injected crossbar — if write-verify
    /// readback catches a stuck-at cell.
    fn execute(
        &self,
        program: &Program<Self::Instr>,
        inputs: &[bool],
    ) -> Result<Vec<bool>, WriteFault>;
}

/// The PLiM/RM3 flow: the standard pass pipeline plus the external
/// machine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rm3Backend;

impl Backend for Rm3Backend {
    type Instr = Instruction;
    const NAME: &'static str = "rm3";

    fn compile(&self, mig: &Mig, options: &CompileOptions) -> Program<Instruction> {
        crate::compile(mig, options).program
    }

    fn execute(
        &self,
        program: &Program<Instruction>,
        inputs: &[bool],
    ) -> Result<Vec<bool>, WriteFault> {
        Machine::for_program(program).run(program, inputs)
    }
}

/// The self-hosted PLiM computer: identical programs to [`Rm3Backend`],
/// but encoded into the crossbar and executed by the controller FSM.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostedRm3Backend;

impl Backend for HostedRm3Backend {
    type Instr = Instruction;
    const NAME: &'static str = "hosted-rm3";

    fn compile(&self, mig: &Mig, options: &CompileOptions) -> Program<Instruction> {
        Rm3Backend.compile(mig, options)
    }

    fn execute(
        &self,
        program: &Program<Instruction>,
        inputs: &[bool],
    ) -> Result<Vec<bool>, WriteFault> {
        Ok(Controller::host(program)?.run(inputs)?)
    }
}

/// The word-level PLiM flow: identical programs to [`Rm3Backend`],
/// executed bit-parallel on the [`WideMachine`] — the [`Backend`]
/// interface runs one lane per call, and [`WideRm3Backend::execute_many`]
/// packs whole pattern batches 64 to the word.
#[derive(Debug, Clone, Copy, Default)]
pub struct WideRm3Backend;

impl WideRm3Backend {
    /// Executes `program` once per input vector, packed into word-level
    /// passes of up to 64 lanes, returning each vector's primary outputs
    /// in order. One RM3 instruction advances a full chunk, so this is
    /// the high-throughput path the fleet's SIMD dispatch builds on.
    ///
    /// # Panics
    ///
    /// Panics if an input vector does not match the program's interface.
    pub fn execute_many(
        &self,
        program: &Program<Instruction>,
        input_vectors: &[&[bool]],
    ) -> Vec<Vec<bool>> {
        let mut outputs = Vec::with_capacity(input_vectors.len());
        for chunk in input_vectors.chunks(64) {
            outputs.extend(rlim_plim::run_once_wide(program, chunk).0);
        }
        outputs
    }
}

impl Backend for WideRm3Backend {
    type Instr = Instruction;
    const NAME: &'static str = "rm3-wide";

    fn compile(&self, mig: &Mig, options: &CompileOptions) -> Program<Instruction> {
        Rm3Backend.compile(mig, options)
    }

    fn execute(
        &self,
        program: &Program<Instruction>,
        inputs: &[bool],
    ) -> Result<Vec<bool>, WriteFault> {
        let mut machine = WideMachine::for_program(program, 1);
        let mut outputs = machine.run(program, &[inputs])?;
        Ok(outputs.swap_remove(0))
    }
}

/// The material-implication baseline: NAND synthesis over the (optionally
/// rewritten) graph, executed on the IMPLY machine.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImpBackend;

impl Backend for ImpBackend {
    type Instr = ImpOp;
    const NAME: &'static str = "imp";

    fn compile(&self, mig: &Mig, options: &CompileOptions) -> Program<ImpOp> {
        let allocation = match options.allocation {
            Allocation::Lifo => ImpAllocation::Lifo,
            Allocation::MinWrite => ImpAllocation::MinWrite,
        };
        let synth_options = ImpSynthOptions { allocation };
        let mut program = match options.rewriting {
            Some(algorithm) => synthesize(&rewrite(mig, algorithm, options.effort), &synth_options),
            None => synthesize(mig, &synth_options),
        };
        if options.peephole {
            // IMPLY has no redundant-set recipes to fold, but the generic
            // dead-write elision applies to any ISA.
            elide_dead_writes(&mut program);
        }
        program
    }

    fn execute(&self, program: &Program<ImpOp>, inputs: &[bool]) -> Result<Vec<bool>, WriteFault> {
        Ok(ImpMachine::for_program(program).run(program, inputs)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlim_mig::random::{generate, RandomMigConfig};

    fn sample_mig(seed: u64) -> Mig {
        generate(
            &RandomMigConfig {
                inputs: 6,
                outputs: 4,
                gates: 60,
                ..Default::default()
            },
            seed,
        )
    }

    /// All three backends agree with the golden MIG evaluation on every
    /// pattern of a few random graphs.
    #[test]
    fn backends_agree_with_the_mig() {
        for seed in 0..3 {
            let mig = sample_mig(seed);
            let options = CompileOptions::naive();
            let rm3 = Rm3Backend.compile(&mig, &options);
            let hosted = HostedRm3Backend.compile(&mig, &options);
            let imp = ImpBackend.compile(&mig, &options);
            assert_eq!(rm3, hosted, "hosted backend compiles the same program");
            for pattern in 0..(1u32 << mig.num_inputs()) {
                let inputs: Vec<bool> = (0..mig.num_inputs())
                    .map(|i| (pattern >> i) & 1 == 1)
                    .collect();
                let expect = mig.evaluate(&inputs);
                assert_eq!(Rm3Backend.execute(&rm3, &inputs).unwrap(), expect);
                assert_eq!(HostedRm3Backend.execute(&hosted, &inputs).unwrap(), expect);
                assert_eq!(ImpBackend.execute(&imp, &inputs).unwrap(), expect);
            }
        }
    }

    /// The wide backend compiles the identical program and agrees with the
    /// scalar machine pattern by pattern, one lane or many.
    #[test]
    fn wide_backend_matches_scalar_lane_by_lane() {
        let mig = sample_mig(11);
        let options = CompileOptions::endurance_aware().with_effort(1);
        let program = WideRm3Backend.compile(&mig, &options);
        assert_eq!(program, Rm3Backend.compile(&mig, &options));
        let patterns: Vec<Vec<bool>> = (0..(1u32 << mig.num_inputs()))
            .map(|pattern| {
                (0..mig.num_inputs())
                    .map(|i| (pattern >> i) & 1 == 1)
                    .collect()
            })
            .collect();
        let vectors: Vec<&[bool]> = patterns.iter().map(Vec::as_slice).collect();
        let packed = WideRm3Backend.execute_many(&program, &vectors);
        assert_eq!(packed.len(), vectors.len());
        for (inputs, wide_out) in vectors.iter().zip(&packed) {
            let expect = Rm3Backend.execute(&program, inputs).unwrap();
            assert_eq!(wide_out, &expect);
            assert_eq!(WideRm3Backend.execute(&program, inputs).unwrap(), expect);
        }
    }

    /// The IMP backend maps the shared options onto its allocation policy
    /// and matches the direct synthesis entry point.
    #[test]
    fn imp_backend_matches_direct_synthesis() {
        let mig = sample_mig(7);
        let via_backend = ImpBackend.compile(&mig, &CompileOptions::naive());
        let direct = synthesize(&mig, &ImpSynthOptions::lifo());
        assert_eq!(via_backend, direct);

        let min_write_options = CompileOptions {
            allocation: Allocation::MinWrite,
            ..CompileOptions::naive()
        };
        let via_backend = ImpBackend.compile(&mig, &min_write_options);
        let direct = synthesize(&mig, &ImpSynthOptions::min_write());
        assert_eq!(via_backend, direct);
    }

    /// Rewriting flows into IMP synthesis through the shared options.
    #[test]
    fn imp_backend_applies_rewriting() {
        let mig = sample_mig(9);
        let rewritten = ImpBackend.compile(&mig, &CompileOptions::endurance_aware());
        let raw = ImpBackend.compile(&mig, &CompileOptions::naive());
        // Same function either way (spot-checked), usually different code.
        let inputs = vec![true; mig.num_inputs()];
        assert_eq!(
            ImpBackend.execute(&rewritten, &inputs).unwrap(),
            ImpBackend.execute(&raw, &inputs).unwrap(),
        );
    }
}
