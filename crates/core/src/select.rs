//! Node selection: which computable MIG node is translated next.
//!
//! A node is *computable* once all of its gate children have been computed.
//! The order in which computable candidates are picked decides how long
//! values sit in their cells ("blocked RRAMs", paper Fig. 2) and how many
//! cells can be recycled:
//!
//! * [`Selection::AreaAware`] (DAC'16 compiler): most releasing RRAMs first,
//!   tie-break on the smaller fanout level index.
//! * [`Selection::EnduranceAware`] (paper Algorithm 3): smallest fanout
//!   level index first (shortest storage duration), tie-break on more
//!   releasing RRAMs.
//! * [`Selection::Topological`]: plain creation order (the naive baseline).
//!
//! The priority queue re-inserts candidates eagerly whenever a key improves
//! (a child reaching its last pending use raises the parent's releasing
//! count), and verifies keys on pop, so stale entries are harmless.

use std::collections::BinaryHeap;

use rlim_mig::{Mig, NodeId, StructuralView};

use crate::options::Selection;

/// Priority key: larger = scheduled earlier. Built per policy so a plain
/// max-heap applies both orderings.
type Key = (i64, i64, i64);

#[derive(Debug)]
pub(crate) struct Scheduler<'a> {
    mig: &'a Mig,
    selection: Selection,
    /// Levels, fanout, liveness, CSR parent index of `mig`. The CSR index
    /// replaces the old per-node `Vec<Vec<NodeId>>` (one heap allocation
    /// per node); dead parents stay in the index and are skipped on walk.
    view: StructuralView,
    /// Min level over live gate parents; `u32::MAX` for nodes only
    /// feeding POs.
    fanout_level: Vec<u32>,
    /// Uncomputed gate-children per gate.
    deps: Vec<u32>,
    computed: Vec<bool>,
    heap: BinaryHeap<(Key, u32)>,
    /// Cursor for topological mode.
    cursor: usize,
}

impl<'a> Scheduler<'a> {
    /// Builds the scheduler over the live gates of `mig`.
    /// `fanout_remaining` must hold the initial pending-use counts.
    /// (Production code shares the compiler's view via
    /// [`Scheduler::from_view`] instead.)
    #[cfg(test)]
    pub fn new(mig: &'a Mig, selection: Selection, fanout_remaining: &[u32]) -> Self {
        Self::from_view(mig, selection, fanout_remaining, StructuralView::of(mig))
    }

    /// Like [`Scheduler::new`], reusing an already-computed view of `mig`.
    pub fn from_view(
        mig: &'a Mig,
        selection: Selection,
        fanout_remaining: &[u32],
        view: StructuralView,
    ) -> Self {
        let mut fanout_level = vec![u32::MAX; mig.num_nodes()];
        for n in mig.node_ids() {
            // Dead gates are never computed, so they don't constrain the
            // fanout level.
            if let Some(min) = view
                .parents_of(n)
                .iter()
                .filter(|p| view.is_live(**p))
                .map(|p| view.level(*p))
                .min()
            {
                fanout_level[n.index()] = min;
            }
        }

        let mut deps = vec![0u32; mig.num_nodes()];
        for g in mig.gates() {
            if !view.is_live(g) {
                continue;
            }
            deps[g.index()] = mig
                .children(g)
                .iter()
                .filter(|s| mig.is_gate(s.node()))
                .count() as u32;
        }

        let mut sched = Scheduler {
            mig,
            selection,
            view,
            fanout_level,
            deps,
            computed: vec![false; mig.num_nodes()],
            heap: BinaryHeap::new(),
            cursor: 0,
        };
        if selection != Selection::Topological {
            for g in mig.gates() {
                if sched.view.is_live(g) && sched.deps[g.index()] == 0 {
                    sched.push(g, fanout_remaining);
                }
            }
        }
        sched
    }

    /// Number of cells a candidate would free: children at their last
    /// pending use.
    fn releasing(&self, n: NodeId, fanout_remaining: &[u32]) -> u32 {
        self.mig
            .children(n)
            .iter()
            .filter(|s| !s.is_constant() && fanout_remaining[s.node().index()] == 1)
            .count() as u32
    }

    fn key(&self, n: NodeId, fanout_remaining: &[u32]) -> Key {
        let releasing = self.releasing(n, fanout_remaining) as i64;
        let fl = self.fanout_level[n.index()] as i64;
        let idx_tiebreak = -(n.index() as i64);
        match self.selection {
            Selection::AreaAware => (releasing, -fl, idx_tiebreak),
            Selection::EnduranceAware => (-fl, releasing, idx_tiebreak),
            Selection::Topological => (0, 0, idx_tiebreak),
        }
    }

    fn push(&mut self, n: NodeId, fanout_remaining: &[u32]) {
        let key = self.key(n, fanout_remaining);
        self.heap.push((key, n.raw()));
    }

    /// Pops the next node to compute and marks it computed.
    pub fn pop(&mut self, fanout_remaining: &[u32]) -> Option<NodeId> {
        if self.selection == Selection::Topological {
            let total = self.mig.num_nodes();
            let first_gate = self.mig.num_inputs() + 1;
            let mut i = self.cursor.max(first_gate);
            while i < total {
                let n = NodeId::new(i as u32);
                if self.view.is_live(n) && !self.computed[i] {
                    self.cursor = i + 1;
                    self.computed[i] = true;
                    return Some(n);
                }
                i += 1;
            }
            self.cursor = total;
            return None;
        }
        while let Some((stored_key, raw)) = self.heap.pop() {
            let n = NodeId::new(raw);
            if self.computed[n.index()] {
                continue;
            }
            let current = self.key(n, fanout_remaining);
            if current != stored_key {
                self.heap.push((current, raw));
                continue;
            }
            self.computed[n.index()] = true;
            return Some(n);
        }
        None
    }

    /// Marks `n`'s parents one dependency closer to ready; newly computable
    /// parents join the queue. Call after `n`'s translation (with the
    /// already-decremented `fanout_remaining`).
    pub fn after_compute(&mut self, n: NodeId, fanout_remaining: &[u32]) {
        if self.selection == Selection::Topological {
            return;
        }
        let (lo, hi) = self.view.parent_bounds(n);
        for i in lo..hi {
            let p = self.view.parent_at(i);
            if !self.view.is_live(p) {
                continue;
            }
            self.deps[p.index()] -= 1;
            if self.deps[p.index()] == 0 && !self.computed[p.index()] {
                self.push(p, fanout_remaining);
            }
        }
    }

    /// Signals that `child`'s pending-use count dropped to 1, improving the
    /// releasing count of its ready, uncomputed parents.
    pub fn child_now_single(&mut self, child: NodeId, fanout_remaining: &[u32]) {
        if self.selection == Selection::Topological {
            return;
        }
        let (lo, hi) = self.view.parent_bounds(child);
        for i in lo..hi {
            let p = self.view.parent_at(i);
            if self.view.is_live(p) && !self.computed[p.index()] && self.deps[p.index()] == 0 {
                self.push(p, fanout_remaining);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlim_mig::Signal;

    /// Builds the paper's Fig. 2 shape: node A feeds a distant level while
    /// B, C feed the very next one.
    fn fig2_like() -> (Mig, Vec<u32>) {
        let mut mig = Mig::new(6);
        let s: Vec<Signal> = mig.inputs().collect();
        let a = mig.add_maj(s[0], s[1], s[2]); // long-lived
        let b = mig.add_maj(s[1], s[2], s[3]);
        let c = mig.add_maj(s[3], s[4], s[5]);
        let d = mig.add_maj(b, s[0], s[4]);
        let e = mig.add_maj(c, s[1], s[5]);
        let f = mig.add_maj(d, e, s[2]);
        let g = mig.add_maj(a, f, s[3]);
        mig.add_output(g);
        let mut fr = vec![0u32; mig.num_nodes()];
        let live = mig.live_mask();
        for gate in mig.gates() {
            if live[gate.index()] {
                for ch in mig.children(gate) {
                    fr[ch.node().index()] += 1;
                }
            }
        }
        for po in mig.outputs() {
            fr[po.node().index()] += 1;
        }
        (mig, fr)
    }

    fn drain(mig: &Mig, selection: Selection) -> Vec<NodeId> {
        let (graph, mut fr) = (mig, {
            let mut fr = vec![0u32; mig.num_nodes()];
            let live = mig.live_mask();
            for gate in mig.gates() {
                if live[gate.index()] {
                    for ch in mig.children(gate) {
                        fr[ch.node().index()] += 1;
                    }
                }
            }
            for po in mig.outputs() {
                fr[po.node().index()] += 1;
            }
            fr
        });
        let mut sched = Scheduler::new(graph, selection, &fr);
        let mut order = Vec::new();
        while let Some(n) = sched.pop(&fr) {
            order.push(n);
            for ch in graph.children(n) {
                if !ch.is_constant() {
                    fr[ch.node().index()] -= 1;
                    if fr[ch.node().index()] == 1 {
                        sched.child_now_single(ch.node(), &fr);
                    }
                }
            }
            sched.after_compute(n, &fr);
        }
        order
    }

    #[test]
    fn all_live_gates_scheduled_exactly_once() {
        let (mig, _) = fig2_like();
        for sel in [
            Selection::Topological,
            Selection::AreaAware,
            Selection::EnduranceAware,
        ] {
            let order = drain(&mig, sel);
            assert_eq!(order.len(), mig.num_live_gates(), "{sel:?}");
            let mut seen = std::collections::HashSet::new();
            for n in &order {
                assert!(seen.insert(*n), "{sel:?} scheduled {n} twice");
            }
        }
    }

    #[test]
    fn children_always_precede_parents() {
        let (mig, _) = fig2_like();
        for sel in [
            Selection::Topological,
            Selection::AreaAware,
            Selection::EnduranceAware,
        ] {
            let order = drain(&mig, sel);
            let pos: std::collections::HashMap<_, _> =
                order.iter().enumerate().map(|(i, n)| (*n, i)).collect();
            for &n in &order {
                for ch in mig.children(n) {
                    if mig.is_gate(ch.node()) {
                        assert!(
                            pos[&ch.node()] < pos[&n],
                            "{sel:?}: child {} after parent {}",
                            ch.node(),
                            n
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn endurance_aware_postpones_long_lived_node() {
        // Node A (first gate) feeds only the root, far away; B and C feed
        // the next level. Algorithm 3 computes B and C before A.
        let (mig, _) = fig2_like();
        let order = drain(&mig, Selection::EnduranceAware);
        let first_gate_idx = mig.num_inputs() + 1;
        let a = NodeId::new(first_gate_idx as u32);
        let b = NodeId::new(first_gate_idx as u32 + 1);
        let c = NodeId::new(first_gate_idx as u32 + 2);
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        assert!(pos[&b] < pos[&a], "B must be computed before blocked A");
        assert!(pos[&c] < pos[&a], "C must be computed before blocked A");
    }

    #[test]
    fn topological_is_index_order() {
        let (mig, _) = fig2_like();
        let order = drain(&mig, Selection::Topological);
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }

    #[test]
    fn dead_gates_not_scheduled() {
        let mut mig = Mig::new(3);
        let s: Vec<Signal> = mig.inputs().collect();
        let g1 = mig.add_maj(s[0], s[1], s[2]);
        let _dead = mig.add_maj(!s[0], s[1], s[2]);
        mig.add_output(g1);
        for sel in [
            Selection::Topological,
            Selection::AreaAware,
            Selection::EnduranceAware,
        ] {
            let order = drain(&mig, sel);
            assert_eq!(order.len(), 1, "{sel:?}");
            assert_eq!(order[0], g1.node());
        }
    }
}
