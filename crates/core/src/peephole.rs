//! The peephole write-elision pass: deletes provably redundant
//! destination writes from an emitted program.
//!
//! Every deleted instruction is one fewer RRAM write, so — unlike every
//! other technique in the paper's stack, which only *redistributes*
//! traffic — this pass can reduce `#I` and the maximum per-cell write
//! count simultaneously. It never adds instructions, never renumbers
//! cells and never changes the program's observable behaviour (outputs
//! and every value read along the way), so per-cell write counts can
//! only shrink. [`elide_redundant_writes`] additionally preserves every
//! cell's final value; [`elide_dead_writes`] may leave a dead scratch
//! cell holding its previous content instead of an unread overwrite.
//!
//! Two sound elisions are performed, both justified by a conservative
//! abstract-value analysis over the straight-line instruction stream
//! (cells start as opaque unknowns — crucially, *not* as zeros, because a
//! fleet re-dispatches programs onto arrays still holding a previous
//! job's values):
//!
//! * **Redundant constant sets** — `set0(c)` / `set1(c)` when `c`
//!   provably already holds that constant.
//! * **Redundant re-materialisations** — a full `copy` / `copy_inv`
//!   chain (`set; load`) into a cell that provably already holds the
//!   chain's result, e.g. the inverse of a still-live child that the
//!   translator materialised into the same recycled temp cell a few
//!   gates earlier. The pair is judged as a unit: its first half
//!   temporarily destroys the destination, so neither half is redundant
//!   alone.
//!
//! A generic dead-write elision over any [`Isa`] ([`elide_dead_writes`])
//! complements the RM3-specific rules: an instruction whose destination
//! value is never read again and does not survive into an output cell is
//! dropped.

use rlim_isa::{Isa, Program as IsaProgram};
use rlim_plim::{Instruction, Program};

use crate::pipeline::{Pass, PipelineState};
use crate::values::{chain_result, Values};

/// Runs [`elide_redundant_writes`] and then the generic
/// [`elide_dead_writes`] over the pipeline's emitted program.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeepholePass;

impl Pass for PeepholePass {
    fn name(&self) -> &'static str {
        "peephole"
    }

    fn run(&self, state: &mut PipelineState<'_>) {
        let program = state.program.as_mut().expect("peephole needs a program");
        elide_redundant_writes(program);
        elide_dead_writes(program);
    }
}

/// Deletes RM3 instructions that provably rewrite a cell with the value
/// it already holds. Returns the number of instructions elided.
///
/// Sound by construction: an elided write leaves the machine in exactly
/// the state the write would have produced, for every initial array
/// content — the analysis never assumes cells start at zero.
pub fn elide_redundant_writes(program: &mut Program) -> usize {
    let mut values = Values::new(program.num_cells);
    let mut kept: Vec<Instruction> = Vec::with_capacity(program.instructions.len());
    let instructions = std::mem::take(&mut program.instructions);
    let mut i = 0;
    while i < instructions.len() {
        let inst = instructions[i];
        // Try the two-instruction copy/copy_inv chain first: its first
        // half destroys the destination, so redundancy of the *pair* is
        // invisible to the single-instruction rule.
        if i + 1 < instructions.len() {
            if let Some(result) = chain_result(&inst, &instructions[i + 1], &values) {
                if values.get(inst.z) == Some(result) {
                    i += 2; // both halves elided: the cell already holds it
                    continue;
                }
            }
        }
        let result = values.rm3_result(&inst);
        if values.get(inst.z) == Some(result) {
            i += 1; // write of the value already present: elide
            continue;
        }
        values.set(inst.z, result);
        kept.push(inst);
        i += 1;
    }
    let elided = instructions.len() - kept.len();
    program.instructions = kept;
    elided
}

/// Generic dead-write elision over any [`Isa`]: drops instructions whose
/// destination value is never read by a later instruction and does not
/// survive into an output cell. Returns the number of instructions
/// elided.
///
/// The backward liveness walk is exact for straight-line code: a write is
/// live iff its destination is in the live-out set, and an instruction
/// that stays contributes its reads (which, per [`Isa::reads`], include
/// the destination's previous value whenever the operation depends on
/// it).
///
/// # Examples
///
/// ```
/// use rlim_compiler::elide_dead_writes;
/// use rlim_imp::{ImpOp, ImpProgram};
/// use rlim_rram::CellId;
///
/// let c = CellId::new;
/// let mut program = ImpProgram {
///     instructions: vec![
///         ImpOp::False(c(1)),                    // dead: overwritten unread
///         ImpOp::False(c(1)),
///         ImpOp::Imply { p: c(0), q: c(1) },
///     ],
///     num_cells: 2,
///     input_cells: vec![c(0)],
///     output_cells: vec![c(1)],
/// };
/// assert_eq!(elide_dead_writes(&mut program), 1);
/// assert_eq!(program.num_instructions(), 2);
/// program.validate().unwrap();
/// ```
pub fn elide_dead_writes<I: Isa>(program: &mut IsaProgram<I>) -> usize {
    let mut live = vec![false; program.num_cells];
    for &c in &program.output_cells {
        live[c.index()] = true;
    }
    let mut kept_rev: Vec<I> = Vec::with_capacity(program.instructions.len());
    for inst in program.instructions.iter().rev() {
        let dest = inst.destination();
        // Reading your own destination keeps you alive only through a
        // *later* reader, so clear the destination before adding reads.
        if !live[dest.index()] {
            continue; // dead: value overwritten (or discarded) unread
        }
        live[dest.index()] = false;
        for c in &inst.reads() {
            live[c.index()] = true;
        }
        kept_rev.push(*inst);
    }
    let elided = program.instructions.len() - kept_rev.len();
    kept_rev.reverse();
    program.instructions = kept_rev;
    elided
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlim_plim::Operand;
    use rlim_rram::CellId;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    fn set0(z: CellId) -> Instruction {
        Instruction {
            p: Operand::Const(false),
            q: Operand::Const(true),
            z,
        }
    }

    fn set1(z: CellId) -> Instruction {
        Instruction {
            p: Operand::Const(true),
            q: Operand::Const(false),
            z,
        }
    }

    fn load(s: CellId, z: CellId) -> Instruction {
        Instruction {
            p: Operand::Cell(s),
            q: Operand::Const(false),
            z,
        }
    }

    fn load_inv(s: CellId, z: CellId) -> Instruction {
        Instruction {
            p: Operand::Const(false),
            q: Operand::Cell(s),
            z,
        }
    }

    fn program(instructions: Vec<Instruction>, num_cells: usize) -> Program {
        Program {
            instructions,
            num_cells,
            input_cells: vec![c(0)],
            output_cells: vec![c(1)],
        }
    }

    #[test]
    fn repeated_set_const_is_elided() {
        let mut p = program(vec![set0(c(1)), set0(c(1))], 2);
        assert_eq!(elide_redundant_writes(&mut p), 1);
        assert_eq!(p.instructions, vec![set0(c(1))]);
    }

    #[test]
    fn alternating_set_consts_stay() {
        let mut p = program(vec![set0(c(1)), set1(c(1)), set0(c(1))], 2);
        assert_eq!(elide_redundant_writes(&mut p), 0);
    }

    #[test]
    fn rematerialised_inverse_chain_is_elided() {
        // copy_inv(1 ← 0); copy_inv(1 ← 0): the second chain rewrites r1
        // with the inverse it already holds.
        let mut p = program(
            vec![
                set1(c(1)),
                load_inv(c(0), c(1)),
                set1(c(1)),
                load_inv(c(0), c(1)),
            ],
            2,
        );
        assert_eq!(elide_redundant_writes(&mut p), 2);
        assert_eq!(p.instructions, vec![set1(c(1)), load_inv(c(0), c(1))]);
    }

    #[test]
    fn rematerialised_copy_chain_is_elided() {
        let mut p = program(
            vec![set0(c(1)), load(c(0), c(1)), set0(c(1)), load(c(0), c(1))],
            2,
        );
        assert_eq!(elide_redundant_writes(&mut p), 2);
        assert_eq!(p.instructions.len(), 2);
    }

    #[test]
    fn chain_with_changed_source_stays() {
        // The source cell is overwritten between the two chains, so the
        // second chain is NOT redundant.
        let clobber = Instruction {
            p: Operand::Cell(c(2)),
            q: Operand::Const(false),
            z: c(0), // r0 ← r2 ∨ r0: r0 becomes unknown
        };
        let mut p = Program {
            instructions: vec![
                set1(c(1)),
                load_inv(c(0), c(1)),
                clobber,
                set1(c(1)),
                load_inv(c(0), c(1)),
            ],
            num_cells: 3,
            input_cells: vec![],
            output_cells: vec![c(1)],
        };
        assert_eq!(elide_redundant_writes(&mut p), 0);
    }

    #[test]
    fn no_zero_init_assumption() {
        // set0 on a never-written cell must NOT be elided: a fleet may
        // re-dispatch onto an array holding a previous job's values.
        let mut p = program(vec![set0(c(1))], 2);
        assert_eq!(elide_redundant_writes(&mut p), 0);
    }

    #[test]
    fn rewrite_of_own_value_is_elided() {
        // ⟨p, p̄, z⟩ = z: a write of the old value.
        let mut p = program(
            vec![Instruction {
                p: Operand::Cell(c(0)),
                q: Operand::Cell(c(0)),
                z: c(1),
            }],
            2,
        );
        assert_eq!(elide_redundant_writes(&mut p), 1);
        assert!(p.instructions.is_empty());
    }

    #[test]
    fn semantics_preserved_on_random_programs() {
        // Differential check: random instruction soups over a small cell
        // set, executed from random initial array contents, must produce
        // identical outputs before and after elision.
        use rand::{Rng, SeedableRng};
        use rlim_plim::Machine;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xE11D);
        for _ in 0..200 {
            let num_cells = 4usize;
            let len = rng.gen_range(0..20);
            let rand_op = |rng: &mut rand_chacha::ChaCha8Rng| {
                if rng.gen_bool(0.4) {
                    Operand::Const(rng.gen())
                } else {
                    Operand::Cell(c(rng.gen_range(0..num_cells as u32)))
                }
            };
            let instructions: Vec<Instruction> = (0..len)
                .map(|_| Instruction {
                    p: rand_op(&mut rng),
                    q: rand_op(&mut rng),
                    z: c(rng.gen_range(0..num_cells as u32)),
                })
                .collect();
            let original = Program {
                instructions,
                num_cells,
                input_cells: (0..num_cells as u32).map(c).collect(),
                output_cells: (0..num_cells as u32).map(c).collect(),
            };
            let mut optimised = original.clone();
            elide_redundant_writes(&mut optimised);
            for _ in 0..4 {
                let inputs: Vec<bool> = (0..num_cells).map(|_| rng.gen()).collect();
                let mut m1 = Machine::for_program(&original);
                let mut m2 = Machine::for_program(&optimised);
                assert_eq!(
                    m1.run(&original, &inputs).unwrap(),
                    m2.run(&optimised, &inputs).unwrap(),
                    "elision changed semantics for {original:?}"
                );
            }
        }
    }

    #[test]
    fn dead_write_elision_drops_unread_overwritten_values() {
        // r1 is set, never read, then set again: the first set is dead.
        let mut p = program(vec![set1(c(1)), set0(c(1))], 2);
        assert_eq!(elide_dead_writes(&mut p), 1);
        assert_eq!(p.instructions, vec![set0(c(1))]);
    }

    #[test]
    fn dead_write_elision_respects_z_dependency() {
        // The load reads the destination's previous value (set0 recipe),
        // so the set0 is NOT dead.
        let mut p = program(vec![set0(c(1)), load(c(0), c(1))], 2);
        assert_eq!(elide_dead_writes(&mut p), 0);
    }

    #[test]
    fn dead_write_elision_keeps_outputs() {
        let mut p = program(vec![set1(c(1))], 2);
        assert_eq!(elide_dead_writes(&mut p), 0, "output cells are live-out");
    }
}
