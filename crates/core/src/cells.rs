//! The compile-time cell manager: allocation policies, free pool, write
//! accounting and retirement.
//!
//! The manager mirrors, at compile time, the wear the program will inflict
//! at run time: every emitted RM3 instruction records one write on its
//! destination. The paper's two direct endurance techniques live here:
//!
//! * **minimum write count strategy** — [`Allocation::MinWrite`] hands out
//!   the freed cell with the smallest write count;
//! * **maximum write count strategy** — cells whose remaining budget cannot
//!   fit a request are skipped (and effectively retired once no request can
//!   ever fit).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rlim_rram::CellId;

use crate::options::Allocation;

/// Compile-time model of the crossbar's allocation state.
///
/// # Examples
///
/// ```
/// use rlim_compiler::{Allocation, CellManager};
///
/// // Minimum write count strategy: freed cells come back least-worn first.
/// let mut pool = CellManager::new(Allocation::MinWrite, None);
/// let hot = pool.alloc(1);
/// let cold = pool.alloc(1);
/// for _ in 0..5 {
///     pool.record_write(hot);
/// }
/// pool.record_write(cold);
/// pool.release(hot);
/// pool.release(cold);
/// assert_eq!(pool.alloc(1), cold, "least-worn cell is handed out first");
/// assert_eq!(pool.total_writes(), 6);
/// assert_eq!(pool.peak_writes(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct CellManager {
    writes: Vec<u64>,
    /// LIFO pool (used when `allocation == Lifo`).
    free_stack: Vec<CellId>,
    /// Min-write pool: `(write count at release, cell)` with lazy staleness
    /// (used when `allocation == MinWrite`).
    free_heap: BinaryHeap<Reverse<(u64, u32)>>,
    is_free: Vec<bool>,
    allocation: Allocation,
    max_writes: Option<u64>,
}

impl CellManager {
    /// A manager with no cells yet.
    pub fn new(allocation: Allocation, max_writes: Option<u64>) -> Self {
        CellManager {
            writes: Vec::new(),
            free_stack: Vec::new(),
            free_heap: BinaryHeap::new(),
            is_free: Vec::new(),
            allocation,
            max_writes,
        }
    }

    /// Total number of cells ever allocated — the paper's `#R`.
    pub fn num_cells(&self) -> usize {
        self.writes.len()
    }

    /// Write count of a cell.
    pub fn writes_of(&self, cell: CellId) -> u64 {
        self.writes[cell.index()]
    }

    /// All write counts, indexed by cell.
    pub fn write_counts(&self) -> &[u64] {
        &self.writes
    }

    /// Total writes recorded over all cells — the write cost one execution
    /// of the compiled program inflicts on its array. The fleet dispatcher
    /// budgets arrays in this unit.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// The hottest cell's write count — the per-execution peak that
    /// determines array lifetime under a device endurance limit.
    pub fn peak_writes(&self) -> u64 {
        self.writes.iter().max().copied().unwrap_or(0)
    }

    /// Writes `cell` can still absorb under the maximum write count
    /// strategy; `None` when the strategy is off (unbounded).
    pub fn remaining_budget(&self, cell: CellId) -> Option<u64> {
        self.max_writes
            .map(|w| w.saturating_sub(self.writes[cell.index()]))
    }

    /// Records one write on `cell` (called for every emitted instruction).
    pub fn record_write(&mut self, cell: CellId) {
        self.writes[cell.index()] += 1;
        debug_assert!(
            self.max_writes
                .is_none_or(|w| self.writes[cell.index()] <= w),
            "write budget violated on {cell}"
        );
    }

    /// Whether `cell` can absorb `budget` more writes under the maximum
    /// write count strategy (always true when the strategy is off).
    pub fn fits_budget(&self, cell: CellId, budget: u64) -> bool {
        match self.max_writes {
            None => true,
            Some(w) => self.writes[cell.index()] + budget <= w,
        }
    }

    /// Creates a brand-new cell (not drawn from the pool).
    pub fn alloc_fresh(&mut self) -> CellId {
        let id = CellId::new(u32::try_from(self.writes.len()).expect("too many cells"));
        self.writes.push(0);
        self.is_free.push(false);
        id
    }

    /// Whether `cell` is currently in the free pool.
    pub fn is_free(&self, cell: CellId) -> bool {
        self.is_free[cell.index()]
    }

    /// Claims a specific free cell out of the pool (the copy-reuse
    /// translator pins cached holders this way). The cell's pool entry is
    /// left behind and skipped lazily, like a stale heap entry.
    ///
    /// # Panics
    ///
    /// Debug-panics if the cell is not free.
    pub fn take(&mut self, cell: CellId) {
        debug_assert!(self.is_free[cell.index()], "take of non-free {cell}");
        self.is_free[cell.index()] = false;
    }

    /// Requests a cell that can absorb `budget` writes. Freed cells are
    /// preferred (policy-dependent choice); a fresh cell is created when the
    /// pool has no fitting candidate.
    pub fn alloc(&mut self, budget: u64) -> CellId {
        match self.allocation {
            Allocation::Lifo => {
                // Take the most recently freed cell that fits the budget.
                // Entries can be stale after `take` — skip non-free ones.
                if self.max_writes.is_none() {
                    while let Some(cell) = self.free_stack.pop() {
                        if self.is_free[cell.index()] {
                            self.is_free[cell.index()] = false;
                            return cell;
                        }
                    }
                } else if let Some(pos) = self
                    .free_stack
                    .iter()
                    .rposition(|&c| self.is_free[c.index()] && self.fits_budget(c, budget))
                {
                    let cell = self.free_stack.remove(pos);
                    self.is_free[cell.index()] = false;
                    return cell;
                }
                self.alloc_fresh()
            }
            Allocation::MinWrite => {
                // Pop lazily: skip entries that are stale (cell re-allocated
                // since the entry was pushed; its count will have grown).
                while let Some(&Reverse((count, raw))) = self.free_heap.peek() {
                    let cell = CellId::new(raw);
                    if !self.is_free[cell.index()] || self.writes[cell.index()] != count {
                        self.free_heap.pop();
                        continue;
                    }
                    // Counts are heap-ordered: if the minimum does not fit
                    // the budget, nothing does.
                    if !self.fits_budget(cell, budget) {
                        break;
                    }
                    self.free_heap.pop();
                    self.is_free[cell.index()] = false;
                    return cell;
                }
                self.alloc_fresh()
            }
        }
    }

    /// Like [`CellManager::alloc`], but free cells rejected by `avoid` are
    /// skipped and `None` is returned instead of creating a fresh cell.
    ///
    /// This is the spilling hook: the copy-reuse translator avoids free
    /// cells that still cache useful values, and on `None` falls back to
    /// [`CellManager::alloc_fresh`] — a cold spare row with zero wear, the
    /// least-worn choice by definition — rather than clobbering the cache.
    pub fn try_alloc_avoiding(
        &mut self,
        budget: u64,
        mut avoid: impl FnMut(CellId) -> bool,
    ) -> Option<CellId> {
        match self.allocation {
            Allocation::Lifo => {
                let pos = self.free_stack.iter().rposition(|&c| {
                    self.is_free[c.index()] && self.fits_budget(c, budget) && !avoid(c)
                })?;
                let cell = self.free_stack.remove(pos);
                self.is_free[cell.index()] = false;
                Some(cell)
            }
            Allocation::MinWrite => {
                // Pop lazily as in `alloc`; avoided-but-valid entries are
                // parked and re-pushed so the pool is left intact.
                let mut parked: Vec<Reverse<(u64, u32)>> = Vec::new();
                let mut found = None;
                while let Some(&Reverse((count, raw))) = self.free_heap.peek() {
                    let cell = CellId::new(raw);
                    if !self.is_free[cell.index()] || self.writes[cell.index()] != count {
                        self.free_heap.pop();
                        continue;
                    }
                    // Counts are heap-ordered: if the minimum does not fit
                    // the budget, nothing does.
                    if !self.fits_budget(cell, budget) {
                        break;
                    }
                    self.free_heap.pop();
                    if avoid(cell) {
                        parked.push(Reverse((count, raw)));
                        continue;
                    }
                    self.is_free[cell.index()] = false;
                    found = Some(cell);
                    break;
                }
                for entry in parked {
                    self.free_heap.push(entry);
                }
                found
            }
        }
    }

    /// Returns a cell to the free pool. Cells that can never fit even a
    /// single write again are retired (dropped) instead.
    pub fn release(&mut self, cell: CellId) {
        debug_assert!(!self.is_free[cell.index()], "double release of {cell}");
        if !self.fits_budget(cell, 1) {
            return; // retired: at the write limit
        }
        self.is_free[cell.index()] = true;
        match self.allocation {
            Allocation::Lifo => self.free_stack.push(cell),
            Allocation::MinWrite => self
                .free_heap
                .push(Reverse((self.writes[cell.index()], cell.raw_u32()))),
        }
    }

    /// Number of cells currently in the free pool.
    pub fn free_len(&self) -> usize {
        self.is_free.iter().filter(|&&f| f).count()
    }
}

/// Extension trait: `CellId` raw access for heap keys.
trait CellRaw {
    fn raw_u32(self) -> u32;
}

impl CellRaw for CellId {
    fn raw_u32(self) -> u32 {
        u32::try_from(self.index()).expect("cell index fits u32")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_n(m: &mut CellManager, c: CellId, n: u64) {
        for _ in 0..n {
            m.record_write(c);
        }
    }

    #[test]
    fn fresh_allocation_counts_cells() {
        let mut m = CellManager::new(Allocation::Lifo, None);
        let a = m.alloc(1);
        let b = m.alloc(1);
        assert_ne!(a, b);
        assert_eq!(m.num_cells(), 2);
        assert_eq!(m.writes_of(a), 0);
    }

    #[test]
    fn lifo_returns_most_recent() {
        let mut m = CellManager::new(Allocation::Lifo, None);
        let a = m.alloc(1);
        let b = m.alloc(1);
        m.release(a);
        m.release(b);
        assert_eq!(m.alloc(1), b, "LIFO pops the most recently freed");
        assert_eq!(m.alloc(1), a);
        assert_eq!(m.num_cells(), 2, "no fresh cell needed");
    }

    #[test]
    fn min_write_returns_least_worn() {
        let mut m = CellManager::new(Allocation::MinWrite, None);
        let a = m.alloc(1);
        let b = m.alloc(1);
        let c = m.alloc(1);
        write_n(&mut m, a, 5);
        write_n(&mut m, b, 1);
        write_n(&mut m, c, 3);
        m.release(a);
        m.release(b);
        m.release(c);
        assert_eq!(m.alloc(1), b, "least-worn first");
        assert_eq!(m.alloc(1), c);
        assert_eq!(m.alloc(1), a);
    }

    #[test]
    fn min_write_heap_handles_reuse() {
        let mut m = CellManager::new(Allocation::MinWrite, None);
        let a = m.alloc(1);
        m.release(a);
        let a2 = m.alloc(1);
        assert_eq!(a, a2);
        write_n(&mut m, a2, 4);
        m.release(a2);
        // The stale (count 0) entry must be skipped; a fresh cell with a
        // smaller count would win, but here only `a` exists.
        assert_eq!(m.alloc(1), a);
        assert_eq!(m.writes_of(a), 4);
    }

    #[test]
    fn budget_filters_pool_and_falls_back_to_fresh() {
        let mut m = CellManager::new(Allocation::MinWrite, Some(5));
        let a = m.alloc(1);
        write_n(&mut m, a, 4);
        m.release(a); // 4 writes, limit 5: only 1 left
        assert!(m.fits_budget(a, 1));
        assert!(!m.fits_budget(a, 2));
        let b = m.alloc(3); // needs 3 writes: a does not fit
        assert_ne!(a, b);
        let c = m.alloc(1); // a fits a single write
        assert_eq!(c, a);
    }

    #[test]
    fn retired_cells_never_return() {
        let mut m = CellManager::new(Allocation::MinWrite, Some(3));
        let a = m.alloc(3);
        write_n(&mut m, a, 3);
        m.release(a); // at the limit: retired
        assert_eq!(m.free_len(), 0);
        let b = m.alloc(1);
        assert_ne!(a, b);
    }

    #[test]
    fn lifo_with_budget_scans_down_the_stack() {
        let mut m = CellManager::new(Allocation::Lifo, Some(4));
        let a = m.alloc(1); // will have 1 write
        let b = m.alloc(1); // will have 3 writes
        write_n(&mut m, a, 1);
        write_n(&mut m, b, 3);
        m.release(a);
        m.release(b); // stack: [a, b], top = b
                      // budget 2: b (3+2>4) does not fit, a (1+2≤4) does.
        assert_eq!(m.alloc(2), a);
    }

    #[test]
    fn no_limit_means_everything_fits() {
        let mut m = CellManager::new(Allocation::Lifo, None);
        let a = m.alloc(1);
        write_n(&mut m, a, 1_000_000);
        assert!(m.fits_budget(a, u64::MAX / 2));
    }

    #[test]
    fn take_pins_a_specific_cell_and_pool_skips_its_stale_entry() {
        for allocation in [Allocation::Lifo, Allocation::MinWrite] {
            let mut m = CellManager::new(allocation, None);
            let a = m.alloc(1);
            let b = m.alloc(1);
            write_n(&mut m, a, 1);
            m.release(a);
            m.release(b);
            assert!(m.is_free(a) && m.is_free(b));
            // Pin `a` out of band; the pool must never hand it out again
            // even though its entry is still queued.
            m.take(a);
            assert!(!m.is_free(a));
            assert_eq!(m.alloc(1), b, "{allocation:?}");
            let fresh = m.alloc(1);
            assert_eq!(m.num_cells(), 3, "stale entry skipped, fresh cell");
            assert_ne!(fresh, a);
        }
    }

    #[test]
    fn take_then_release_keeps_the_pool_consistent() {
        for allocation in [Allocation::Lifo, Allocation::MinWrite] {
            let mut m = CellManager::new(allocation, None);
            let a = m.alloc(1);
            m.release(a);
            m.take(a);
            m.release(a); // back in the pool, duplicate entry behind it
            assert_eq!(m.alloc(1), a, "{allocation:?}");
            assert!(!m.is_free(a));
            let b = m.alloc(1);
            assert_ne!(b, a, "consumed duplicate must not resurrect a");
        }
    }

    #[test]
    fn try_alloc_avoiding_skips_protected_cells() {
        for allocation in [Allocation::Lifo, Allocation::MinWrite] {
            let mut m = CellManager::new(allocation, None);
            let a = m.alloc(1);
            let b = m.alloc(1);
            write_n(&mut m, a, 1);
            write_n(&mut m, b, 2);
            m.release(a);
            m.release(b);
            let got = m.try_alloc_avoiding(1, |c| c == a);
            assert_eq!(got, Some(b), "{allocation:?}");
            // Only the protected cell remains: no candidate at all.
            assert_eq!(m.try_alloc_avoiding(1, |c| c == a), None);
            // The protected cell is still free and allocatable normally.
            assert!(m.is_free(a));
            assert_eq!(m.alloc(1), a);
        }
    }

    #[test]
    fn try_alloc_avoiding_respects_budgets() {
        let mut m = CellManager::new(Allocation::MinWrite, Some(4));
        let a = m.alloc(1);
        write_n(&mut m, a, 3);
        m.release(a); // only 1 write left
        assert_eq!(m.try_alloc_avoiding(2, |_| false), None);
        assert_eq!(m.try_alloc_avoiding(1, |_| false), Some(a));
    }

    #[test]
    fn aggregate_and_budget_accessors() {
        let mut m = CellManager::new(Allocation::MinWrite, Some(10));
        let a = m.alloc(1);
        let b = m.alloc(1);
        write_n(&mut m, a, 3);
        write_n(&mut m, b, 7);
        assert_eq!(m.total_writes(), 10);
        assert_eq!(m.peak_writes(), 7);
        assert_eq!(m.remaining_budget(a), Some(7));
        assert_eq!(m.remaining_budget(b), Some(3));
        let unbounded = CellManager::new(Allocation::Lifo, None);
        assert_eq!(unbounded.peak_writes(), 0);
        let mut u = unbounded;
        let c = u.alloc(1);
        assert_eq!(u.remaining_budget(c), None);
    }
}
