//! The compilation pass pipeline: a small pass manager driving explicit
//! stages over a shared [`PipelineState`].
//!
//! The standard RM3 pipeline is
//!
//! 1. **rewrite** ([`RewritePass`]) — apply the configured MIG rewriting
//!    algorithm (paper Algorithm 1 or 2) to the source graph;
//!    optionally followed by **esat** ([`EsatPass`]) — equality
//!    saturation over the same Ω rules with weighted-cost extraction;
//! 2. **schedule** ([`SchedulePass`]) — fix the node translation order
//!    under the configured selection policy (topological / area-aware /
//!    endurance-aware, paper Algorithm 3);
//! 3. **translate** ([`crate::translate::TranslatePass`]) — allocate cells
//!    and emit RM3 instructions in schedule order (allocation policies:
//!    LIFO / minimum-write / maximum-write);
//! 4. **peephole** ([`crate::peephole::PeepholePass`], optional) — elide
//!    provably redundant destination writes from the emitted program;
//! 5. **finalize** ([`FinalizePass`]) — debug-validate the program.
//!
//! Every paper technique plugs into exactly one pass, so baselines are
//! pipelines with passes swapped or dropped rather than separate
//! compilers.

use rlim_mig::rewrite::rewrite;
use rlim_mig::{Mig, NodeId, StructuralView};
use rlim_plim::Program;

use crate::compiler::CompileResult;
use crate::options::CompileOptions;
use crate::select::Scheduler;

/// Shared state the passes read and write: the blackboard of the pipeline.
#[derive(Debug)]
pub struct PipelineState<'a> {
    /// The source graph, untouched.
    pub source: &'a Mig,
    /// The options driving every pass.
    pub options: &'a CompileOptions,
    /// The (possibly rewritten) graph the later passes compile. `None`
    /// until the rewrite pass ran; [`PipelineState::graph`] falls back to
    /// the source.
    pub mig: Option<Mig>,
    /// Initial pending-use counts per node (live gate-children edges plus
    /// PO references), shared between scheduling and translation.
    pub fanout: Option<Vec<u32>>,
    /// The node translation order fixed by the schedule pass.
    pub schedule: Option<Vec<NodeId>>,
    /// The emitted program.
    pub program: Option<Program>,
}

impl<'a> PipelineState<'a> {
    /// Fresh state for one compilation.
    pub fn new(source: &'a Mig, options: &'a CompileOptions) -> Self {
        PipelineState {
            source,
            options,
            mig: None,
            fanout: None,
            schedule: None,
            program: None,
        }
    }

    /// The graph the downstream passes operate on: the rewritten graph if
    /// the rewrite pass ran, the source otherwise.
    pub fn graph(&self) -> &Mig {
        self.mig.as_ref().unwrap_or(self.source)
    }
}

/// One pipeline stage.
///
/// Passes are deterministic functions of the [`PipelineState`]; the order
/// they run in is fixed by the [`PassManager`] that holds them.
pub trait Pass {
    /// Short stage name, used in pipeline listings and diagnostics.
    fn name(&self) -> &'static str;

    /// Executes the stage, reading and writing the shared state.
    fn run(&self, state: &mut PipelineState<'_>);
}

/// An ordered list of passes: the compiler is `PassManager::standard`
/// applied to a graph.
///
/// # Examples
///
/// ```
/// use rlim_compiler::{CompileOptions, PassManager};
/// use rlim_mig::Mig;
///
/// // The naive baseline skips rewriting; the peephole is opt-in.
/// let naive = PassManager::standard(&CompileOptions::naive());
/// assert_eq!(naive.pass_names(), ["schedule", "translate", "finalize"]);
///
/// let full = PassManager::standard(
///     &CompileOptions::endurance_aware().with_peephole(true),
/// );
/// assert_eq!(
///     full.pass_names(),
///     ["rewrite", "schedule", "translate", "peephole", "finalize"],
/// );
///
/// // Running the pipeline compiles the graph.
/// let mut mig = Mig::new(2);
/// let (a, b) = (mig.input(0), mig.input(1));
/// let g = mig.and(a, b);
/// mig.add_output(g);
/// let options = CompileOptions::naive();
/// let result = PassManager::standard(&options).run(&mig, &options);
/// assert_eq!(result.num_instructions(), 1);
/// ```
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// An empty pipeline (build your own with [`PassManager::push`]).
    pub fn new() -> Self {
        PassManager { passes: Vec::new() }
    }

    /// The standard pipeline for `options`: rewrite (when configured) →
    /// schedule → translate → peephole (when enabled) → finalize.
    pub fn standard(options: &CompileOptions) -> Self {
        let mut manager = PassManager::new();
        if options.rewriting.is_some() {
            manager.push(Box::new(RewritePass));
        }
        if options.esat {
            manager.push(Box::new(EsatPass));
        }
        manager.push(Box::new(SchedulePass));
        manager.push(Box::new(crate::translate::TranslatePass));
        if options.peephole {
            manager.push(Box::new(crate::peephole::PeepholePass));
        }
        manager.push(Box::new(FinalizePass));
        manager
    }

    /// The baseline pipeline regardless of `options.rewriting` /
    /// `options.peephole`: schedule → translate → finalize on the graph
    /// as given. This is what the naive column and the self-hosted
    /// controller's reference translator use.
    pub fn baseline() -> Self {
        let mut manager = PassManager::new();
        manager.push(Box::new(SchedulePass));
        manager.push(Box::new(crate::translate::TranslatePass));
        manager.push(Box::new(FinalizePass));
        manager
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// The stage names in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass over a fresh state and packages the result.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline contains no pass that emits a program.
    pub fn run(&self, mig: &Mig, options: &CompileOptions) -> CompileResult {
        let mut state = PipelineState::new(mig, options);
        for pass in &self.passes {
            pass.run(&mut state);
        }
        let program = state
            .program
            .take()
            .expect("pipeline must contain a translate pass");
        let graph = match state.mig.take() {
            Some(rewritten) => rewritten,
            None => mig.clone(),
        };
        CompileResult {
            program,
            mig: graph,
            options: *options,
        }
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::standard(&CompileOptions::default())
    }
}

/// Initial pending-use counts per node: one per live gate-children edge
/// plus one per PO reference (PO references are never consumed, pinning PO
/// cells forever).
pub(crate) fn initial_fanout(mig: &Mig, view: &StructuralView) -> Vec<u32> {
    let mut fanout = vec![0u32; mig.num_nodes()];
    for g in mig.gates() {
        if !view.is_live(g) {
            continue;
        }
        for s in mig.children(g) {
            if !s.is_constant() {
                fanout[s.node().index()] += 1;
            }
        }
    }
    for s in mig.outputs() {
        if !s.is_constant() {
            fanout[s.node().index()] += 1;
        }
    }
    fanout
}

/// Applies the configured MIG rewriting algorithm (paper Algorithm 1/2).
#[derive(Debug, Clone, Copy, Default)]
pub struct RewritePass;

impl Pass for RewritePass {
    fn name(&self) -> &'static str {
        "rewrite"
    }

    fn run(&self, state: &mut PipelineState<'_>) {
        if let Some(algorithm) = state.options.rewriting {
            state.mig = Some(rewrite(state.source, algorithm, state.options.effort));
        }
    }
}

/// Equality saturation over the Ω rules with weighted-cost extraction.
///
/// Runs up to [`ESAT_ROUNDS`] saturate → extract → polish rounds.
/// Each round loads the current graph into an e-graph, saturates the
/// shared Ω rule descriptions within the configured node/iteration
/// budgets, and extracts the cheapest realization anchored at the
/// input ([`rlim_egraph::extract_around`]). The cost weights follow
/// the configuration's allocation policy: minimum-write columns
/// optimize the endurance weights (RM3 write estimate dominates,
/// complemented edges break ties), LIFO columns the area weights
/// (gates dominate). The extracted graph is polished by the configured
/// greedy rewriting algorithm — saturation proposes a new basin, the
/// greedy fixed point descends to its bottom — and the polished graph
/// seeds the next round, so the search alternates between the
/// e-graph's exact-accounting moves and the greedy depth-aware ones.
///
/// The extraction cost model is an RM3 estimate; the real objective is
/// what the back end produces. So every round's candidates (raw and
/// polished) are judged by the actual baseline pipeline (schedule →
/// translate → finalize under the same options) and the pass keeps the
/// pointwise-best graph on the paper's metrics — `#I`, max per-cell
/// writes, write-count standard deviation — with ties keeping the
/// earlier graph. [`crate::compile`] additionally guards the final
/// result with the same best-of against the unsaturated pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct EsatPass;

/// Saturate → extract → polish rounds per [`EsatPass`] invocation.
/// Rounds past the first matter when polishing moves the graph into a
/// basin whose saturation exposes new sharing; the pass exits early at
/// a fixed point.
pub const ESAT_ROUNDS: usize = 3;

impl Pass for EsatPass {
    fn name(&self) -> &'static str {
        "esat"
    }

    fn run(&self, state: &mut PipelineState<'_>) {
        use rlim_egraph::{
            extract_around, saturate as egraph_saturate, Budget, CostWeights, EGraph,
        };

        let budget = Budget {
            max_nodes: state.options.esat_nodes as usize,
            max_iters: state.options.esat_iters as usize,
        };
        let rules = rlim_mig::rewrite::rules::omega_rules();
        let weights = match state.options.allocation {
            crate::options::Allocation::MinWrite => CostWeights::endurance(),
            crate::options::Allocation::Lifo => CostWeights::area(),
        };
        let score = |g: &Mig| -> (usize, u64, f64) {
            let r = PassManager::baseline().run(g, state.options);
            let s = r.write_stats();
            (r.num_instructions(), s.max, s.stdev)
        };
        let mut cur = state.graph().clone();
        let mut best_score = score(&cur);
        let mut best = cur.clone();
        for _ in 0..ESAT_ROUNDS {
            let before = cur.fingerprint();
            let (mut eg, outputs, classes) = EGraph::from_mig_with_classes(&cur);
            egraph_saturate(&mut eg, &rules, &budget);
            let raw = extract_around(&eg, &outputs, &weights, &cur, &classes);
            let polished = match state.options.rewriting {
                Some(algorithm) => rewrite(&raw, algorithm, state.options.effort),
                None => raw.clone(),
            };
            for cand in [&raw, &polished] {
                let sc = score(cand);
                let no_worse = sc.0 <= best_score.0 && sc.1 <= best_score.1 && sc.2 <= best_score.2;
                let strictly_better =
                    sc.0 < best_score.0 || sc.1 < best_score.1 || sc.2 < best_score.2;
                if no_worse && strictly_better {
                    best_score = sc;
                    best = cand.clone();
                }
            }
            cur = polished;
            if cur.fingerprint() == before {
                break;
            }
        }
        state.mig = Some(best);
    }
}

/// Fixes the node translation order under the configured selection policy.
///
/// The pass replays exactly the interleaving the translator will perform:
/// after a node is picked, each non-constant child loses one pending use
/// (refreshing the releasing counts of candidates) before the node's
/// parents are unlocked — so the schedule is identical to the one the old
/// monolithic compile loop produced.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulePass;

impl Pass for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn run(&self, state: &mut PipelineState<'_>) {
        let graph = state.graph();
        // One structural view serves both the pending-use counts and the
        // scheduler's liveness/levels/parent queries.
        let view = StructuralView::of(graph);
        let initial = initial_fanout(graph, &view);
        let mut fanout = initial.clone();
        let mut scheduler = Scheduler::from_view(graph, state.options.selection, &fanout, view);
        let mut schedule = Vec::with_capacity(graph.num_live_gates());
        while let Some(n) = scheduler.pop(&fanout) {
            schedule.push(n);
            for s in graph.children(n) {
                if s.is_constant() {
                    continue;
                }
                let child = s.node();
                fanout[child.index()] -= 1;
                if fanout[child.index()] == 1 {
                    scheduler.child_now_single(child, &fanout);
                }
            }
            scheduler.after_compute(n, &fanout);
        }
        state.fanout = Some(initial);
        state.schedule = Some(schedule);
    }
}

/// Debug-validates the emitted program (structural well-formedness).
#[derive(Debug, Clone, Copy, Default)]
pub struct FinalizePass;

impl Pass for FinalizePass {
    fn name(&self) -> &'static str {
        "finalize"
    }

    fn run(&self, state: &mut PipelineState<'_>) {
        let program = state.program.as_ref().expect("finalize needs a program");
        debug_assert_eq!(program.validate(), Ok(()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn adder() -> Mig {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let (sum, carry) = mig.full_adder(a, b, c);
        mig.add_output(sum);
        mig.add_output(carry);
        mig
    }

    #[test]
    fn standard_pipeline_orders_passes() {
        assert_eq!(
            PassManager::standard(&CompileOptions::naive()).pass_names(),
            ["schedule", "translate", "finalize"]
        );
        assert_eq!(
            PassManager::standard(&CompileOptions::endurance_aware()).pass_names(),
            ["rewrite", "schedule", "translate", "finalize"]
        );
        assert_eq!(
            PassManager::standard(&CompileOptions::endurance_aware().with_peephole(true))
                .pass_names(),
            ["rewrite", "schedule", "translate", "peephole", "finalize"]
        );
        assert_eq!(
            PassManager::standard(&CompileOptions::endurance_aware().with_esat(true)).pass_names(),
            ["rewrite", "esat", "schedule", "translate", "finalize"]
        );
        assert_eq!(
            PassManager::baseline().pass_names(),
            ["schedule", "translate", "finalize"]
        );
    }

    #[test]
    fn pipeline_matches_compile_entry_point() {
        let mig = adder();
        for options in [
            CompileOptions::naive(),
            CompileOptions::endurance_aware(),
            CompileOptions::endurance_aware().with_max_writes(5),
        ] {
            let direct = compile(&mig, &options);
            let piped = PassManager::standard(&options).run(&mig, &options);
            assert_eq!(direct.program, piped.program, "{options:?}");
        }
    }

    #[test]
    fn baseline_pipeline_ignores_rewriting_config() {
        let mig = adder();
        let options = CompileOptions::endurance_aware();
        let baseline = PassManager::baseline().run(&mig, &options);
        // The baseline compiled the source graph, not a rewritten one.
        assert_eq!(baseline.mig.num_gates(), mig.num_gates());
    }

    #[test]
    fn schedule_pass_emits_every_live_gate_once() {
        let mig = adder();
        let options = CompileOptions::endurance_aware();
        let mut state = PipelineState::new(&mig, &options);
        SchedulePass.run(&mut state);
        let schedule = state.schedule.expect("schedule produced");
        assert_eq!(schedule.len(), mig.num_live_gates());
        let mut seen = std::collections::HashSet::new();
        for n in &schedule {
            assert!(seen.insert(*n), "{n} scheduled twice");
        }
        assert!(state.fanout.is_some(), "fanout shared with translation");
    }

    #[test]
    fn graph_falls_back_to_source() {
        let mig = adder();
        let options = CompileOptions::naive();
        let state = PipelineState::new(&mig, &options);
        assert_eq!(state.graph().num_gates(), mig.num_gates());
    }
}
