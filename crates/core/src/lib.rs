//! # rlim-compiler — the endurance-aware MIG→PLiM compiler
//!
//! The primary contribution of *"Endurance Management for Resistive
//! Logic-In-Memory Computing Architectures"* (DATE 2017), reimplemented from
//! scratch: a compiler that translates Majority-Inverter Graphs into PLiM
//! `RM3` programs while balancing the write traffic over the RRAM crossbar.
//!
//! The paper's four jointly applied techniques map to:
//!
//! 1. **Minimum write count strategy** — [`Allocation::MinWrite`]: freed
//!    cells are handed out least-worn first.
//! 2. **Maximum write count strategy** —
//!    [`CompileOptions::with_max_writes`]: cells are retired at a write
//!    budget, trading extra instructions/cells for a hard per-cell bound.
//! 3. **Endurance-aware MIG rewriting** — Algorithm 2, selected via
//!    [`CompileOptions::endurance_rewriting`] (implemented in
//!    `rlim_mig::rewrite`).
//! 4. **Endurance-aware node selection** — Algorithm 3,
//!    [`Selection::EnduranceAware`]: computable nodes with the smallest
//!    fanout level index (shortest storage duration) first.
//!
//! The ready-made [`CompileOptions`] constructors correspond one-to-one to
//! the columns of the paper's Table I.
//!
//! ## Example
//!
//! ```
//! use rlim_compiler::{compile, CompileOptions};
//! use rlim_mig::Mig;
//! use rlim_plim::Machine;
//!
//! let mut mig = Mig::new(3);
//! let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
//! let (sum, carry) = mig.full_adder(a, b, c);
//! mig.add_output(sum);
//! mig.add_output(carry);
//!
//! let naive = compile(&mig, &CompileOptions::naive());
//! let balanced = compile(&mig, &CompileOptions::endurance_aware());
//!
//! // Both programs compute the same function…
//! let mut m1 = Machine::for_program(&naive.program);
//! let mut m2 = Machine::for_program(&balanced.program);
//! let inputs = [true, false, true];
//! assert_eq!(
//!     m1.run(&naive.program, &inputs).unwrap(),
//!     m2.run(&balanced.program, &inputs).unwrap(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
pub mod cells;
mod compiler;
mod options;
mod peephole;
mod pipeline;
mod select;
mod translate;
pub mod values;

pub use backend::{Backend, HostedRm3Backend, ImpBackend, Rm3Backend, WideRm3Backend};
pub use cells::CellManager;
pub use compiler::{compile, CompileResult};
pub use options::{Allocation, CompileOptions, Selection, DEFAULT_ESAT_ITERS, DEFAULT_ESAT_NODES};
pub use peephole::{elide_dead_writes, elide_redundant_writes, PeepholePass};
pub use pipeline::{
    EsatPass, FinalizePass, Pass, PassManager, PipelineState, RewritePass, SchedulePass,
};
pub use translate::TranslatePass;
