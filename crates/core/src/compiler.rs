//! The MIG → PLiM compile entry point and its result type.
//!
//! [`compile`] is a thin wrapper over the standard pass pipeline
//! (rewrite → schedule → translate → optional peephole → finalize); see
//! [`crate::pipeline`] for the pass manager and
//! [`crate::translate`] for the node-translation rules.

use rlim_mig::Mig;
use rlim_plim::Program;
use rlim_rram::WriteStats;

use crate::options::CompileOptions;
use crate::pipeline::PassManager;

/// Output of [`compile`]: the program plus the graph it was generated from.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The compiled PLiM program.
    pub program: Program,
    /// The (possibly rewritten) MIG the program computes.
    pub mig: Mig,
    /// The options used.
    pub options: CompileOptions,
}

impl CompileResult {
    /// Write-distribution statistics over **all** cells the program
    /// allocates — the paper's STDEV / min / max metrics.
    pub fn write_stats(&self) -> WriteStats {
        self.program.write_stats()
    }

    /// The paper's `#I` metric.
    pub fn num_instructions(&self) -> usize {
        self.program.num_instructions()
    }

    /// The paper's `#R` metric.
    pub fn num_rrams(&self) -> usize {
        self.program.num_rrams()
    }

    /// Total writes one execution inflicts on its array (= `#I`; every
    /// RM3 instruction is one destination write). This is the unit a
    /// fleet's per-array write budget is expressed in.
    pub fn total_writes(&self) -> u64 {
        self.program.num_instructions() as u64
    }

    /// The hottest cell's per-execution write count — with a device
    /// endurance `E`, one array survives `⌊E / peak⌋` executions of this
    /// program (see `rlim_rram::lifetime`).
    pub fn peak_writes(&self) -> u64 {
        self.write_stats().max
    }
}

/// Compiles an MIG into a PLiM program under the given options, running
/// the standard pass pipeline.
///
/// With [`CompileOptions::with_copy_reuse`] enabled the pipeline runs
/// twice — once with copy discovery and once without — and the reuse
/// schedule is kept only when its wear profile is pointwise no worse
/// (`#I`, peak per-cell writes, write STDEV), so the option can only
/// improve the paper's endurance metrics.
/// [`CompileOptions::with_esat`] gets the same guard one level up:
/// the equality-saturated graph is kept only when its compiled wear
/// profile is pointwise no worse than the greedy fixed point's.
///
/// # Examples
///
/// ```
/// use rlim_compiler::{compile, CompileOptions};
/// use rlim_mig::Mig;
///
/// let mut mig = Mig::new(3);
/// let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
/// let m = mig.add_maj(a, !b, c);
/// mig.add_output(m);
/// let result = compile(&mig, &CompileOptions::naive());
/// // One ideal node: a single RM3 instruction, no extra cells.
/// assert_eq!(result.num_instructions(), 1);
/// assert_eq!(result.num_rrams(), 3);
/// ```
pub fn compile(mig: &Mig, options: &CompileOptions) -> CompileResult {
    let result = compile_with_copy_selection(mig, options);
    if !options.esat {
        return result;
    }
    // The extraction cost is a tree estimate, so on reconvergent graphs
    // the saturated pick can lose to the greedy fixed point once real
    // scheduling and allocation run. Compile the esat-off configuration
    // too and keep the saturated result only when it is pointwise no
    // worse on the paper's metrics — enabling `esat` never degrades
    // `#I`, peak writes, or balance.
    let base_options = options.with_esat(false);
    let mut baseline = compile_with_copy_selection(mig, &base_options);
    let (esat_stats, baseline_stats) = (result.write_stats(), baseline.write_stats());
    if result.num_instructions() <= baseline.num_instructions()
        && esat_stats.max <= baseline_stats.max
        && esat_stats.stdev <= baseline_stats.stdev
    {
        result
    } else {
        baseline.options = *options;
        baseline
    }
}

/// The pipeline run with the copy-reuse best-of applied (the inner
/// layer of [`compile`]'s selection; esat's best-of wraps it).
fn compile_with_copy_selection(mig: &Mig, options: &CompileOptions) -> CompileResult {
    let result = PassManager::standard(options).run(mig, options);
    if !options.copy_reuse {
        return result;
    }
    // Wear-aware selection: copy discovery always removes instructions,
    // but on graphs with little reuse the elided materialisations double
    // as implicit wear leveling, and dropping them can worsen the write
    // distribution. Compile the baseline schedule too and keep the reuse
    // one only when its wear profile is pointwise no worse — so enabling
    // `copy_reuse` never degrades `#I`, peak writes, or balance.
    let baseline_options = options.with_copy_reuse(false);
    let mut baseline = PassManager::standard(&baseline_options).run(mig, &baseline_options);
    let (reused_stats, baseline_stats) = (result.write_stats(), baseline.write_stats());
    if result.num_instructions() <= baseline.num_instructions()
        && reused_stats.max <= baseline_stats.max
        && reused_stats.stdev <= baseline_stats.stdev
    {
        result
    } else {
        baseline.options = *options;
        baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlim_mig::Signal;
    use rlim_plim::Machine;

    /// Compile + execute on the machine must match MIG evaluation.
    fn assert_functional(mig: &Mig, options: &CompileOptions, seed: u64) {
        use rand::{Rng, SeedableRng};
        let result = compile(mig, options);
        result.program.validate().expect("program is well-formed");
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..16 {
            let inputs: Vec<bool> = (0..mig.num_inputs()).map(|_| rng.gen()).collect();
            let expect = mig.evaluate(&inputs);
            let mut machine = Machine::for_program(&result.program);
            let got = machine
                .run(&result.program, &inputs)
                .expect("no endurance limit");
            assert_eq!(got, expect, "inputs {inputs:?} options {options:?}");
        }
    }

    fn all_option_sets() -> Vec<CompileOptions> {
        vec![
            CompileOptions::naive(),
            CompileOptions::plim_compiler(),
            CompileOptions::min_write(),
            CompileOptions::endurance_rewriting(),
            CompileOptions::endurance_aware(),
            CompileOptions::endurance_aware().with_max_writes(10),
            CompileOptions::endurance_aware().with_max_writes(3),
            CompileOptions::endurance_aware().with_peephole(true),
            CompileOptions::naive().with_peephole(true),
            CompileOptions::endurance_aware().with_copy_reuse(true),
            CompileOptions::naive().with_copy_reuse(true),
            CompileOptions::endurance_aware()
                .with_copy_reuse(true)
                .with_peephole(true),
            CompileOptions::endurance_aware()
                .with_max_writes(10)
                .with_copy_reuse(true),
            CompileOptions::endurance_aware().with_esat(true),
            CompileOptions::naive().with_esat(true),
            CompileOptions::endurance_aware()
                .with_esat(true)
                .with_copy_reuse(true)
                .with_peephole(true),
        ]
    }

    #[test]
    fn ideal_node_is_one_instruction() {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let m = mig.add_maj(a, !b, c);
        mig.add_output(m);
        let r = compile(&mig, &CompileOptions::naive());
        assert_eq!(r.num_instructions(), 1);
        assert_eq!(r.num_rrams(), 3, "three input cells, no extras");
        assert_functional(&mig, &CompileOptions::naive(), 1);
    }

    #[test]
    fn zero_complement_node_needs_materialisation() {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let m = mig.add_maj(a, b, c);
        mig.add_output(m);
        let r = compile(&mig, &CompileOptions::naive());
        // Q must be an inverse: set + load + main = 3 instructions, 1 temp.
        assert_eq!(r.num_instructions(), 3);
        assert_eq!(r.num_rrams(), 4);
        assert_functional(&mig, &CompileOptions::naive(), 2);
    }

    #[test]
    fn and_gate_uses_constant_operands() {
        // ⟨a b 0⟩: Q can be the constant (free), Z consumes a or b in place.
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        let g = mig.and(a, b);
        mig.add_output(g);
        let r = compile(&mig, &CompileOptions::naive());
        assert_eq!(r.num_instructions(), 1);
        assert_eq!(r.num_rrams(), 2);
        assert_functional(&mig, &CompileOptions::naive(), 3);
    }

    #[test]
    fn multi_fanout_child_forces_copy() {
        // g1 = a∧b feeds two parents: the first parent cannot consume it.
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let g1 = mig.and(a, b);
        let g2 = mig.and(g1, c);
        let g3 = mig.or(g1, c);
        mig.add_output(g2);
        mig.add_output(g3);
        assert_functional(&mig, &CompileOptions::naive(), 4);
    }

    #[test]
    fn complemented_output_materialised() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        let g = mig.and(a, b);
        mig.add_output(!g);
        mig.add_output(!g); // shared: one materialisation
        let r = compile(&mig, &CompileOptions::naive());
        assert_eq!(r.program.output_cells[0], r.program.output_cells[1]);
        assert_functional(&mig, &CompileOptions::naive(), 5);
    }

    #[test]
    fn constant_output_supported() {
        let mut mig = Mig::new(1);
        mig.add_output(Signal::TRUE);
        mig.add_output(Signal::FALSE);
        let r = compile(&mig, &CompileOptions::naive());
        let mut machine = Machine::for_program(&r.program);
        let out = machine.run(&r.program, &[false]).unwrap();
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn input_passthrough_output() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        mig.add_output(a);
        mig.add_output(!a);
        for opts in all_option_sets() {
            assert_functional(&mig, &opts, 6);
        }
    }

    #[test]
    fn all_policies_functionally_correct_on_random_graphs() {
        use rlim_mig::random::{generate, RandomMigConfig};
        let cfg = RandomMigConfig {
            inputs: 8,
            outputs: 6,
            gates: 120,
            ..Default::default()
        };
        for seed in 0..3 {
            let mig = generate(&cfg, seed);
            for opts in all_option_sets() {
                assert_functional(&mig, &opts, seed ^ 77);
            }
        }
    }

    #[test]
    fn max_write_strategy_bounds_every_cell() {
        use rlim_mig::random::{generate, RandomMigConfig};
        let cfg = RandomMigConfig {
            inputs: 8,
            outputs: 6,
            gates: 200,
            ..Default::default()
        };
        let mig = generate(&cfg, 11);
        for limit in [3, 10, 20] {
            for peephole in [false, true] {
                for copy_reuse in [false, true] {
                    let opts = CompileOptions::endurance_aware()
                        .with_max_writes(limit)
                        .with_peephole(peephole)
                        .with_copy_reuse(copy_reuse);
                    let r = compile(&mig, &opts);
                    let counts = r.program.write_counts();
                    assert!(
                        counts.iter().all(|&c| c <= limit),
                        "limit {limit} violated (peephole {peephole}, \
                         copy_reuse {copy_reuse}): max {}",
                        counts.iter().max().unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn min_write_strategy_does_not_change_instruction_or_cell_counts() {
        // Paper: "the minimum write count strategy does not influence the
        // number of required instructions and RRAMs."
        use rlim_mig::random::{generate, RandomMigConfig};
        let cfg = RandomMigConfig {
            inputs: 10,
            outputs: 8,
            gates: 300,
            ..Default::default()
        };
        for seed in 0..3 {
            let mig = generate(&cfg, seed);
            let lifo = compile(&mig, &CompileOptions::plim_compiler());
            let minw = compile(&mig, &CompileOptions::min_write());
            assert_eq!(lifo.num_instructions(), minw.num_instructions());
            assert_eq!(lifo.num_rrams(), minw.num_rrams());
        }
    }

    #[test]
    fn min_write_improves_balance_on_hot_cell_pattern() {
        use rlim_mig::random::{generate, RandomMigConfig};
        let cfg = RandomMigConfig {
            inputs: 10,
            outputs: 8,
            gates: 400,
            ..Default::default()
        };
        let mut improved = 0;
        for seed in 0..5 {
            let mig = generate(&cfg, seed);
            let lifo = compile(&mig, &CompileOptions::plim_compiler()).write_stats();
            let minw = compile(&mig, &CompileOptions::min_write()).write_stats();
            if minw.stdev <= lifo.stdev {
                improved += 1;
            }
        }
        assert!(improved >= 4, "min-write should usually balance better");
    }

    #[test]
    fn compile_result_metrics_consistent() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        let g = mig.xor(a, b);
        mig.add_output(g);
        let r = compile(&mig, &CompileOptions::endurance_aware());
        assert_eq!(r.num_instructions(), r.program.instructions.len());
        assert_eq!(r.num_rrams(), r.program.num_cells);
        let stats = r.write_stats();
        assert_eq!(stats.cells, r.num_rrams());
        assert_eq!(stats.total as usize, r.num_instructions());
    }

    #[test]
    fn copy_reuse_never_grows_instructions_on_random_graphs() {
        // Copy discovery only replaces materialisation chains with reads
        // of existing holders, so `#I` can only shrink; `#R` may move in
        // either direction (spilling adds cold cells, chain elision and
        // PO reuse remove them).
        use rlim_mig::random::{generate, RandomMigConfig};
        let cfg = RandomMigConfig {
            inputs: 8,
            outputs: 6,
            gates: 250,
            ..Default::default()
        };
        for seed in 0..4 {
            let mig = generate(&cfg, seed);
            for base in [
                CompileOptions::naive(),
                CompileOptions::plim_compiler(),
                CompileOptions::endurance_aware(),
            ] {
                let off = compile(&mig, &base);
                let on = compile(&mig, &base.with_copy_reuse(true));
                assert!(
                    on.num_instructions() <= off.num_instructions(),
                    "copy reuse grew #I on seed {seed}"
                );
                // Wear-aware selection: the reuse schedule is only kept
                // when pointwise no worse, so these hold on every input.
                let (on_stats, off_stats) = (on.write_stats(), off.write_stats());
                assert!(
                    on_stats.max <= off_stats.max,
                    "copy reuse raised peak writes on seed {seed}"
                );
                assert!(
                    on_stats.stdev <= off_stats.stdev,
                    "copy reuse worsened balance on seed {seed}"
                );
            }
        }
    }

    #[test]
    fn esat_never_degrades_the_paper_metrics_on_random_graphs() {
        // The best-of guard in `compile` makes this hold on every input,
        // not just in expectation.
        use rlim_mig::random::{generate, RandomMigConfig};
        let cfg = RandomMigConfig {
            inputs: 8,
            outputs: 6,
            gates: 120,
            ..Default::default()
        };
        for seed in 0..3 {
            let mig = generate(&cfg, seed);
            for base in [CompileOptions::naive(), CompileOptions::endurance_aware()] {
                let off = compile(&mig, &base);
                let esat = base
                    .with_esat(true)
                    .with_esat_nodes(2_000)
                    .with_esat_iters(2);
                let on = compile(&mig, &esat);
                assert!(
                    on.num_instructions() <= off.num_instructions(),
                    "esat grew #I on seed {seed}"
                );
                let (on_stats, off_stats) = (on.write_stats(), off.write_stats());
                assert!(
                    on_stats.max <= off_stats.max,
                    "esat raised peak writes on seed {seed}"
                );
                assert!(
                    on_stats.stdev <= off_stats.stdev,
                    "esat worsened balance on seed {seed}"
                );
                assert_eq!(on.options, esat, "reported options keep the esat flag");
            }
        }
    }

    #[test]
    fn peephole_never_grows_programs_on_random_graphs() {
        use rlim_mig::random::{generate, RandomMigConfig};
        let cfg = RandomMigConfig {
            inputs: 8,
            outputs: 6,
            gates: 250,
            ..Default::default()
        };
        for seed in 0..4 {
            let mig = generate(&cfg, seed);
            for base in [
                CompileOptions::naive(),
                CompileOptions::plim_compiler(),
                CompileOptions::endurance_aware(),
            ] {
                let off = compile(&mig, &base);
                let on = compile(&mig, &base.with_peephole(true));
                assert!(on.num_instructions() <= off.num_instructions());
                assert!(on.write_stats().max <= off.write_stats().max);
                assert_eq!(on.num_rrams(), off.num_rrams(), "cells are not renumbered");
            }
        }
    }
}
