//! The MIG → PLiM compiler: node translation and the compile loop.
//!
//! ## Node translation
//!
//! A majority gate `n = ⟨s_a, s_b, s_c⟩` is computed by one main RM3
//! instruction whose three roles must be filled from the child signals:
//!
//! * `P` is read as stored — free for constants and uncomplemented children;
//!   a complemented child needs its inverse materialised (2 instructions,
//!   1 cell).
//! * `Q` is inverted by the operation — free for constants and *complemented*
//!   children (this is why a node with exactly one complemented edge is
//!   ideal); an uncomplemented child needs its inverse materialised.
//! * `Z` must be a cell currently holding the third operand's value, and is
//!   overwritten. An uncomplemented child at its **last pending use** (and,
//!   under the maximum write count strategy, with budget left) is consumed
//!   in place for free; otherwise the value is copied into an allocated cell
//!   (2 instructions, 1 cell).
//!
//! The translator tries all six role assignments and emits the cheapest.
//!
//! ## Micro-op recipes (cost in instructions)
//!
//! | recipe | sequence | writes on target |
//! |---|---|---|
//! | `set0(c)` | `RM3(0, 1, c)` | 1 |
//! | `set1(c)` | `RM3(1, 0, c)` | 1 |
//! | `copy(c ← s)` | `set0(c); RM3(s, 0, c)` | 2 |
//! | `copy_inv(c ← s)` | `set1(c); RM3(0, s, c)` | 2 |

use rlim_mig::rewrite::rewrite;
use rlim_mig::{Mig, NodeId, Signal};
use rlim_plim::{Instruction, Operand, Program};
use rlim_rram::{CellId, WriteStats};

use crate::cells::CellManager;
use crate::options::CompileOptions;
use crate::select::Scheduler;

/// Output of [`compile`]: the program plus the graph it was generated from.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The compiled PLiM program.
    pub program: Program,
    /// The (possibly rewritten) MIG the program computes.
    pub mig: Mig,
    /// The options used.
    pub options: CompileOptions,
}

impl CompileResult {
    /// Write-distribution statistics over **all** cells the program
    /// allocates — the paper's STDEV / min / max metrics.
    pub fn write_stats(&self) -> WriteStats {
        WriteStats::from_counts(self.program.write_counts())
    }

    /// The paper's `#I` metric.
    pub fn num_instructions(&self) -> usize {
        self.program.num_instructions()
    }

    /// The paper's `#R` metric.
    pub fn num_rrams(&self) -> usize {
        self.program.num_rrams()
    }

    /// Total writes one execution inflicts on its array (= `#I`; every
    /// RM3 instruction is one destination write). This is the unit a
    /// fleet's per-array write budget is expressed in.
    pub fn total_writes(&self) -> u64 {
        self.program.num_instructions() as u64
    }

    /// The hottest cell's per-execution write count — with a device
    /// endurance `E`, one array survives `⌊E / peak⌋` executions of this
    /// program (see `rlim_rram::lifetime`).
    pub fn peak_writes(&self) -> u64 {
        self.write_stats().max
    }
}

/// Compiles an MIG into a PLiM program under the given options.
///
/// # Examples
///
/// ```
/// use rlim_compiler::{compile, CompileOptions};
/// use rlim_mig::Mig;
///
/// let mut mig = Mig::new(3);
/// let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
/// let m = mig.add_maj(a, !b, c);
/// mig.add_output(m);
/// let result = compile(&mig, &CompileOptions::naive());
/// // One ideal node: a single RM3 instruction, no extra cells.
/// assert_eq!(result.num_instructions(), 1);
/// assert_eq!(result.num_rrams(), 3);
/// ```
pub fn compile(mig: &Mig, options: &CompileOptions) -> CompileResult {
    let graph = match options.rewriting {
        Some(alg) => rewrite(mig, alg, options.effort),
        None => mig.clone(),
    };
    let program = Compiler::new(&graph, options).run();
    debug_assert_eq!(program.validate(), Ok(()));
    CompileResult {
        program,
        mig: graph,
        options: options.clone(),
    }
}

/// Role-assignment cost: `(extra instructions, extra cells)`; the main RM3
/// itself is not included (it is always 1 instruction).
type Cost = (u32, u32);

/// How each role will be realised, decided before any emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadPlan {
    /// Pass a constant operand.
    Const(bool),
    /// Read the child's cell directly.
    Direct(NodeId),
    /// Materialise the complement of the child's value in a temp cell.
    MaterialiseInverse(NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DestPlan {
    /// Overwrite the cell of this child (its last pending use).
    InPlace(NodeId),
    /// Allocate a cell and set it to a constant.
    LoadConst(bool),
    /// Allocate a cell and copy the child's value into it.
    CopyValue(NodeId),
    /// Allocate a cell and copy the child's complement into it.
    CopyInverse(NodeId),
}

struct Compiler<'a> {
    mig: &'a Mig,
    cells: CellManager,
    instructions: Vec<Instruction>,
    /// Cell currently holding each node's (uncomplemented) value.
    node_cell: Vec<Option<CellId>>,
    /// Pending uses per node: live gate-children edges + PO references.
    /// PO references are never consumed, pinning PO cells forever.
    fanout_remaining: Vec<u32>,
    scheduler: Scheduler<'a>,
    input_cells: Vec<CellId>,
}

impl<'a> Compiler<'a> {
    fn new(mig: &'a Mig, options: &CompileOptions) -> Self {
        // One structural view serves both the pending-use counts here and
        // the scheduler's liveness/levels/parent queries.
        let view = rlim_mig::StructuralView::of(mig);
        let mut fanout_remaining = vec![0u32; mig.num_nodes()];
        for g in mig.gates() {
            if !view.is_live(g) {
                continue;
            }
            for s in mig.children(g) {
                if !s.is_constant() {
                    fanout_remaining[s.node().index()] += 1;
                }
            }
        }
        for s in mig.outputs() {
            if !s.is_constant() {
                fanout_remaining[s.node().index()] += 1;
            }
        }
        let scheduler = Scheduler::from_view(mig, options.selection, &fanout_remaining, view);
        Compiler {
            mig,
            cells: CellManager::new(options.allocation, options.max_writes),
            instructions: Vec::new(),
            node_cell: vec![None; mig.num_nodes()],
            fanout_remaining,
            scheduler,
            input_cells: Vec::new(),
        }
    }

    fn run(mut self) -> Program {
        // Primary inputs are preloaded into the first cells (wear-free).
        for i in 0..self.mig.num_inputs() {
            let cell = self.cells.alloc_fresh();
            let node = self.mig.input(i).node();
            self.node_cell[node.index()] = Some(cell);
            self.input_cells.push(cell);
            // Inputs nothing ever reads can be recycled immediately.
            if self.fanout_remaining[node.index()] == 0 {
                self.node_cell[node.index()] = None;
                self.cells.release(cell);
            }
        }

        // Main loop: translate nodes in scheduler order.
        let mut fr = std::mem::take(&mut self.fanout_remaining);
        while let Some(n) = self.scheduler.pop(&fr) {
            self.fanout_remaining = fr;
            self.translate(n);
            fr = std::mem::take(&mut self.fanout_remaining);
            self.scheduler.after_compute(n, &fr);
        }
        self.fanout_remaining = fr;

        // Resolve primary outputs; complemented or constant outputs need a
        // materialisation cell (shared per distinct signal).
        let mut po_cache: std::collections::HashMap<Signal, CellId> =
            std::collections::HashMap::new();
        let outputs: Vec<Signal> = self.mig.outputs().to_vec();
        let mut output_cells = Vec::with_capacity(outputs.len());
        for s in outputs {
            let cell = if let Some(&c) = po_cache.get(&s) {
                c
            } else {
                let c = match s.constant_value() {
                    Some(bit) => {
                        let c = self.cells.alloc(1);
                        self.set_const(c, bit);
                        c
                    }
                    None if !s.is_complement() => self.node_cell[s.node().index()]
                        .expect("primary output node must have been computed"),
                    None => {
                        let src = self.node_cell[s.node().index()]
                            .expect("primary output node must have been computed");
                        let c = self.cells.alloc(2);
                        self.copy_inv(c, src);
                        c
                    }
                };
                po_cache.insert(s, c);
                c
            };
            output_cells.push(cell);
        }

        Program {
            instructions: self.instructions,
            num_cells: self.cells.num_cells(),
            input_cells: self.input_cells,
            output_cells,
        }
    }

    // ---- Emission primitives ------------------------------------------

    fn emit(&mut self, p: Operand, q: Operand, z: CellId) {
        self.instructions.push(Instruction { p, q, z });
        self.cells.record_write(z);
    }

    /// `c ← bit` (1 instruction).
    fn set_const(&mut self, c: CellId, bit: bool) {
        if bit {
            // ⟨1, !0, z⟩ = 1
            self.emit(Operand::Const(true), Operand::Const(false), c);
        } else {
            // ⟨0, !1, z⟩ = 0
            self.emit(Operand::Const(false), Operand::Const(true), c);
        }
    }

    /// `c ← value(src)` (2 instructions).
    fn copy(&mut self, c: CellId, src: CellId) {
        self.set_const(c, false);
        // ⟨v, !0, 0⟩ = ⟨v, 1, 0⟩ = v
        self.emit(Operand::Cell(src), Operand::Const(false), c);
    }

    /// `c ← !value(src)` (2 instructions).
    fn copy_inv(&mut self, c: CellId, src: CellId) {
        self.set_const(c, true);
        // ⟨0, !v, 1⟩ = !v
        self.emit(Operand::Const(false), Operand::Cell(src), c);
    }

    // ---- Node translation ---------------------------------------------

    /// Cost and plan of using `s` as the P operand.
    fn plan_p(&self, s: Signal) -> (Cost, ReadPlan) {
        match s.constant_value() {
            Some(bit) => ((0, 0), ReadPlan::Const(bit)),
            None if !s.is_complement() => ((0, 0), ReadPlan::Direct(s.node())),
            None => ((2, 1), ReadPlan::MaterialiseInverse(s.node())),
        }
    }

    /// Cost and plan of using `s` as the Q operand (RM3 inverts Q, so the
    /// stored value must be the complement of the desired signal).
    fn plan_q(&self, s: Signal) -> (Cost, ReadPlan) {
        match s.constant_value() {
            // Need Q̄ = bit ⇒ Q = !bit.
            Some(bit) => ((0, 0), ReadPlan::Const(!bit)),
            // Complemented child: the stored value *is* the inverse. Free.
            None if s.is_complement() => ((0, 0), ReadPlan::Direct(s.node())),
            // Uncomplemented: materialise the inverse.
            None => ((2, 1), ReadPlan::MaterialiseInverse(s.node())),
        }
    }

    /// Cost and plan of using `s` as the destination Z.
    fn plan_z(&self, s: Signal) -> (Cost, DestPlan) {
        match s.constant_value() {
            Some(bit) => ((1, 1), DestPlan::LoadConst(bit)),
            None if s.is_complement() => ((2, 1), DestPlan::CopyInverse(s.node())),
            None => {
                let node = s.node();
                let consumable = self.fanout_remaining[node.index()] == 1
                    && self.node_cell[node.index()].is_some_and(|c| self.cells.fits_budget(c, 1));
                if consumable {
                    ((0, 0), DestPlan::InPlace(node))
                } else {
                    ((2, 1), DestPlan::CopyValue(node))
                }
            }
        }
    }

    /// Translates one majority gate into RM3 instructions.
    fn translate(&mut self, n: NodeId) {
        let ch = self.mig.children(n);

        // Enumerate all six role assignments; keep the cheapest.
        const PERMS: [(usize, usize, usize); 6] = [
            (0, 1, 2),
            (0, 2, 1),
            (1, 0, 2),
            (1, 2, 0),
            (2, 0, 1),
            (2, 1, 0),
        ];
        let mut best: Option<(Cost, ReadPlan, ReadPlan, DestPlan)> = None;
        for (pi, qi, zi) in PERMS {
            let ((ip, cp), p_plan) = self.plan_p(ch[pi]);
            let ((iq, cq), q_plan) = self.plan_q(ch[qi]);
            let ((iz, cz), z_plan) = self.plan_z(ch[zi]);
            let cost = (ip + iq + iz, cp + cq + cz);
            if best.is_none_or(|(c, _, _, _)| cost < c) {
                best = Some((cost, p_plan, q_plan, z_plan));
            }
        }
        let (_, p_plan, q_plan, z_plan) = best.expect("six permutations evaluated");

        // Materialise read operands first (their recipes must not disturb
        // the destination).
        let mut temps: Vec<CellId> = Vec::new();
        let p_op = self.realise_read(p_plan, &mut temps);
        let q_op = self.realise_read(q_plan, &mut temps);

        // Prepare the destination.
        let (dest, in_place_child) = match z_plan {
            DestPlan::InPlace(child) => {
                let cell = self.node_cell[child.index()].expect("in-place child has a cell");
                (cell, Some(child))
            }
            DestPlan::LoadConst(bit) => {
                let cell = self.cells.alloc(2); // set + main write
                self.set_const(cell, bit);
                (cell, None)
            }
            DestPlan::CopyValue(child) => {
                let src = self.node_cell[child.index()].expect("computed child has a cell");
                let cell = self.cells.alloc(3); // set + load + main write
                self.copy(cell, src);
                (cell, None)
            }
            DestPlan::CopyInverse(child) => {
                let src = self.node_cell[child.index()].expect("computed child has a cell");
                let cell = self.cells.alloc(3);
                self.copy_inv(cell, src);
                (cell, None)
            }
        };

        // The main RM3 operation.
        self.emit(p_op, q_op, dest);
        self.node_cell[n.index()] = Some(dest);

        // Temps die immediately after the main op.
        for t in temps {
            self.cells.release(t);
        }

        // Consume one pending use per child; release cells that reached
        // their last use (the in-place child's cell now belongs to `n`).
        for s in ch {
            if s.is_constant() {
                continue;
            }
            let child = s.node();
            self.fanout_remaining[child.index()] -= 1;
            match self.fanout_remaining[child.index()] {
                0 => {
                    if in_place_child == Some(child) {
                        self.node_cell[child.index()] = None;
                    } else if let Some(cell) = self.node_cell[child.index()].take() {
                        self.cells.release(cell);
                    }
                }
                1 => self
                    .scheduler
                    .child_now_single(child, &self.fanout_remaining),
                _ => {}
            }
        }
    }

    fn realise_read(&mut self, plan: ReadPlan, temps: &mut Vec<CellId>) -> Operand {
        match plan {
            ReadPlan::Const(bit) => Operand::Const(bit),
            ReadPlan::Direct(node) => {
                Operand::Cell(self.node_cell[node.index()].expect("computed child has a cell"))
            }
            ReadPlan::MaterialiseInverse(node) => {
                let src = self.node_cell[node.index()].expect("computed child has a cell");
                let temp = self.cells.alloc(2);
                self.copy_inv(temp, src);
                temps.push(temp);
                Operand::Cell(temp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlim_plim::Machine;

    /// Compile + execute on the machine must match MIG evaluation.
    fn assert_functional(mig: &Mig, options: &CompileOptions, seed: u64) {
        use rand::{Rng, SeedableRng};
        let result = compile(mig, options);
        result.program.validate().expect("program is well-formed");
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..16 {
            let inputs: Vec<bool> = (0..mig.num_inputs()).map(|_| rng.gen()).collect();
            let expect = mig.evaluate(&inputs);
            let mut machine = Machine::for_program(&result.program);
            let got = machine
                .run(&result.program, &inputs)
                .expect("no endurance limit");
            assert_eq!(got, expect, "inputs {inputs:?} options {options:?}");
        }
    }

    fn all_option_sets() -> Vec<CompileOptions> {
        vec![
            CompileOptions::naive(),
            CompileOptions::plim_compiler(),
            CompileOptions::min_write(),
            CompileOptions::endurance_rewriting(),
            CompileOptions::endurance_aware(),
            CompileOptions::endurance_aware().with_max_writes(10),
            CompileOptions::endurance_aware().with_max_writes(3),
        ]
    }

    #[test]
    fn ideal_node_is_one_instruction() {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let m = mig.add_maj(a, !b, c);
        mig.add_output(m);
        let r = compile(&mig, &CompileOptions::naive());
        assert_eq!(r.num_instructions(), 1);
        assert_eq!(r.num_rrams(), 3, "three input cells, no extras");
        assert_functional(&mig, &CompileOptions::naive(), 1);
    }

    #[test]
    fn zero_complement_node_needs_materialisation() {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let m = mig.add_maj(a, b, c);
        mig.add_output(m);
        let r = compile(&mig, &CompileOptions::naive());
        // Q must be an inverse: set + load + main = 3 instructions, 1 temp.
        assert_eq!(r.num_instructions(), 3);
        assert_eq!(r.num_rrams(), 4);
        assert_functional(&mig, &CompileOptions::naive(), 2);
    }

    #[test]
    fn and_gate_uses_constant_operands() {
        // ⟨a b 0⟩: Q can be the constant (free), Z consumes a or b in place.
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        let g = mig.and(a, b);
        mig.add_output(g);
        let r = compile(&mig, &CompileOptions::naive());
        assert_eq!(r.num_instructions(), 1);
        assert_eq!(r.num_rrams(), 2);
        assert_functional(&mig, &CompileOptions::naive(), 3);
    }

    #[test]
    fn multi_fanout_child_forces_copy() {
        // g1 = a∧b feeds two parents: the first parent cannot consume it.
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let g1 = mig.and(a, b);
        let g2 = mig.and(g1, c);
        let g3 = mig.or(g1, c);
        mig.add_output(g2);
        mig.add_output(g3);
        assert_functional(&mig, &CompileOptions::naive(), 4);
    }

    #[test]
    fn complemented_output_materialised() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        let g = mig.and(a, b);
        mig.add_output(!g);
        mig.add_output(!g); // shared: one materialisation
        let r = compile(&mig, &CompileOptions::naive());
        assert_eq!(r.program.output_cells[0], r.program.output_cells[1]);
        assert_functional(&mig, &CompileOptions::naive(), 5);
    }

    #[test]
    fn constant_output_supported() {
        let mut mig = Mig::new(1);
        mig.add_output(Signal::TRUE);
        mig.add_output(Signal::FALSE);
        let r = compile(&mig, &CompileOptions::naive());
        let mut machine = Machine::for_program(&r.program);
        let out = machine.run(&r.program, &[false]).unwrap();
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn input_passthrough_output() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        mig.add_output(a);
        mig.add_output(!a);
        for opts in all_option_sets() {
            assert_functional(&mig, &opts, 6);
        }
    }

    #[test]
    fn all_policies_functionally_correct_on_random_graphs() {
        use rlim_mig::random::{generate, RandomMigConfig};
        let cfg = RandomMigConfig {
            inputs: 8,
            outputs: 6,
            gates: 120,
            ..Default::default()
        };
        for seed in 0..3 {
            let mig = generate(&cfg, seed);
            for opts in all_option_sets() {
                assert_functional(&mig, &opts, seed ^ 77);
            }
        }
    }

    #[test]
    fn max_write_strategy_bounds_every_cell() {
        use rlim_mig::random::{generate, RandomMigConfig};
        let cfg = RandomMigConfig {
            inputs: 8,
            outputs: 6,
            gates: 200,
            ..Default::default()
        };
        let mig = generate(&cfg, 11);
        for limit in [3, 10, 20] {
            let opts = CompileOptions::endurance_aware().with_max_writes(limit);
            let r = compile(&mig, &opts);
            let counts = r.program.write_counts();
            assert!(
                counts.iter().all(|&c| c <= limit),
                "limit {limit} violated: max {}",
                counts.iter().max().unwrap()
            );
        }
    }

    #[test]
    fn min_write_strategy_does_not_change_instruction_or_cell_counts() {
        // Paper: "the minimum write count strategy does not influence the
        // number of required instructions and RRAMs."
        use rlim_mig::random::{generate, RandomMigConfig};
        let cfg = RandomMigConfig {
            inputs: 10,
            outputs: 8,
            gates: 300,
            ..Default::default()
        };
        for seed in 0..3 {
            let mig = generate(&cfg, seed);
            let lifo = compile(&mig, &CompileOptions::plim_compiler());
            let minw = compile(&mig, &CompileOptions::min_write());
            assert_eq!(lifo.num_instructions(), minw.num_instructions());
            assert_eq!(lifo.num_rrams(), minw.num_rrams());
        }
    }

    #[test]
    fn min_write_improves_balance_on_hot_cell_pattern() {
        use rlim_mig::random::{generate, RandomMigConfig};
        let cfg = RandomMigConfig {
            inputs: 10,
            outputs: 8,
            gates: 400,
            ..Default::default()
        };
        let mut improved = 0;
        for seed in 0..5 {
            let mig = generate(&cfg, seed);
            let lifo = compile(&mig, &CompileOptions::plim_compiler()).write_stats();
            let minw = compile(&mig, &CompileOptions::min_write()).write_stats();
            if minw.stdev <= lifo.stdev {
                improved += 1;
            }
        }
        assert!(improved >= 4, "min-write should usually balance better");
    }

    #[test]
    fn compile_result_metrics_consistent() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        let g = mig.xor(a, b);
        mig.add_output(g);
        let r = compile(&mig, &CompileOptions::endurance_aware());
        assert_eq!(r.num_instructions(), r.program.instructions.len());
        assert_eq!(r.num_rrams(), r.program.num_cells);
        let stats = r.write_stats();
        assert_eq!(stats.cells, r.num_rrams());
        assert_eq!(stats.total as usize, r.num_instructions());
    }
}
