//! NAND-based IMPLY synthesis from a Majority-Inverter Graph.
//!
//! This is the baseline in-memory computing style the paper's §II surveys:
//! every logic gate becomes a short IMPLY sequence whose writes all land on
//! the gate's *work cell* (the IMP operation is not commutative — `p IMP q`
//! can only rewrite `q`). A `k`-input NAND is
//!
//! ```text
//! FALSE s;  x₁ IMP s;  …;  x_k IMP s        (s = x̄₁ ∨ … ∨ x̄_k)
//! ```
//!
//! and a majority gate ⟨a b c⟩ maps to three pairwise NANDs plus a 3-input
//! NAND (`ab ∨ ac ∨ bc = NAND(NAND(a,b), NAND(a,c), NAND(b,c))`), with
//! complemented edges materialised through memoised `NOT`s (a 1-input
//! NAND).
//!
//! The synthesiser supports the same two allocation policies as the PLiM
//! compiler — LIFO (baseline) and minimum-write (the paper's technique 1)
//! — so IMP and RM3 write traffic can be compared like for like.

use rlim_mig::{Mig, NodeId, Signal};
use rlim_rram::CellId;

use crate::isa::{ImpOp, ImpProgram};

/// How freed cells are handed back out during IMP synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ImpAllocation {
    /// Most-recently-freed first (the unbalanced baseline).
    #[default]
    Lifo,
    /// Freed cell with the smallest write count first (the paper's
    /// minimum write count strategy, applied to IMP).
    MinWrite,
}

/// Configuration for [`synthesize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImpSynthOptions {
    /// Cell allocation policy.
    pub allocation: ImpAllocation,
}

impl ImpSynthOptions {
    /// LIFO baseline.
    pub fn lifo() -> Self {
        ImpSynthOptions {
            allocation: ImpAllocation::Lifo,
        }
    }

    /// Minimum-write allocation.
    pub fn min_write() -> Self {
        ImpSynthOptions {
            allocation: ImpAllocation::MinWrite,
        }
    }
}

/// Compiles `mig` into an IMPLY program.
///
/// # Examples
///
/// ```
/// use rlim_imp::{synthesize, ImpMachine, ImpSynthOptions};
/// use rlim_mig::Mig;
///
/// let mut mig = Mig::new(2);
/// let (a, b) = (mig.input(0), mig.input(1));
/// let g = mig.and(a, b);
/// mig.add_output(g);
///
/// let program = synthesize(&mig, &ImpSynthOptions::lifo());
/// let mut machine = ImpMachine::for_program(&program);
/// assert_eq!(machine.run(&program, &[true, true]).unwrap(), vec![true]);
/// ```
pub fn synthesize(mig: &Mig, options: &ImpSynthOptions) -> ImpProgram {
    Synthesiser::new(mig, *options).run()
}

struct Synthesiser<'a> {
    mig: &'a Mig,
    options: ImpSynthOptions,
    ops: Vec<ImpOp>,
    write_counts: Vec<u64>,
    free: Vec<CellId>,
    node_cell: Vec<Option<CellId>>,
    inv_cell: Vec<Option<CellId>>,
    fanout_remaining: Vec<u32>,
    live: Vec<bool>,
    const_cell: [Option<CellId>; 2],
    input_cells: Vec<CellId>,
}

impl<'a> Synthesiser<'a> {
    fn new(mig: &'a Mig, options: ImpSynthOptions) -> Self {
        let live = mig.live_mask();
        let mut fanout_remaining = vec![0u32; mig.num_nodes()];
        for g in mig.gates() {
            if !live[g.index()] {
                continue;
            }
            for s in mig.children(g) {
                if !s.is_constant() {
                    fanout_remaining[s.node().index()] += 1;
                }
            }
        }
        for s in mig.outputs() {
            if !s.is_constant() {
                fanout_remaining[s.node().index()] += 1;
            }
        }
        Synthesiser {
            mig,
            options,
            ops: Vec::new(),
            write_counts: Vec::new(),
            free: Vec::new(),
            node_cell: vec![None; mig.num_nodes()],
            inv_cell: vec![None; mig.num_nodes()],
            fanout_remaining,
            live,
            const_cell: [None, None],
            input_cells: Vec::new(),
        }
    }

    fn run(mut self) -> ImpProgram {
        // Preload inputs (wear-free), recycling unused ones immediately.
        for i in 0..self.mig.num_inputs() {
            let cell = self.alloc_fresh();
            let node = self.mig.input(i).node();
            self.node_cell[node.index()] = Some(cell);
            self.input_cells.push(cell);
            if self.fanout_remaining[node.index()] == 0 {
                self.node_cell[node.index()] = None;
                self.release(cell);
            }
        }

        // Gates are stored children-before-parents, so index order is a
        // valid topological schedule.
        let gates: Vec<NodeId> = self.mig.gates().collect();
        for n in gates {
            if !self.live[n.index()] {
                continue;
            }
            self.translate(n);
        }

        // Resolve primary outputs (resolution memoises, so shared or
        // complemented outputs reuse one cell).
        let outputs: Vec<Signal> = self.mig.outputs().to_vec();
        let output_cells = outputs.iter().map(|&s| self.resolve(s)).collect();

        ImpProgram {
            instructions: self.ops,
            num_cells: self.write_counts.len(),
            input_cells: self.input_cells,
            output_cells,
        }
    }

    // ---- Cell management ------------------------------------------------

    fn alloc_fresh(&mut self) -> CellId {
        let cell = CellId::new(self.write_counts.len() as u32);
        self.write_counts.push(0);
        cell
    }

    fn alloc(&mut self) -> CellId {
        match self.options.allocation {
            ImpAllocation::Lifo => self.free.pop().unwrap_or_else(|| self.alloc_fresh()),
            ImpAllocation::MinWrite => {
                if self.free.is_empty() {
                    self.alloc_fresh()
                } else {
                    let best = self
                        .free
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &c)| self.write_counts[c.index()])
                        .map(|(i, _)| i)
                        .expect("non-empty free list");
                    self.free.swap_remove(best)
                }
            }
        }
    }

    fn release(&mut self, cell: CellId) {
        self.free.push(cell);
    }

    // ---- Emission ---------------------------------------------------------

    fn emit(&mut self, op: ImpOp) {
        self.write_counts[op.destination().index()] += 1;
        self.ops.push(op);
    }

    /// `k`-input NAND into a freshly allocated cell.
    fn nand_into(&mut self, operands: &[CellId]) -> CellId {
        let s = self.alloc();
        self.emit(ImpOp::False(s));
        for &p in operands {
            self.emit(ImpOp::Imply { p, q: s });
        }
        s
    }

    /// Cell holding the given constant, materialised on first use.
    fn constant(&mut self, value: bool) -> CellId {
        if let Some(cell) = self.const_cell[value as usize] {
            return cell;
        }
        let cell = self.alloc_fresh(); // pinned forever: never released
        self.emit(ImpOp::False(cell));
        if value {
            // 0 IMP 0 = 1: imply the cell into itself.
            self.emit(ImpOp::Imply { p: cell, q: cell });
        }
        self.const_cell[value as usize] = Some(cell);
        cell
    }

    /// Cell holding the value of `s` (materialising a memoised `NOT` for
    /// complemented signals).
    fn resolve(&mut self, s: Signal) -> CellId {
        if let Some(bit) = s.constant_value() {
            return self.constant(bit);
        }
        let node = s.node();
        if !s.is_complement() {
            return self.node_cell[node.index()].expect("node computed before use");
        }
        if let Some(cell) = self.inv_cell[node.index()] {
            return cell;
        }
        let source = self.node_cell[node.index()].expect("node computed before use");
        let cell = self.nand_into(&[source]);
        self.inv_cell[node.index()] = Some(cell);
        cell
    }

    // ---- Gate translation -------------------------------------------------

    fn translate(&mut self, n: NodeId) {
        let ch = self.mig.children(n);
        let constant_child = ch.iter().find_map(|s| s.constant_value());

        let result = match constant_child {
            // ⟨a b 1⟩ = a ∨ b = NAND(ā, b̄)
            Some(true) => {
                let non_const: Vec<Signal> =
                    ch.iter().copied().filter(|s| !s.is_constant()).collect();
                let inv: Vec<CellId> = non_const.iter().map(|&s| self.resolve(!s)).collect();
                self.nand_into(&inv)
            }
            // ⟨a b 0⟩ = a ∧ b = NOT(NAND(a, b))
            Some(false) => {
                let non_const: Vec<Signal> =
                    ch.iter().copied().filter(|s| !s.is_constant()).collect();
                let direct: Vec<CellId> = non_const.iter().map(|&s| self.resolve(s)).collect();
                let t = self.nand_into(&direct);
                let result = self.nand_into(&[t]);
                self.release(t);
                result
            }
            // Full majority: NAND of the three pairwise NANDs.
            None => {
                let cells: Vec<CellId> = ch.iter().map(|&s| self.resolve(s)).collect();
                let n1 = self.nand_into(&[cells[0], cells[1]]);
                let n2 = self.nand_into(&[cells[0], cells[2]]);
                let n3 = self.nand_into(&[cells[1], cells[2]]);
                let result = self.nand_into(&[n1, n2, n3]);
                self.release(n1);
                self.release(n2);
                self.release(n3);
                result
            }
        };
        self.node_cell[n.index()] = Some(result);

        // Consume one pending use per child edge; free dead children.
        for s in ch {
            if s.is_constant() {
                continue;
            }
            let child = s.node();
            self.fanout_remaining[child.index()] -= 1;
            if self.fanout_remaining[child.index()] == 0 {
                if let Some(cell) = self.node_cell[child.index()].take() {
                    self.release(cell);
                }
                if let Some(cell) = self.inv_cell[child.index()].take() {
                    self.release(cell);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ImpMachine;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use rlim_mig::random::{generate, RandomMigConfig};

    fn assert_functional(mig: &Mig, options: &ImpSynthOptions, seed: u64) {
        let program = synthesize(mig, options);
        program.validate().expect("well-formed program");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..12 {
            let inputs: Vec<bool> = (0..mig.num_inputs()).map(|_| rng.gen()).collect();
            let mut machine = ImpMachine::for_program(&program);
            let got = machine.run(&program, &inputs).expect("no endurance limit");
            assert_eq!(got, mig.evaluate(&inputs), "inputs {inputs:?}");
        }
    }

    #[test]
    fn and_or_not_gates() {
        let mut mig = Mig::new(2);
        let (a, b) = (mig.input(0), mig.input(1));
        let and = mig.and(a, b);
        let or = mig.or(a, b);
        mig.add_output(and);
        mig.add_output(or);
        mig.add_output(!and);
        assert_functional(&mig, &ImpSynthOptions::lifo(), 1);
        assert_functional(&mig, &ImpSynthOptions::min_write(), 1);
    }

    #[test]
    fn full_majority_gate() {
        let mut mig = Mig::new(3);
        let (a, b, c) = (mig.input(0), mig.input(1), mig.input(2));
        let m = mig.add_maj(a, b, c);
        mig.add_output(m);
        let program = synthesize(&mig, &ImpSynthOptions::lifo());
        // 3 pairwise NANDs (3 ops each) + final 3-input NAND (4 ops).
        assert_eq!(program.num_instructions(), 13);
        assert_functional(&mig, &ImpSynthOptions::lifo(), 2);
    }

    #[test]
    fn complemented_edges_and_outputs() {
        let mut mig = Mig::new(3);
        let (a, b, c) = (mig.input(0), mig.input(1), mig.input(2));
        let m = mig.add_maj(!a, b, !c);
        mig.add_output(!m);
        mig.add_output(m);
        assert_functional(&mig, &ImpSynthOptions::lifo(), 3);
    }

    #[test]
    fn constant_outputs() {
        let mut mig = Mig::new(1);
        mig.add_output(Signal::TRUE);
        mig.add_output(Signal::FALSE);
        mig.add_output(mig.input(0));
        let program = synthesize(&mig, &ImpSynthOptions::lifo());
        let mut machine = ImpMachine::for_program(&program);
        assert_eq!(
            machine.run(&program, &[true]).unwrap(),
            vec![true, false, true]
        );
    }

    #[test]
    fn shared_inverse_is_memoised() {
        let mut mig = Mig::new(3);
        let (a, b, c) = (mig.input(0), mig.input(1), mig.input(2));
        // !a used by two gates: one NOT cell, not two.
        let g1 = mig.and(!a, b);
        let g2 = mig.and(!a, c);
        mig.add_output(g1);
        mig.add_output(g2);
        let program = synthesize(&mig, &ImpSynthOptions::lifo());
        // NOT a (2 ops) + 2 × AND (5 ops each) = 12; a second NOT would
        // make it 14.
        assert_eq!(program.num_instructions(), 12);
        assert_functional(&mig, &ImpSynthOptions::lifo(), 4);
    }

    #[test]
    fn random_graphs_functional_under_both_policies() {
        let cfg = RandomMigConfig {
            inputs: 7,
            outputs: 5,
            gates: 80,
            ..Default::default()
        };
        for seed in 0..4 {
            let mig = generate(&cfg, seed);
            assert_functional(&mig, &ImpSynthOptions::lifo(), seed);
            assert_functional(&mig, &ImpSynthOptions::min_write(), seed);
        }
    }

    #[test]
    fn min_write_balances_better_than_lifo() {
        use rlim_rram::WriteStats;
        let cfg = RandomMigConfig {
            inputs: 8,
            outputs: 6,
            gates: 300,
            ..Default::default()
        };
        let mut improved = 0;
        for seed in 0..5 {
            let mig = generate(&cfg, seed);
            let lifo = synthesize(&mig, &ImpSynthOptions::lifo());
            let minw = synthesize(&mig, &ImpSynthOptions::min_write());
            let sl = WriteStats::from_counts(lifo.write_counts());
            let sm = WriteStats::from_counts(minw.write_counts());
            assert_eq!(
                lifo.num_instructions(),
                minw.num_instructions(),
                "allocation is cost-neutral"
            );
            if sm.stdev <= sl.stdev {
                improved += 1;
            }
        }
        assert!(improved >= 4, "min-write should usually balance better");
    }

    #[test]
    fn input_cells_are_never_written() {
        let cfg = RandomMigConfig {
            inputs: 6,
            outputs: 4,
            gates: 60,
            ..Default::default()
        };
        let mig = generate(&cfg, 9);
        let program = synthesize(&mig, &ImpSynthOptions::lifo());
        let counts = program.write_counts();
        // Inputs still holding their value at program end were never
        // recycled; such cells must show zero writes unless reused.
        let total: u64 = counts.iter().sum();
        assert_eq!(
            total as usize,
            program.num_instructions(),
            "one write per op"
        );
    }
}
