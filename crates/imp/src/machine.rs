//! Executor for IMPLY programs over the simulated RRAM crossbar.

use rlim_rram::{Crossbar, EnduranceError};

use crate::isa::{ImpOp, ImpProgram};

/// An IMPLY logic-in-memory machine: a crossbar plus a program counter.
///
/// # Examples
///
/// ```
/// use rlim_imp::{ImpMachine, ImpOp, ImpProgram};
/// use rlim_rram::CellId;
///
/// // q ← NOT a   (FALSE q; a IMP q)
/// let program = ImpProgram {
///     instructions: vec![
///         ImpOp::False(CellId::new(1)),
///         ImpOp::Imply { p: CellId::new(0), q: CellId::new(1) },
///     ],
///     num_cells: 2,
///     input_cells: vec![CellId::new(0)],
///     output_cells: vec![CellId::new(1)],
/// };
/// let mut machine = ImpMachine::for_program(&program);
/// let out = machine.run(&program, &[true]).unwrap();
/// assert_eq!(out, vec![false]);
/// ```
#[derive(Debug, Clone)]
pub struct ImpMachine {
    array: Crossbar,
    cycles: u64,
}

impl ImpMachine {
    /// A machine sized for `program`, without a physical endurance limit.
    pub fn for_program(program: &ImpProgram) -> Self {
        let mut array = Crossbar::new();
        array.grow_to(program.num_cells);
        ImpMachine { array, cycles: 0 }
    }

    /// A machine whose cells fail after `limit` writes.
    pub fn with_endurance(program: &ImpProgram, limit: u64) -> Self {
        let mut array = Crossbar::with_endurance(limit);
        array.grow_to(program.num_cells);
        ImpMachine { array, cycles: 0 }
    }

    /// The underlying crossbar (for wear inspection).
    pub fn array(&self) -> &Crossbar {
        &self.array
    }

    /// Instructions executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Preloads the primary inputs (wear-free, like PLiM input loading).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and the program's input cells differ in length.
    pub fn load_inputs(&mut self, program: &ImpProgram, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            program.input_cells.len(),
            "input vector length must match the program interface"
        );
        for (&cell, &value) in program.input_cells.iter().zip(inputs) {
            self.array.preload(cell, value);
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`EnduranceError`] when the destination cell is worn out.
    pub fn step(&mut self, op: &ImpOp) -> Result<(), EnduranceError> {
        match *op {
            ImpOp::False(q) => self.array.write(q, false)?,
            ImpOp::Imply { p, q } => {
                let value = !self.array.read(p) || self.array.read(q);
                self.array.write(q, value)?;
            }
        }
        self.cycles += 1;
        Ok(())
    }

    /// Executes the whole program (inputs must already be loaded).
    ///
    /// # Errors
    ///
    /// Returns the first [`EnduranceError`] hit.
    pub fn execute(&mut self, program: &ImpProgram) -> Result<(), EnduranceError> {
        for op in &program.instructions {
            self.step(op)?;
        }
        Ok(())
    }

    /// Reads the primary outputs.
    pub fn outputs(&self, program: &ImpProgram) -> Vec<bool> {
        program
            .output_cells
            .iter()
            .map(|&c| self.array.read(c))
            .collect()
    }

    /// Convenience: load, execute, read.
    ///
    /// # Errors
    ///
    /// Returns the first [`EnduranceError`] hit during execution.
    pub fn run(
        &mut self,
        program: &ImpProgram,
        inputs: &[bool],
    ) -> Result<Vec<bool>, EnduranceError> {
        self.load_inputs(program, inputs);
        self.execute(program)?;
        Ok(self.outputs(program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlim_rram::CellId;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    /// NAND into a fresh cell: FALSE s; a IMP s; b IMP s.
    fn nand_program() -> ImpProgram {
        ImpProgram {
            instructions: vec![
                ImpOp::False(c(2)),
                ImpOp::Imply { p: c(0), q: c(2) },
                ImpOp::Imply { p: c(1), q: c(2) },
            ],
            num_cells: 3,
            input_cells: vec![c(0), c(1)],
            output_cells: vec![c(2)],
        }
    }

    #[test]
    fn nand_truth_table() {
        let program = nand_program();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut m = ImpMachine::for_program(&program);
            let out = m.run(&program, &[a, b]).unwrap();
            assert_eq!(out, vec![!(a && b)], "a={a} b={b}");
            assert_eq!(m.cycles(), 3);
        }
    }

    #[test]
    fn imply_truth_table() {
        // Direct check of the IMP step semantics.
        for (p, q) in [(false, false), (false, true), (true, false), (true, true)] {
            let program = ImpProgram {
                instructions: vec![ImpOp::Imply { p: c(0), q: c(1) }],
                num_cells: 2,
                input_cells: vec![c(0), c(1)],
                output_cells: vec![c(1)],
            };
            let mut m = ImpMachine::for_program(&program);
            let out = m.run(&program, &[p, q]).unwrap();
            assert_eq!(out, vec![!p || q], "p={p} q={q}");
        }
    }

    #[test]
    fn wear_is_recorded_on_work_cell_only() {
        let program = nand_program();
        let mut m = ImpMachine::for_program(&program);
        m.run(&program, &[true, true]).unwrap();
        assert_eq!(m.array().writes(c(0)), 0);
        assert_eq!(m.array().writes(c(1)), 0);
        assert_eq!(m.array().writes(c(2)), 3);
    }

    #[test]
    fn endurance_limit_trips() {
        let program = nand_program();
        let mut m = ImpMachine::with_endurance(&program, 2);
        let err = m.run(&program, &[false, false]);
        assert!(err.is_err(), "third write to the work cell must fail");
    }
}
