//! Material-implication (IMPLY) logic-in-memory baseline.
//!
//! The paper's §II surveys why in-memory computing styles based on
//! material implication (`p IMP q = p̄ ∨ q`) concentrate writes on work
//! devices: IMP is not commutative, so every operation rewrites its second
//! operand, and NAND-based synthesis funnels each gate's writes into one
//! cell. This crate implements that baseline end to end — instruction set
//! ([`ImpOp`] / [`ImpProgram`]), executor ([`ImpMachine`]) and NAND-based
//! synthesis from an MIG ([`synthesize`]) — so its write traffic can be
//! measured with the same statistics as the PLiM/RM3 flow and compared
//! like for like (see the `imp_vs_rm3` eval binary and example).
//!
//! # Examples
//!
//! ```
//! use rlim_imp::{synthesize, ImpMachine, ImpSynthOptions};
//! use rlim_mig::Mig;
//! use rlim_rram::WriteStats;
//!
//! let mut mig = Mig::new(3);
//! let (a, b, c) = (mig.input(0), mig.input(1), mig.input(2));
//! let m = mig.add_maj(a, b, c);
//! mig.add_output(m);
//!
//! let program = synthesize(&mig, &ImpSynthOptions::min_write());
//! let mut machine = ImpMachine::for_program(&program);
//! let out = machine.run(&program, &[true, false, true]).unwrap();
//! assert_eq!(out, vec![true]);
//!
//! let stats = WriteStats::from_counts(program.write_counts());
//! assert!(stats.max >= 3, "each NAND writes its work cell 3+ times");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod isa;
mod machine;
mod synth;

pub use isa::{ImpOp, ImpProgram, ImpProgramError};
pub use machine::ImpMachine;
pub use synth::{synthesize, ImpAllocation, ImpSynthOptions};
