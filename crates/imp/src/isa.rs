//! The stateful material-implication instruction set.
//!
//! IMPLY logic [Borghetti et al., Nature 2010] computes with two
//! operations on resistive cells:
//!
//! * `FALSE q` — unconditionally reset cell `q` to 0;
//! * `p IMP q` — conditionally set: `q ← p̄ ∨ q` (material implication of
//!   the value stored in `p` into the value stored in `q`).
//!
//! Both operations pulse the destination cell, so — exactly as for RM3 —
//! every instruction is one write on its destination. Unlike RM3, *only*
//! the work cell `q` is ever written: the paper's §II observes that this
//! lack of commutativity concentrates the write traffic on work devices.

use std::fmt;

use rlim_rram::CellId;

/// One IMPLY-logic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImpOp {
    /// `FALSE q`: reset the cell to 0.
    False(CellId),
    /// `p IMP q`: `q ← p̄ ∨ q`.
    Imply {
        /// Condition cell (read only).
        p: CellId,
        /// Work cell (read and rewritten).
        q: CellId,
    },
}

impl ImpOp {
    /// The cell this operation writes.
    pub fn destination(self) -> CellId {
        match self {
            ImpOp::False(q) | ImpOp::Imply { q, .. } => q,
        }
    }
}

impl fmt::Display for ImpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImpOp::False(q) => write!(f, "FALSE r{}", q.index()),
            ImpOp::Imply { p, q } => write!(f, "r{} IMP r{}", p.index(), q.index()),
        }
    }
}

/// A compiled IMPLY program with its memory map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImpProgram {
    /// Instructions in execution order.
    pub ops: Vec<ImpOp>,
    /// Total number of cells the program touches.
    pub num_cells: usize,
    /// Cells holding the primary inputs (preloaded before execution).
    pub input_cells: Vec<CellId>,
    /// Cells holding the primary outputs after execution.
    pub output_cells: Vec<CellId>,
}

/// Validation failure for [`ImpProgram::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImpProgramError {
    /// An instruction references a cell past `num_cells`.
    CellOutOfRange {
        /// Index of the offending instruction.
        op: usize,
        /// The out-of-range cell.
        cell: CellId,
    },
    /// An input or output cell is past `num_cells`.
    InterfaceCellOutOfRange {
        /// The out-of-range cell.
        cell: CellId,
    },
    /// An instruction reads a cell that is neither a primary input nor the
    /// destination of any earlier instruction — its value would be
    /// whatever the array happened to hold.
    UndefinedRead {
        /// Index of the reading instruction.
        op: usize,
        /// The undefined cell.
        cell: CellId,
    },
}

impl fmt::Display for ImpProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImpProgramError::CellOutOfRange { op, cell } => {
                write!(
                    f,
                    "instruction {op} references cell r{} out of range",
                    cell.index()
                )
            }
            ImpProgramError::InterfaceCellOutOfRange { cell } => {
                write!(f, "interface cell r{} out of range", cell.index())
            }
            ImpProgramError::UndefinedRead { op, cell } => write!(
                f,
                "instruction {op} reads cell r{} before it is defined",
                cell.index()
            ),
        }
    }
}

impl std::error::Error for ImpProgramError {}

impl ImpProgram {
    /// Number of instructions (`#ops`, the IMP analogue of the paper's #I).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of cells (the IMP analogue of the paper's #R).
    pub fn num_rrams(&self) -> usize {
        self.num_cells
    }

    /// Per-cell write counts implied by the instruction stream: one write
    /// per instruction, on its destination.
    pub fn write_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_cells];
        for op in &self.ops {
            counts[op.destination().index()] += 1;
        }
        counts
    }

    /// Structural well-formedness check.
    ///
    /// # Errors
    ///
    /// Returns the first [`ImpProgramError`] found.
    pub fn validate(&self) -> Result<(), ImpProgramError> {
        let in_range = |c: CellId| c.index() < self.num_cells;
        for (i, op) in self.ops.iter().enumerate() {
            let cells: [CellId; 2] = match *op {
                ImpOp::False(q) => [q, q],
                ImpOp::Imply { p, q } => [p, q],
            };
            for cell in cells {
                if !in_range(cell) {
                    return Err(ImpProgramError::CellOutOfRange { op: i, cell });
                }
            }
        }
        for &cell in self.input_cells.iter().chain(&self.output_cells) {
            if !in_range(cell) {
                return Err(ImpProgramError::InterfaceCellOutOfRange { cell });
            }
        }
        // Every read must observe a defined value: primary inputs are
        // preloaded, everything else must have been a destination first.
        // (Dead input cells *may* be recycled as work cells — writing them
        // is legal; reading garbage is not.)
        let mut defined = vec![false; self.num_cells];
        for &c in &self.input_cells {
            defined[c.index()] = true;
        }
        for (i, op) in self.ops.iter().enumerate() {
            if let ImpOp::Imply { p, q } = *op {
                for cell in [p, q] {
                    if !defined[cell.index()] {
                        return Err(ImpProgramError::UndefinedRead { op: i, cell });
                    }
                }
            }
            defined[op.destination().index()] = true;
        }
        Ok(())
    }

    /// Human-readable listing.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            out.push_str(&format!("{i:6}: {op}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    #[test]
    fn destination_and_display() {
        let f = ImpOp::False(c(3));
        let i = ImpOp::Imply { p: c(1), q: c(2) };
        assert_eq!(f.destination(), c(3));
        assert_eq!(i.destination(), c(2));
        assert_eq!(f.to_string(), "FALSE r3");
        assert_eq!(i.to_string(), "r1 IMP r2");
    }

    #[test]
    fn write_counts_count_destinations() {
        let p = ImpProgram {
            ops: vec![
                ImpOp::False(c(2)),
                ImpOp::Imply { p: c(0), q: c(2) },
                ImpOp::Imply { p: c(1), q: c(2) },
            ],
            num_cells: 3,
            input_cells: vec![c(0), c(1)],
            output_cells: vec![c(2)],
        };
        assert_eq!(p.write_counts(), vec![0, 0, 3]);
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.num_ops(), 3);
        assert_eq!(p.num_rrams(), 3);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let p = ImpProgram {
            ops: vec![ImpOp::False(c(5))],
            num_cells: 3,
            input_cells: vec![],
            output_cells: vec![],
        };
        assert!(matches!(
            p.validate(),
            Err(ImpProgramError::CellOutOfRange { op: 0, .. })
        ));
    }

    #[test]
    fn validate_rejects_undefined_read() {
        // r1 is read before anything defines it.
        let p = ImpProgram {
            ops: vec![ImpOp::Imply { p: c(1), q: c(0) }],
            num_cells: 2,
            input_cells: vec![c(0)],
            output_cells: vec![],
        };
        assert!(matches!(
            p.validate(),
            Err(ImpProgramError::UndefinedRead { op: 0, cell }) if cell == c(1)
        ));
    }

    #[test]
    fn recycling_dead_input_is_legal() {
        // r0 is a (dead) input recycled as a work cell, then read.
        let p = ImpProgram {
            ops: vec![ImpOp::False(c(0)), ImpOp::Imply { p: c(0), q: c(1) }],
            num_cells: 2,
            input_cells: vec![c(0), c(1)],
            output_cells: vec![c(1)],
        };
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = ImpProgramError::UndefinedRead { op: 7, cell: c(2) };
        assert!(e.to_string().contains("instruction 7"));
        assert!(e.to_string().contains("r2"));
    }
}
