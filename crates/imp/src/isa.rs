//! The stateful material-implication instruction set, plugged into the
//! shared [`rlim_isa`] program container.
//!
//! IMPLY logic [Borghetti et al., Nature 2010] computes with two
//! operations on resistive cells:
//!
//! * `FALSE q` — unconditionally reset cell `q` to 0;
//! * `p IMP q` — conditionally set: `q ← p̄ ∨ q` (material implication of
//!   the value stored in `p` into the value stored in `q`).
//!
//! Both operations pulse the destination cell, so — exactly as for RM3 —
//! every instruction is one write on its destination. Unlike RM3, *only*
//! the work cell `q` is ever written: the paper's §II observes that this
//! lack of commutativity concentrates the write traffic on work devices.

use std::fmt;

use rlim_isa::{Isa, Reads};
use rlim_rram::CellId;

/// One IMPLY-logic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImpOp {
    /// `FALSE q`: reset the cell to 0.
    False(CellId),
    /// `p IMP q`: `q ← p̄ ∨ q`.
    Imply {
        /// Condition cell (read only).
        p: CellId,
        /// Work cell (read and rewritten).
        q: CellId,
    },
}

impl fmt::Display for ImpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImpOp::False(q) => write!(f, "FALSE r{}", q.index()),
            ImpOp::Imply { p, q } => write!(f, "r{} IMP r{}", p.index(), q.index()),
        }
    }
}

impl Isa for ImpOp {
    const NAME: &'static str = "IMPLY";
    // An IMP read of a never-written, non-input cell would observe
    // whatever the array happened to hold, so validation rejects it.
    const REQUIRES_DEFINED_READS: bool = true;

    fn destination(&self) -> CellId {
        match *self {
            ImpOp::False(q) | ImpOp::Imply { q, .. } => q,
        }
    }

    fn reads(&self) -> Reads {
        match *self {
            // FALSE is unconditional: no data dependency.
            ImpOp::False(_) => Reads::new(),
            // IMP reads the condition and the work cell's previous value.
            ImpOp::Imply { p, q } => [p, q].into_iter().collect(),
        }
    }
}

impl ImpOp {
    /// The cell this operation writes (inherent mirror of
    /// [`Isa::destination`] so callers don't need the trait in scope).
    pub fn destination(self) -> CellId {
        Isa::destination(&self)
    }
}

/// A compiled IMPLY program: the shared container instantiated at the
/// IMPLY instruction set, giving it the same `write_counts()` /
/// `write_stats()` accounting surface as the RM3 program.
pub type ImpProgram = rlim_isa::Program<ImpOp>;

/// Structural validation error of an [`ImpProgram`] (shared across ISAs).
pub use rlim_isa::ProgramError as ImpProgramError;

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    #[test]
    fn destination_and_display() {
        let f = ImpOp::False(c(3));
        let i = ImpOp::Imply { p: c(1), q: c(2) };
        assert_eq!(f.destination(), c(3));
        assert_eq!(i.destination(), c(2));
        assert_eq!(f.to_string(), "FALSE r3");
        assert_eq!(i.to_string(), "r1 IMP r2");
    }

    #[test]
    fn reads_model_imp_data_dependencies() {
        assert!(ImpOp::False(c(3)).reads().is_empty());
        assert_eq!(
            ImpOp::Imply { p: c(1), q: c(2) }.reads().as_slice(),
            &[c(1), c(2)]
        );
    }

    #[test]
    fn write_counts_count_destinations() {
        let p = ImpProgram {
            instructions: vec![
                ImpOp::False(c(2)),
                ImpOp::Imply { p: c(0), q: c(2) },
                ImpOp::Imply { p: c(1), q: c(2) },
            ],
            num_cells: 3,
            input_cells: vec![c(0), c(1)],
            output_cells: vec![c(2)],
        };
        assert_eq!(p.write_counts(), vec![0, 0, 3]);
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.num_instructions(), 3);
        assert_eq!(p.num_rrams(), 3);
        assert_eq!(p.write_stats().max, 3, "shared WriteStats surface");
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let p = ImpProgram {
            instructions: vec![ImpOp::False(c(5))],
            num_cells: 3,
            input_cells: vec![],
            output_cells: vec![],
        };
        assert!(matches!(
            p.validate(),
            Err(ImpProgramError::CellOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_undefined_read() {
        // r1 is read before anything defines it.
        let p = ImpProgram {
            instructions: vec![ImpOp::Imply { p: c(1), q: c(0) }],
            num_cells: 2,
            input_cells: vec![c(0)],
            output_cells: vec![],
        };
        assert!(matches!(
            p.validate(),
            Err(ImpProgramError::UndefinedRead { op: 0, cell }) if cell == c(1)
        ));
    }

    #[test]
    fn recycling_dead_input_is_legal() {
        // r0 is a (dead) input recycled as a work cell, then read.
        let p = ImpProgram {
            instructions: vec![ImpOp::False(c(0)), ImpOp::Imply { p: c(0), q: c(1) }],
            num_cells: 2,
            input_cells: vec![c(0), c(1)],
            output_cells: vec![c(1)],
        };
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = ImpProgramError::UndefinedRead { op: 7, cell: c(2) };
        assert!(e.to_string().contains("instruction 7"));
        assert!(e.to_string().contains("r2"));
    }
}
