//! Property-based tests for the IMPLY baseline: synthesis must preserve
//! function and uphold its write-accounting invariants on arbitrary MIGs.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rlim_imp::{synthesize, ImpAllocation, ImpMachine, ImpSynthOptions};
use rlim_mig::random::{generate, RandomMigConfig};
use rlim_mig::Mig;

fn mig_strategy() -> impl Strategy<Value = Mig> {
    (2usize..8, 1usize..6, 0usize..120, 0.0f64..0.6, any::<u64>()).prop_map(
        |(inputs, outputs, gates, complement_prob, seed)| {
            let cfg = RandomMigConfig {
                inputs,
                outputs,
                gates,
                complement_prob,
                ..Default::default()
            };
            generate(&cfg, seed)
        },
    )
}

fn options_strategy() -> impl Strategy<Value = ImpSynthOptions> {
    prop_oneof![
        Just(ImpSynthOptions::lifo()),
        Just(ImpSynthOptions::min_write()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Synthesised IMP programs compute the MIG's function.
    #[test]
    fn synthesis_preserves_function(mig in mig_strategy(), options in options_strategy(), seed: u64) {
        let program = synthesize(&mig, &options);
        prop_assert_eq!(program.validate(), Ok(()));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..3 {
            let inputs: Vec<bool> = (0..mig.num_inputs()).map(|_| rng.gen()).collect();
            let mut machine = ImpMachine::for_program(&program);
            let got = machine.run(&program, &inputs).expect("no endurance limit");
            prop_assert_eq!(got, mig.evaluate(&inputs));
        }
    }

    /// One write per op; total writes equal the op count.
    #[test]
    fn write_accounting(mig in mig_strategy(), options in options_strategy()) {
        let program = synthesize(&mig, &options);
        let counts = program.write_counts();
        prop_assert_eq!(counts.len(), program.num_rrams());
        prop_assert_eq!(counts.iter().sum::<u64>() as usize, program.num_instructions());
    }

    /// Allocation policy never changes op or cell *counts*, only which
    /// cells carry the writes (the IMP analogue of the paper's min-write
    /// cost-neutrality).
    #[test]
    fn allocation_is_cost_neutral(mig in mig_strategy()) {
        let lifo = synthesize(&mig, &ImpSynthOptions { allocation: ImpAllocation::Lifo });
        let minw = synthesize(&mig, &ImpSynthOptions { allocation: ImpAllocation::MinWrite });
        prop_assert_eq!(lifo.num_instructions(), minw.num_instructions());
        prop_assert_eq!(lifo.num_rrams(), minw.num_rrams());
    }

    /// The machine's crossbar wear agrees with the program's static
    /// write-count accounting.
    #[test]
    fn machine_wear_matches_static_counts(mig in mig_strategy(), seed: u64) {
        let program = synthesize(&mig, &ImpSynthOptions::lifo());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inputs: Vec<bool> = (0..mig.num_inputs()).map(|_| rng.gen()).collect();
        let mut machine = ImpMachine::for_program(&program);
        machine.run(&program, &inputs).expect("no endurance limit");
        prop_assert_eq!(machine.array().write_counts(), program.write_counts());
    }

    /// Synthesis is deterministic.
    #[test]
    fn synthesis_is_deterministic(mig in mig_strategy(), options in options_strategy()) {
        let a = synthesize(&mig, &options);
        let b = synthesize(&mig, &options);
        prop_assert_eq!(a, b);
    }
}
