//! The one typed error every service consumer sees.
//!
//! Before this module existed each entry point invented its own failure
//! story: the CLI wrapped everything in stringly `CliError::run(...)`,
//! the eval binaries called `std::process::exit`, and library errors
//! (`ProgramError`, `ParseBlifError`, `FleetError`) were flattened into
//! text at the first opportunity. [`Error`] keeps them typed end to end;
//! the CLI converts at its outermost boundary only.

use std::fmt;

use rlim_isa::ProgramError;
use rlim_mig::blif::ParseBlifError;
use rlim_plim::FleetError;

/// Any failure the service (or a thin client built on it) can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A request that can never succeed: unknown names, malformed values,
    /// contradictory options. Maps to a usage error (exit code 2) in the
    /// CLI.
    InvalidRequest(String),
    /// A benchmark name that is not in the suite.
    UnknownBenchmark(String),
    /// Reading or writing a file failed (`std::io::Error` flattened to
    /// text so the error stays `Clone + PartialEq`).
    Io {
        /// The offending path.
        path: String,
        /// The I/O error text.
        message: String,
    },
    /// A BLIF netlist failed to parse.
    Blif {
        /// The source path (or a synthetic label for in-memory text).
        path: String,
        /// The parse failure, with its source line.
        error: ParseBlifError,
    },
    /// A program failed structural validation.
    Program(ProgramError),
    /// A fleet workload could not be placed or failed mid-run.
    Fleet(FleetError),
    /// Any other operational failure (exit code 1 in the CLI).
    Run(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidRequest(msg) => write!(f, "{msg}"),
            Error::UnknownBenchmark(name) => write!(f, "unknown benchmark `{name}`"),
            Error::Io { path, message } => write!(f, "{path}: {message}"),
            Error::Blif { path, error } => write!(f, "{path}: {error}"),
            Error::Program(e) => write!(f, "invalid program: {e}"),
            Error::Fleet(e) => write!(f, "{e}"),
            Error::Run(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Blif { error, .. } => Some(error),
            Error::Program(e) => Some(e),
            Error::Fleet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for Error {
    fn from(e: ProgramError) -> Self {
        Error::Program(e)
    }
}

impl From<FleetError> for Error {
    fn from(e: FleetError) -> Self {
        Error::Fleet(e)
    }
}

impl From<ParseBlifError> for Error {
    fn from(e: ParseBlifError) -> Self {
        Error::Blif {
            path: "<blif>".to_string(),
            error: e,
        }
    }
}

impl Error {
    /// Attaches an I/O failure to its path.
    pub fn io(path: impl Into<String>, e: &std::io::Error) -> Self {
        Error::Io {
            path: path.into(),
            message: e.to_string(),
        }
    }

    /// Whether the failure is a usage problem (the request itself is
    /// wrong) rather than an operational one — the CLI's exit-code split.
    pub fn is_usage(&self) -> bool {
        matches!(self, Error::InvalidRequest(_) | Error::UnknownBenchmark(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlim_rram::CellId;

    #[test]
    fn displays_are_stable() {
        assert_eq!(
            Error::UnknownBenchmark("nonesuch".into()).to_string(),
            "unknown benchmark `nonesuch`"
        );
        assert_eq!(
            Error::Io {
                path: "x.blif".into(),
                message: "gone".into()
            }
            .to_string(),
            "x.blif: gone"
        );
        let blif = Error::Blif {
            path: "y.blif".into(),
            error: ParseBlifError {
                line: 3,
                message: "unsupported directive `.latch`".into(),
            },
        };
        assert_eq!(
            blif.to_string(),
            "y.blif: line 3: unsupported directive `.latch`"
        );
    }

    #[test]
    fn from_impls_preserve_the_source() {
        let p = ProgramError::DuplicateInputCell(CellId::new(4));
        let e: Error = p.clone().into();
        assert_eq!(e, Error::Program(p));
        let fl = FleetError::Exhausted {
            job: 2,
            cost: 5,
            live_arrays: 1,
        };
        let e: Error = fl.clone().into();
        assert_eq!(e, Error::Fleet(fl));
        assert!(e.to_string().contains("exhausted"));
    }

    #[test]
    fn usage_split() {
        assert!(Error::InvalidRequest("bad".into()).is_usage());
        assert!(Error::UnknownBenchmark("x".into()).is_usage());
        assert!(!Error::Run("boom".into()).is_usage());
        let exhausted = FleetError::Exhausted {
            job: 0,
            cost: 1,
            live_arrays: 0,
        };
        assert!(!Error::Fleet(exhausted).is_usage());
    }
}
