//! A minimal in-tree JSON writer.
//!
//! The build environment has no registry access, so serde is out of
//! reach; every JSON document in the workspace — the [`crate::Report`]
//! serialization and `bench_compile`'s `BENCH_compile.json` — is emitted
//! through this one module instead of hand-concatenated strings.
//!
//! The model is a tree of [`Json`] values with **ordered** object keys
//! (documents render exactly in insertion order, so committed files stay
//! diff-friendly) and per-value float precision (measurement files pin
//! `{:.6}`-style formatting; statistics pin `{:.4}`). Rendering is
//! pretty-printed with two-space indentation ([`Json::render`]) or
//! single-line compact ([`Json::render_compact`] — the daemon's
//! JSON-lines wire framing).
//!
//! Since the daemon also *receives* JSON off a socket, the module pairs
//! the writer with a strict reader: [`parse`] turns one document back
//! into a [`Json`] tree, preserving key order and float precision, so
//! `parse(doc.render_compact())` reproduces `doc` exactly for every
//! canonically rendered document.

use std::fmt::Write as _;

/// One JSON value.
///
/// # Examples
///
/// ```
/// use rlim_service::json::Json;
///
/// let doc = Json::object([
///     ("name", Json::from("div")),
///     ("gates", Json::from(25237u64)),
///     ("seconds", Json::float(1.25, 3)),
/// ]);
/// assert_eq!(
///     doc.render(),
///     "{\n  \"name\": \"div\",\n  \"gates\": 25237,\n  \"seconds\": 1.250\n}"
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float rendered with a fixed number of decimal places
    /// (`precision == 0` renders as an integer literal, matching
    /// `format!("{v:.0}")`). Non-finite values render as `null`.
    Float {
        /// The value.
        value: f64,
        /// Decimal places.
        precision: usize,
    },
    /// A string (escaped on rendering).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with keys in insertion order.
    Object(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl Json {
    /// An object from `(key, value)` pairs, keys kept in order.
    pub fn object<K: Into<String>, V: Into<Json>, I: IntoIterator<Item = (K, V)>>(
        entries: I,
    ) -> Self {
        Json::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// An array from values.
    pub fn array<V: Into<Json>, I: IntoIterator<Item = V>>(values: I) -> Self {
        Json::Array(values.into_iter().map(Into::into).collect())
    }

    /// A float with a fixed decimal precision.
    pub fn float(value: f64, precision: usize) -> Self {
        Json::Float { value, precision }
    }

    /// Renders the value as pretty-printed JSON (two-space indent, no
    /// trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders the value as one compact line — no spaces, no newlines.
    ///
    /// This is the framing of the daemon's wire protocol: one request or
    /// response is exactly one `render_compact` line terminated by `\n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlim_service::json::Json;
    ///
    /// let doc = Json::object([("verb", Json::from("healthz"))]);
    /// assert_eq!(doc.render_compact(), "{\"verb\":\"healthz\"}");
    /// ```
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float { value, precision } => {
                if value.is_finite() {
                    let _ = write!(out, "{value:.precision$}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    indent(out, depth + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                    out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Appends `s` as a quoted, escaped JSON string literal.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes `s` as a standalone JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

/// A [`parse`] failure: where in the input, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting accepted by [`parse`] — a guard against
/// stack exhaustion: the daemon feeds this parser untrusted lines
/// straight off a socket.
const MAX_DEPTH: usize = 128;

/// Parses one JSON document into a [`Json`] tree.
///
/// The reader is the exact inverse of the writer on canonical output:
/// object keys keep their input order, and a fractional number remembers
/// how many decimal digits it was written with (`"1.250"` parses to
/// `Json::float(1.25, 3)`), so `parse(doc.render_compact())` — or
/// `parse(doc.render())` — reproduces `doc` for every document the
/// writer can emit. Integers without a fraction become [`Json::UInt`]
/// (or [`Json::Int`] when negative); exponent notation is rejected
/// because the writer never produces it.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input,
/// out-of-range integers, nesting deeper than 128 levels, or trailing
/// non-whitespace after the document.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than 128 levels"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected byte 0x{c:02x}"))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        self.skip_ws();
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        let mut start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.raw_slice(start));
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.raw_slice(start));
                    self.pos += 1;
                    out.push(self.escape_char()?);
                    start = self.pos;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("raw control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// The input between `start` and the cursor. Both ends sit on ASCII
    /// delimiters (quote/backslash bytes never occur inside a UTF-8
    /// multi-byte sequence), so the slice is always valid UTF-8.
    fn raw_slice(&self, start: usize) -> &str {
        std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii-delimited slice")
    }

    fn escape_char(&mut self) -> Result<char, ParseError> {
        let c = self
            .peek()
            .ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => Ok('"'),
            b'\\' => Ok('\\'),
            b'/' => Ok('/'),
            b'n' => Ok('\n'),
            b'r' => Ok('\r'),
            b't' => Ok('\t'),
            b'b' => Ok('\u{8}'),
            b'f' => Ok('\u{c}'),
            b'u' => self.unicode_escape(),
            other => Err(self.error(format!("unknown escape `\\{}`", other as char))),
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a paired `\uXXXX` low surrogate must follow.
            self.eat(b'\\')?;
            self.eat(b'u')?;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.error("expected a low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.error("lone low surrogate"))
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.error("expected four hex digits")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        self.digits()?;
        let mut precision = None;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            precision = Some(self.digits()?);
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            return Err(self.error("exponent notation is not supported"));
        }
        let token = self.raw_slice(start);
        match precision {
            Some(precision) => {
                let value: f64 = token.parse().map_err(|_| self.error("malformed number"))?;
                Ok(Json::Float { value, precision })
            }
            None if negative => token
                .parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.error("integer out of range")),
            None => token
                .parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.error("integer out of range")),
        }
    }

    fn digits(&mut self) -> Result<usize, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            Err(self.error("expected a digit"))
        } else {
            Ok(self.pos - start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json_literals() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Bool(false).render(), "false");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn float_precision_matches_format_spec() {
        assert_eq!(Json::float(1.0 / 3.0, 6).render(), "0.333333");
        assert_eq!(Json::float(2.5, 3).render(), "2.500");
        assert_eq!(Json::float(1234.56, 1).render(), "1234.6");
        // precision 0 renders without a decimal point, like {:.0}.
        assert_eq!(Json::float(214e6, 0).render(), "214000000");
        // Non-finite values cannot appear in JSON.
        assert_eq!(Json::float(f64::NAN, 2).render(), "null");
        assert_eq!(Json::float(f64::INFINITY, 2).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(
            escape("line\nbreak\ttab\rret"),
            "\"line\\nbreak\\ttab\\rret\""
        );
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        // Non-ASCII passes through unescaped (JSON is UTF-8).
        assert_eq!(escape("Ω.A"), "\"Ω.A\"");
    }

    #[test]
    fn nested_document_renders_with_two_space_indent() {
        let doc = Json::object([
            ("schema", Json::from(1u64)),
            (
                "benchmarks",
                Json::Array(vec![
                    Json::object([("name", Json::from("a")), ("n", Json::from(1u64))]),
                    Json::object([("name", Json::from("b")), ("n", Json::from(2u64))]),
                ]),
            ),
            ("fleet", Json::Null),
        ]);
        let expect = "{\n  \"schema\": 1,\n  \"benchmarks\": [\n    {\n      \"name\": \"a\",\n      \"n\": 1\n    },\n    {\n      \"name\": \"b\",\n      \"n\": 2\n    }\n  ],\n  \"fleet\": null\n}";
        assert_eq!(doc.render(), expect);
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::Array(Vec::new()).render(), "[]");
        assert_eq!(Json::Object(Vec::new()).render(), "{}");
        assert_eq!(
            Json::object([("xs", Json::Array(Vec::new()))]).render(),
            "{\n  \"xs\": []\n}"
        );
    }

    #[test]
    fn option_conversion() {
        assert_eq!(Json::from(Some(3u64)), Json::UInt(3));
        assert_eq!(Json::from(None::<u64>), Json::Null);
    }

    #[test]
    fn compact_rendering_is_single_line() {
        let doc = Json::object([
            ("schema", Json::from(1u64)),
            ("xs", Json::array([1u64, 2])),
            ("empty", Json::Array(Vec::new())),
            ("name", Json::from("a\"b")),
            ("mean", Json::float(2.5, 4)),
            ("none", Json::Null),
        ]);
        assert_eq!(
            doc.render_compact(),
            "{\"schema\":1,\"xs\":[1,2],\"empty\":[],\"name\":\"a\\\"b\",\"mean\":2.5000,\"none\":null}"
        );
    }

    #[test]
    fn parse_inverts_both_renderings() {
        let doc = Json::object([
            ("schema", Json::from(4u64)),
            ("label", Json::from("div")),
            ("mean", Json::float(1.25, 4)),
            ("median", Json::float(4096.0, 1)),
            ("delta", Json::Int(-7)),
            ("flags", Json::array([true, false])),
            ("text", Json::from("Ω line\nbreak\ttab \"q\" \\")),
            ("nothing", Json::Null),
            (
                "nested",
                Json::object([
                    ("xs", Json::Array(Vec::new())),
                    ("o", Json::Object(Vec::new())),
                ]),
            ),
        ]);
        assert_eq!(parse(&doc.render_compact()).unwrap(), doc);
        assert_eq!(parse(&doc.render()).unwrap(), doc);
        // …and re-rendering the parse is byte-identical.
        let line = doc.render_compact();
        assert_eq!(parse(&line).unwrap().render_compact(), line);
    }

    #[test]
    fn parse_preserves_float_precision() {
        assert_eq!(parse("1.250").unwrap(), Json::float(1.25, 3));
        assert_eq!(parse("4096.0").unwrap(), Json::float(4096.0, 1));
        assert_eq!(parse("-0.25").unwrap(), Json::float(-0.25, 2));
        assert_eq!(parse("42").unwrap(), Json::UInt(42));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
    }

    #[test]
    fn parse_handles_escapes() {
        assert_eq!(
            parse("\"a\\\"b\\\\c\\n\\t\\r\\/\\b\\f\"").unwrap(),
            Json::Str("a\"b\\c\n\t\r/\u{8}\u{c}".to_string())
        );
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".to_string()));
        // Surrogate pair: U+1D11E (musical G clef).
        assert_eq!(
            parse("\"\\ud834\\udd1e\"").unwrap(),
            Json::Str("\u{1d11e}".to_string())
        );
        assert!(parse("\"\\ud834\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\udd1e\"").is_err(), "lone low surrogate");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for garbage in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "tru",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1.2.3",
            "1e9",
            "01a",
            "{} trailing",
            "18446744073709551616",
            "-9223372036854775809",
            "\u{1}",
        ] {
            let err = parse(garbage).expect_err(garbage);
            assert!(!err.message.is_empty());
            assert!(err.to_string().contains("invalid JSON at byte"));
        }
    }

    #[test]
    fn parse_enforces_the_depth_limit() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }
}
