//! A minimal in-tree JSON writer.
//!
//! The build environment has no registry access, so serde is out of
//! reach; every JSON document in the workspace — the [`crate::Report`]
//! serialization and `bench_compile`'s `BENCH_compile.json` — is emitted
//! through this one module instead of hand-concatenated strings.
//!
//! The model is a tree of [`Json`] values with **ordered** object keys
//! (documents render exactly in insertion order, so committed files stay
//! diff-friendly) and per-value float precision (measurement files pin
//! `{:.6}`-style formatting; statistics pin `{:.4}`). Rendering is
//! pretty-printed with two-space indentation.

use std::fmt::Write as _;

/// One JSON value.
///
/// # Examples
///
/// ```
/// use rlim_service::json::Json;
///
/// let doc = Json::object([
///     ("name", Json::from("div")),
///     ("gates", Json::from(25237u64)),
///     ("seconds", Json::float(1.25, 3)),
/// ]);
/// assert_eq!(
///     doc.render(),
///     "{\n  \"name\": \"div\",\n  \"gates\": 25237,\n  \"seconds\": 1.250\n}"
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float rendered with a fixed number of decimal places
    /// (`precision == 0` renders as an integer literal, matching
    /// `format!("{v:.0}")`). Non-finite values render as `null`.
    Float {
        /// The value.
        value: f64,
        /// Decimal places.
        precision: usize,
    },
    /// A string (escaped on rendering).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with keys in insertion order.
    Object(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl Json {
    /// An object from `(key, value)` pairs, keys kept in order.
    pub fn object<K: Into<String>, V: Into<Json>, I: IntoIterator<Item = (K, V)>>(
        entries: I,
    ) -> Self {
        Json::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// An array from values.
    pub fn array<V: Into<Json>, I: IntoIterator<Item = V>>(values: I) -> Self {
        Json::Array(values.into_iter().map(Into::into).collect())
    }

    /// A float with a fixed decimal precision.
    pub fn float(value: f64, precision: usize) -> Self {
        Json::Float { value, precision }
    }

    /// Renders the value as pretty-printed JSON (two-space indent, no
    /// trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float { value, precision } => {
                if value.is_finite() {
                    let _ = write!(out, "{value:.precision$}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    indent(out, depth + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                    out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Appends `s` as a quoted, escaped JSON string literal.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes `s` as a standalone JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json_literals() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Bool(false).render(), "false");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn float_precision_matches_format_spec() {
        assert_eq!(Json::float(1.0 / 3.0, 6).render(), "0.333333");
        assert_eq!(Json::float(2.5, 3).render(), "2.500");
        assert_eq!(Json::float(1234.56, 1).render(), "1234.6");
        // precision 0 renders without a decimal point, like {:.0}.
        assert_eq!(Json::float(214e6, 0).render(), "214000000");
        // Non-finite values cannot appear in JSON.
        assert_eq!(Json::float(f64::NAN, 2).render(), "null");
        assert_eq!(Json::float(f64::INFINITY, 2).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(
            escape("line\nbreak\ttab\rret"),
            "\"line\\nbreak\\ttab\\rret\""
        );
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        // Non-ASCII passes through unescaped (JSON is UTF-8).
        assert_eq!(escape("Ω.A"), "\"Ω.A\"");
    }

    #[test]
    fn nested_document_renders_with_two_space_indent() {
        let doc = Json::object([
            ("schema", Json::from(1u64)),
            (
                "benchmarks",
                Json::Array(vec![
                    Json::object([("name", Json::from("a")), ("n", Json::from(1u64))]),
                    Json::object([("name", Json::from("b")), ("n", Json::from(2u64))]),
                ]),
            ),
            ("fleet", Json::Null),
        ]);
        let expect = "{\n  \"schema\": 1,\n  \"benchmarks\": [\n    {\n      \"name\": \"a\",\n      \"n\": 1\n    },\n    {\n      \"name\": \"b\",\n      \"n\": 2\n    }\n  ],\n  \"fleet\": null\n}";
        assert_eq!(doc.render(), expect);
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::Array(Vec::new()).render(), "[]");
        assert_eq!(Json::Object(Vec::new()).render(), "{}");
        assert_eq!(
            Json::object([("xs", Json::Array(Vec::new()))]).render(),
            "{\n  \"xs\": []\n}"
        );
    }

    #[test]
    fn option_conversion() {
        assert_eq!(Json::from(Some(3u64)), Json::UInt(3));
        assert_eq!(Json::from(None::<u64>), Json::Null);
    }
}
