//! The structured answer to a [`crate::JobSpec`]: everything the paper's
//! tables, the CLI and the bench runner print, as one typed value with a
//! stable JSON serialization.

use rlim_compiler::{Allocation, CompileOptions, Selection};
use rlim_mig::rewrite::Algorithm;
use rlim_plim::ArrayStats;
use rlim_rram::{FleetWriteStats, WriteStats};

use crate::json::Json;

/// JSON schema version stamped into every serialized report. Bump when a
/// key is added, removed or re-typed; the golden schema test pins the
/// current shape.
pub const REPORT_SCHEMA_VERSION: u64 = 6;

/// The circuit interface behind a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitSummary {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Majority gates.
    pub gates: usize,
}

/// Device-lifetime projection from the compiled program's peak per-cell
/// write count, at a fixed per-cell endurance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifetimeProjection {
    /// Assumed per-cell endurance (writes before failure).
    pub endurance: u64,
    /// Executions one array survives before its hottest cell fails.
    pub single_array_runs: u64,
    /// Fleet size assumed by `fleet_runs`.
    pub fleet_arrays: usize,
    /// Executions a fleet of `fleet_arrays` identical arrays absorbs
    /// before every array is exhausted.
    pub fleet_runs: u64,
}

/// Fault-injection outcome of a chaos-mode fleet workload: what the
/// fault model threw at the fleet and how recovery absorbed it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSummary {
    /// The master fault seed the per-array models derived from.
    pub seed: u64,
    /// Median per-cell endurance of the injected device population.
    pub endurance_median: f64,
    /// Log-normal endurance spread of the injected device population.
    pub endurance_sigma: f64,
    /// Per-cell stuck-at fault probability of the injected population.
    pub stuck_probability: f64,
    /// Whether online recovery was enabled.
    pub recovery: bool,
    /// Total detected write faults (worn + stuck).
    pub faults: u64,
    /// Faults from cells exceeding their sampled endurance.
    pub worn: u64,
    /// Faults from stuck-at cells caught by write-verify readback.
    pub stuck: u64,
    /// Faults healed by remapping the broken cell to a spare row.
    pub remaps: u64,
    /// Arrays retired by the fault watchdog.
    pub retirements: u64,
    /// Broken physical cells across all live arrays.
    pub broken_cells: u64,
    /// The fault log, one rendered [`rlim_plim::FaultEvent`] per line
    /// (a bounded ring buffer; oldest events may have been dropped).
    pub events: Vec<String>,
}

/// Wear outcome of a fleet workload rider.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Number of arrays.
    pub arrays: usize,
    /// Dispatch policy label (`"round-robin"` / `"least-worn"`).
    pub dispatch: &'static str,
    /// Whether dispatch was SIMD-batched into word-level lane groups.
    pub simd: bool,
    /// Jobs dispatched.
    pub jobs: usize,
    /// `#I` of the heavy (naive) program in the alternating stream.
    pub heavy_instructions: usize,
    /// `#I` of the light program (the spec's own options).
    pub light_instructions: usize,
    /// Total write cost of the whole job stream.
    pub stream_writes: u64,
    /// Per-array jobs / writes / retirement, in array order.
    pub per_array: Vec<ArrayStats>,
    /// Fleet-level wear distributions.
    pub wear: FleetWriteStats,
    /// Arrays retired by the workload.
    pub retired: usize,
    /// Heavy jobs the fleet can still absorb within its write budget
    /// (`None` when unbudgeted).
    pub remaining_jobs: Option<u64>,
    /// Heavy jobs until the most-worn live array retires (`None` when
    /// unbudgeted).
    pub first_retirement_horizon: Option<u64>,
    /// Chaos-mode fault/recovery outcome; `None` on ideal devices.
    pub fault: Option<FaultSummary>,
    /// Wall-clock seconds the workload execution took. Excluded from the
    /// JSON serialization, which is fully deterministic.
    pub seconds: f64,
}

/// The structured result of one service job.
///
/// Everything a thin client needs to render the CLI's text output, a
/// table row or a JSON document — no client re-derives metrics from the
/// program. [`Report::to_json`] is the one stable serialization; its
/// field set is pinned by a golden schema test and versioned by
/// [`REPORT_SCHEMA_VERSION`].
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The source label (benchmark name or BLIF path).
    pub label: String,
    /// The backend that compiled and would execute the program.
    pub backend: &'static str,
    /// The compiler configuration the job ran with.
    pub options: CompileOptions,
    /// The circuit interface.
    pub circuit: CircuitSummary,
    /// `#I` — number of instructions.
    pub instructions: usize,
    /// `#R` — number of RRAM cells.
    pub rrams: usize,
    /// Total destination writes one execution performs.
    pub total_writes: u64,
    /// The per-cell write distribution (the paper's Table I metrics).
    pub writes: WriteStats,
    /// Device-lifetime projection at HfOx endurance.
    pub lifetime: LifetimeProjection,
    /// The program listing, when the spec requested it: parseable
    /// `.plim` assembly for RM3 backends, a disassembly for IMPLY.
    pub program: Option<String>,
    /// The fleet workload outcome, when the spec carried a rider.
    pub fleet: Option<FleetReport>,
    /// Whether this report was served from a compile cache instead of a
    /// fresh compile. Always `false` on reports straight out of
    /// [`crate::Service`]; the daemon flips it on cache hits, and it is
    /// the **only** field allowed to differ between a hit and the miss
    /// that populated the entry (the daemon's cache counters live in its
    /// `metrics` verb, not here, precisely to keep that guarantee).
    pub cached: bool,
    /// Wall-clock seconds the compilation took. Excluded from the JSON
    /// serialization, which is fully deterministic.
    pub seconds: f64,
}

fn algorithm_name(a: Algorithm) -> &'static str {
    match a {
        Algorithm::PlimCompiler => "plim-compiler",
        Algorithm::EnduranceAware => "endurance-aware",
        Algorithm::LevelAware => "level-aware",
    }
}

fn selection_name(s: Selection) -> &'static str {
    match s {
        Selection::Topological => "topological",
        Selection::AreaAware => "area-aware",
        Selection::EnduranceAware => "endurance-aware",
    }
}

fn allocation_name(a: Allocation) -> &'static str {
    match a {
        Allocation::Lifo => "lifo",
        Allocation::MinWrite => "min-write",
    }
}

fn write_stats_json(s: &WriteStats) -> Json {
    Json::object([
        ("min", Json::from(s.min)),
        ("max", Json::from(s.max)),
        ("mean", Json::float(s.mean, 4)),
        ("stdev", Json::float(s.stdev, 4)),
        ("cells", Json::from(s.cells)),
    ])
}

fn fault_summary_json(f: &FaultSummary) -> Json {
    Json::object([
        ("seed", Json::from(f.seed)),
        ("endurance_median", Json::float(f.endurance_median, 1)),
        ("endurance_sigma", Json::float(f.endurance_sigma, 4)),
        ("stuck_probability", Json::float(f.stuck_probability, 4)),
        ("recovery", Json::from(f.recovery)),
        ("faults", Json::from(f.faults)),
        ("worn", Json::from(f.worn)),
        ("stuck", Json::from(f.stuck)),
        ("remaps", Json::from(f.remaps)),
        ("retirements", Json::from(f.retirements)),
        ("broken_cells", Json::from(f.broken_cells)),
        (
            "events",
            Json::Array(f.events.iter().map(|e| Json::from(e.as_str())).collect()),
        ),
    ])
}

fn fleet_wear_json(w: &FleetWriteStats) -> Json {
    Json::object([
        ("arrays", Json::from(w.arrays)),
        ("array_totals", write_stats_json(&w.array_totals)),
        ("array_peaks", write_stats_json(&w.array_peaks)),
        ("cells", write_stats_json(&w.cells)),
    ])
}

impl Report {
    /// The report as a JSON document (schema pinned by the golden test;
    /// wall-clock timings are deliberately excluded so serial and
    /// parallel batch runs serialize byte-identically).
    pub fn to_json(&self) -> Json {
        let o = &self.options;
        let policy = Json::object([
            ("preset", Json::from(o.preset_name())),
            ("rewriting", Json::from(o.rewriting.map(algorithm_name))),
            ("selection", Json::from(selection_name(o.selection))),
            ("allocation", Json::from(allocation_name(o.allocation))),
            ("effort", Json::from(o.effort)),
            ("max_writes", Json::from(o.max_writes)),
            ("peephole", Json::from(o.peephole)),
            ("copy_reuse", Json::from(o.copy_reuse)),
            ("esat", Json::from(o.esat)),
            ("esat_nodes", Json::from(o.esat_nodes as u64)),
            ("esat_iters", Json::from(o.esat_iters as u64)),
        ]);
        let circuit = Json::object([
            ("inputs", Json::from(self.circuit.inputs)),
            ("outputs", Json::from(self.circuit.outputs)),
            ("gates", Json::from(self.circuit.gates)),
        ]);
        let lifetime = Json::object([
            ("endurance", Json::from(self.lifetime.endurance)),
            (
                "single_array_runs",
                Json::from(self.lifetime.single_array_runs),
            ),
            ("fleet_arrays", Json::from(self.lifetime.fleet_arrays)),
            ("fleet_runs", Json::from(self.lifetime.fleet_runs)),
        ]);
        let fleet = match &self.fleet {
            None => Json::Null,
            Some(f) => Json::object([
                ("arrays", Json::from(f.arrays)),
                ("dispatch", Json::from(f.dispatch)),
                ("simd", Json::Bool(f.simd)),
                ("jobs", Json::from(f.jobs)),
                ("heavy_instructions", Json::from(f.heavy_instructions)),
                ("light_instructions", Json::from(f.light_instructions)),
                ("stream_writes", Json::from(f.stream_writes)),
                (
                    "per_array",
                    Json::Array(
                        f.per_array
                            .iter()
                            .map(|a| {
                                Json::object([
                                    ("jobs", Json::from(a.jobs)),
                                    ("writes", Json::from(a.writes)),
                                    ("retired", Json::from(a.retired)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("wear", fleet_wear_json(&f.wear)),
                ("retired", Json::from(f.retired)),
                ("remaining_jobs", Json::from(f.remaining_jobs)),
                (
                    "first_retirement_horizon",
                    Json::from(f.first_retirement_horizon),
                ),
                (
                    "fault",
                    f.fault.as_ref().map_or(Json::Null, fault_summary_json),
                ),
            ]),
        };
        Json::object([
            ("schema", Json::from(REPORT_SCHEMA_VERSION)),
            ("label", Json::from(self.label.as_str())),
            ("backend", Json::from(self.backend)),
            ("policy", policy),
            ("circuit", circuit),
            ("instructions", Json::from(self.instructions)),
            ("rrams", Json::from(self.rrams)),
            ("total_writes", Json::from(self.total_writes)),
            ("writes", write_stats_json(&self.writes)),
            ("lifetime", lifetime),
            ("program", Json::from(self.program.as_deref())),
            ("fleet", fleet),
            ("cached", Json::Bool(self.cached)),
        ])
    }

    /// [`Report::to_json`] rendered to text, with a trailing newline.
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().render();
        s.push('\n');
        s
    }
}
