//! # rlim-service — the typed job/report API in front of the toolchain
//!
//! Every consumer of the compiler used to reinvent its own entry point:
//! the CLI parsed strings straight into ad-hoc calls, the evaluation
//! binaries hand-assembled benchmark × preset matrices, and the bench
//! runner concatenated JSON by hand. This crate puts **one** typed
//! request/response API in front of the whole paper reproduction:
//!
//! * [`JobSpec`] — a builder-first job description: circuit source
//!   (named benchmark, BLIF path, in-memory MIG), backend selection,
//!   [`CompileOptions`] preset + overrides, optional [`FleetSpec`] rider;
//! * [`Service`] — runs specs ([`Service::run`]) or whole batches
//!   ([`Service::run_batch`]) on the workspace's scoped worker pool with
//!   deterministic ordering (serial and parallel runs are byte-identical);
//! * [`Report`] — the structured answer: programs, `#I` / `#R`,
//!   [`WriteStats`], lifetime projections and fleet wear, with a stable
//!   JSON serialization through the in-tree [`json`] writer;
//! * [`Error`] — the one typed error every client maps to its own
//!   surface.
//!
//! The CLI, `rlim-eval`'s sweep/fleet binaries and the bench runner are
//! thin clients of this API; future scaling work (sharding, async,
//! caching) targets this seam.
//!
//! ## Example
//!
//! ```
//! use rlim_benchmarks::Benchmark;
//! use rlim_compiler::CompileOptions;
//! use rlim_service::{JobSpec, Service};
//!
//! let spec = JobSpec::benchmark(Benchmark::Int2float)
//!     .with_options(CompileOptions::endurance_aware().with_effort(1));
//! let report = Service::new().run(&spec)?;
//! assert!(report.instructions > 0);
//! assert_eq!(report.writes.cells, report.rrams);
//! # Ok::<(), rlim_service::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

mod error;
mod report;
mod spec;

pub use error::Error;
pub use report::{
    CircuitSummary, FaultSummary, FleetReport, LifetimeProjection, Report, REPORT_SCHEMA_VERSION,
};
pub use spec::{BackendKind, ChaosSpec, FleetSpec, JobSpec, Source, DEFAULT_PROJECTION_ARRAYS};

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use rlim_benchmarks::Benchmark;
use rlim_compiler::{Backend, CompileOptions, ImpBackend, Rm3Backend};
use rlim_imp::ImpOp;
use rlim_isa::Program;
use rlim_mig::{blif, Mig};
use rlim_plim::{asm, Fleet, FleetConfig, Instruction, Job, RecoveryConfig};
use rlim_rram::lifetime::{
    executions_until_failure, fleet_executions_until_exhaustion, ENDURANCE_HFOX,
};
use rlim_rram::variability::EnduranceModel;
use rlim_rram::{FaultModel, WriteStats};
use rlim_testkit::parallel::parallel_map;

/// The service front end: compiles [`JobSpec`]s into [`Report`]s.
///
/// A `Service` is cheap to construct and stateless between calls; it
/// carries only run-wide configuration (worker threads, the endurance
/// constant used for lifetime projections).
#[derive(Debug, Clone, Copy)]
pub struct Service {
    threads: usize,
    endurance: u64,
}

impl Default for Service {
    fn default() -> Self {
        Service::new()
    }
}

/// The compile-flow a backend kind routes through: RM3, hosted-RM3 and
/// wide-RM3 execute the *same* compiled program, so they share one
/// compile entry — both in [`Service::run_batch`]'s in-batch dedup and
/// in the daemon's cross-request compile cache, whose key is
/// `(source fingerprint, CompileClass, CompileOptions, riders)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompileClass {
    /// The RM3 program pipeline (`rm3` / `hosted-rm3` / `rm3-wide`).
    Rm3,
    /// The material-implication baseline pipeline (`imp`).
    Imp,
}

impl CompileClass {
    /// The stable lowercase name used inside daemon cache keys.
    pub fn name(self) -> &'static str {
        match self {
            CompileClass::Rm3 => "rm3",
            CompileClass::Imp => "imp",
        }
    }
}

impl BackendKind {
    /// The compile class this backend routes through. Kinds with the
    /// same class always produce byte-identical programs for the same
    /// source and options.
    pub fn class(self) -> CompileClass {
        match self {
            BackendKind::Rm3 | BackendKind::HostedRm3 | BackendKind::WideRm3 => CompileClass::Rm3,
            BackendKind::Imp => CompileClass::Imp,
        }
    }
}

/// One compiled program, type-erased over the two instruction sets.
enum Compiled {
    Rm3(Program<Instruction>),
    Imp(Program<ImpOp>),
}

impl Compiled {
    fn num_instructions(&self) -> usize {
        match self {
            Compiled::Rm3(p) => p.num_instructions(),
            Compiled::Imp(p) => p.num_instructions(),
        }
    }

    fn num_rrams(&self) -> usize {
        match self {
            Compiled::Rm3(p) => p.num_rrams(),
            Compiled::Imp(p) => p.num_rrams(),
        }
    }

    fn total_writes(&self) -> u64 {
        match self {
            Compiled::Rm3(p) => p.total_writes(),
            Compiled::Imp(p) => p.total_writes(),
        }
    }

    fn write_stats(&self) -> WriteStats {
        match self {
            Compiled::Rm3(p) => p.write_stats(),
            Compiled::Imp(p) => p.write_stats(),
        }
    }

    /// The program listing: parseable `.plim` assembly for RM3 (the
    /// format `rlim run` accepts back), a disassembly for IMPLY.
    fn listing(&self) -> String {
        match self {
            Compiled::Rm3(p) => asm::to_text(p),
            Compiled::Imp(p) => p.disassemble(),
        }
    }

    fn as_rm3(&self) -> &Program<Instruction> {
        match self {
            Compiled::Rm3(p) => p,
            Compiled::Imp(_) => unreachable!("fleet jobs are validated to be RM3"),
        }
    }
}

/// Identity of a spec's circuit source, for build deduplication.
/// In-memory graphs are identified by the address of their shared
/// allocation (compared only, never dereferenced).
#[derive(Debug, Clone, PartialEq)]
enum SourceKey {
    Bench(Benchmark),
    Path(std::path::PathBuf),
    Mig(usize),
}

fn source_key(source: &Source) -> SourceKey {
    match source {
        Source::Benchmark(b) => SourceKey::Bench(*b),
        Source::BlifPath(p) => SourceKey::Path(p.clone()),
        Source::Mig(m) => SourceKey::Mig(Arc::as_ptr(m) as usize),
    }
}

fn load_blif(path: &Path) -> Result<Mig, Error> {
    let label = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(label.clone(), &e))?;
    blif::parse_blif(&text).map_err(|error| Error::Blif { path: label, error })
}

impl Service {
    /// A service with default configuration: one worker per available
    /// core and HfOx endurance (10¹⁰ writes/cell) for lifetime
    /// projections.
    pub fn new() -> Self {
        Service {
            threads: 0,
            endurance: ENDURANCE_HFOX,
        }
    }

    /// Sets the worker-thread count for batch runs (and for the fleet
    /// rider of a single-spec run): `0` = one per available core, `1` =
    /// forced serial. Serial and parallel runs produce byte-identical
    /// reports.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the per-cell endurance assumed by lifetime projections.
    pub fn with_endurance(mut self, endurance: u64) -> Self {
        self.endurance = endurance;
        self
    }

    /// The configured worker-thread count (`0` = one per core).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one job.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the spec is invalid, its source cannot be
    /// loaded, or its fleet workload fails.
    pub fn run(&self, spec: &JobSpec) -> Result<Report, Error> {
        let mut reports = self.run_batch(std::slice::from_ref(spec))?;
        Ok(reports.pop().expect("one report per spec"))
    }

    /// Runs a batch of jobs, returning one report per spec **in spec
    /// order**, independent of scheduling.
    ///
    /// The batch is executed in three deterministic stages on the
    /// workspace's scoped worker pool: distinct sources are built once,
    /// distinct (source, backend, options) combinations are compiled
    /// once (RM3 and hosted-RM3 share entries; a parameter sweep over
    /// one graph never rebuilds it), then per-spec reports are
    /// assembled — so a forced-serial run (`with_threads(1)`) yields
    /// byte-identical serialized reports to a parallel one.
    ///
    /// # Errors
    ///
    /// Returns the first failing spec's [`Error`] (in spec order).
    pub fn run_batch(&self, specs: &[JobSpec]) -> Result<Vec<Report>, Error> {
        // Validate requests before doing any work.
        for spec in specs {
            if let Some(fleet) = spec.fleet() {
                if spec.backend() == BackendKind::Imp {
                    return Err(Error::InvalidRequest(
                        "fleet workloads require an RM3 backend (the fleet executes \
                         RM3 programs)"
                            .to_string(),
                    ));
                }
                if fleet.arrays == 0 {
                    return Err(Error::InvalidRequest(
                        "a fleet needs at least one array".to_string(),
                    ));
                }
                if fleet.chaos.is_some() && fleet.simd {
                    return Err(Error::InvalidRequest(
                        "chaos mode requires scalar dispatch (word-level writes have \
                         no per-lane readback, so SIMD batches cannot write-verify)"
                            .to_string(),
                    ));
                }
            }
        }

        // ---- Stage 1: build every distinct source once ------------------
        let mut keys: Vec<SourceKey> = Vec::new();
        let mut src_of: Vec<usize> = Vec::with_capacity(specs.len());
        for spec in specs {
            let key = source_key(spec.source());
            let idx = keys.iter().position(|k| *k == key).unwrap_or_else(|| {
                keys.push(key.clone());
                keys.len() - 1
            });
            src_of.push(idx);
        }
        let loaders: Vec<(usize, SourceKey)> = keys.into_iter().enumerate().collect();
        let sources: Vec<&Source> = {
            // First spec mentioning each key, for Arc'd MIG access.
            let mut by_key: Vec<&Source> = Vec::with_capacity(loaders.len());
            for (spec, &idx) in specs.iter().zip(&src_of) {
                if idx == by_key.len() {
                    by_key.push(spec.source());
                }
            }
            by_key
        };
        let built: Vec<Result<Arc<Mig>, Error>> =
            parallel_map(loaders, self.threads, |(idx, key)| match key {
                SourceKey::Bench(b) => Ok(Arc::new(b.build())),
                SourceKey::Path(p) => load_blif(&p).map(Arc::new),
                SourceKey::Mig(_) => match sources[idx] {
                    Source::Mig(m) => Ok(Arc::clone(m)),
                    _ => unreachable!("key kind matches source kind"),
                },
            });
        let mut migs: Vec<Arc<Mig>> = Vec::with_capacity(built.len());
        for result in built {
            migs.push(result?);
        }

        // ---- Stage 2: compile every distinct job once -------------------
        type CompileKey = (usize, CompileClass, CompileOptions);
        let mut compile_keys: Vec<CompileKey> = Vec::new();
        let mut dedup = |key: CompileKey| -> usize {
            compile_keys
                .iter()
                .position(|k| *k == key)
                .unwrap_or_else(|| {
                    compile_keys.push(key);
                    compile_keys.len() - 1
                })
        };
        let mut main_of: Vec<usize> = Vec::with_capacity(specs.len());
        let mut heavy_of: Vec<Option<usize>> = Vec::with_capacity(specs.len());
        for (spec, &src) in specs.iter().zip(&src_of) {
            main_of.push(dedup((src, spec.backend().class(), *spec.options())));
            heavy_of.push(spec.fleet().map(|_| {
                // The fleet's heavy twin: the same circuit compiled naive.
                dedup((src, CompileClass::Rm3, CompileOptions::naive()))
            }));
        }
        let compiled: Vec<(Compiled, f64)> =
            parallel_map(compile_keys, self.threads, |(src, class, options)| {
                let mig = &migs[src];
                let start = Instant::now();
                let program = match class {
                    CompileClass::Rm3 => Compiled::Rm3(Rm3Backend.compile(mig, &options)),
                    CompileClass::Imp => Compiled::Imp(ImpBackend.compile(mig, &options)),
                };
                (program, start.elapsed().as_secs_f64())
            });

        // ---- Stage 3: assemble reports, one per spec --------------------
        // A single-spec run gives its fleet rider the full worker pool;
        // in a batch the specs themselves are the parallel axis.
        let fleet_threads = if specs.len() == 1 { self.threads } else { 1 };
        let jobs: Vec<usize> = (0..specs.len()).collect();
        let assembled: Vec<Result<Report, Error>> = parallel_map(jobs, self.threads, |i| {
            self.assemble(
                &specs[i],
                &migs[src_of[i]],
                &compiled[main_of[i]],
                heavy_of[i].map(|h| &compiled[h].0),
                fleet_threads,
            )
        });
        assembled.into_iter().collect()
    }

    fn assemble(
        &self,
        spec: &JobSpec,
        mig: &Mig,
        main: &(Compiled, f64),
        heavy: Option<&Compiled>,
        fleet_threads: usize,
    ) -> Result<Report, Error> {
        let (program, seconds) = main;
        let writes = program.write_stats();
        let peak = writes.max;
        let fleet_arrays = spec.projection_arrays();
        let lifetime = LifetimeProjection {
            endurance: self.endurance,
            single_array_runs: executions_until_failure([peak], self.endurance),
            fleet_arrays,
            fleet_runs: fleet_executions_until_exhaustion(
                std::iter::repeat_n(peak, fleet_arrays),
                self.endurance,
            ),
        };
        let fleet = match spec.fleet() {
            None => None,
            Some(fs) => Some(self.run_fleet(
                fs,
                heavy.expect("fleet specs enqueue a heavy twin").as_rm3(),
                program.as_rm3(),
                mig.num_inputs(),
                fleet_threads,
            )?),
        };
        Ok(Report {
            label: spec.label(),
            backend: spec.backend().name(),
            options: *spec.options(),
            circuit: CircuitSummary {
                inputs: mig.num_inputs(),
                outputs: mig.num_outputs(),
                gates: mig.num_gates(),
            },
            instructions: program.num_instructions(),
            rrams: program.num_rrams(),
            total_writes: program.total_writes(),
            writes,
            lifetime,
            program: spec.includes_program().then(|| program.listing()),
            fleet,
            cached: false,
            seconds: *seconds,
        })
    }

    /// Runs the alternating heavy/light workload on a fresh fleet.
    fn run_fleet(
        &self,
        fs: &FleetSpec,
        heavy: &Program<Instruction>,
        light: &Program<Instruction>,
        num_inputs: usize,
        threads: usize,
    ) -> Result<FleetReport, Error> {
        // Build the job stream. With a seed, every job gets ChaCha8
        // random inputs (the eval fleet's seeded workload); without, all
        // jobs share the all-false vector (the CLI's workload).
        let shared_inputs = vec![false; num_inputs];
        let seeded_inputs: Vec<Vec<bool>> = match fs.input_seed {
            None => Vec::new(),
            Some(seed) => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                (0..fs.jobs)
                    .map(|_| (0..num_inputs).map(|_| rng.gen()).collect())
                    .collect()
            }
        };
        let jobs: Vec<Job<'_>> = (0..fs.jobs)
            .map(|i| {
                let program = if i % 2 == 0 { heavy } else { light };
                let inputs = if fs.input_seed.is_some() {
                    &seeded_inputs[i]
                } else {
                    &shared_inputs
                };
                Job::new(program, inputs)
            })
            .collect();
        let stream_writes: u64 = jobs.iter().map(Job::cost).sum();

        let mut config = FleetConfig::new(fs.arrays).with_policy(fs.dispatch);
        if let Some(budget) = fs.write_budget {
            config = config.with_write_budget(budget);
        }
        if let Some(chaos) = &fs.chaos {
            let devices = EnduranceModel::new(chaos.endurance_median, chaos.endurance_sigma);
            config = config.with_faults(FaultModel::new(
                devices,
                chaos.stuck_probability,
                chaos.fault_seed,
            ));
            if chaos.recovery {
                config = config.with_recovery(
                    RecoveryConfig::new()
                        .with_spares(chaos.spares)
                        .with_max_faults(chaos.max_faults),
                );
            }
        }
        let mut fleet = Fleet::new(config);
        let start = Instant::now();
        if fs.simd {
            fleet.run_batch_simd(&jobs, threads)?;
        } else {
            fleet.run_batch(&jobs, threads)?;
        }
        let seconds = start.elapsed().as_secs_f64();

        let stats = fleet.stats();
        let cost = heavy.total_writes().max(light.total_writes());
        let fault = fs.chaos.as_ref().map(|chaos| {
            let log = fleet.fault_log();
            FaultSummary {
                seed: chaos.fault_seed,
                endurance_median: chaos.endurance_median,
                endurance_sigma: chaos.endurance_sigma,
                stuck_probability: chaos.stuck_probability,
                recovery: chaos.recovery,
                faults: log.total_faults(),
                worn: log.worn(),
                stuck: log.stuck(),
                remaps: log.remaps(),
                retirements: log.retirements(),
                broken_cells: (0..fs.arrays)
                    .map(|i| fleet.broken_cells(i).len() as u64)
                    .sum(),
                events: log.events().map(|e| e.to_string()).collect(),
            }
        });
        Ok(FleetReport {
            arrays: fs.arrays,
            dispatch: fs.dispatch.label(),
            simd: fs.simd,
            jobs: fs.jobs,
            heavy_instructions: heavy.num_instructions(),
            light_instructions: light.num_instructions(),
            stream_writes,
            per_array: fleet.array_stats(),
            wear: stats.wear,
            retired: stats.retired,
            remaining_jobs: fleet.remaining_jobs(cost),
            first_retirement_horizon: fleet.first_retirement_horizon(cost),
            fault,
            seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlim_compiler::compile;
    use rlim_plim::DispatchPolicy;

    #[test]
    fn report_matches_direct_compilation() {
        let options = CompileOptions::endurance_aware().with_effort(1);
        let spec = JobSpec::benchmark(Benchmark::Int2float).with_options(options);
        let report = Service::new().run(&spec).unwrap();
        let direct = compile(&Benchmark::Int2float.build(), &options);
        assert_eq!(report.instructions, direct.num_instructions());
        assert_eq!(report.rrams, direct.num_rrams());
        assert_eq!(report.writes, direct.write_stats());
        assert_eq!(report.total_writes, direct.total_writes());
        assert_eq!(report.label, "int2float");
        assert_eq!(report.backend, "rm3");
        assert_eq!(report.circuit.inputs, 11);
        assert_eq!(report.circuit.outputs, 7);
        assert!(report.lifetime.single_array_runs > 0);
        assert!(report.lifetime.fleet_runs >= report.lifetime.single_array_runs);
        assert!(report.program.is_none());
        assert!(report.fleet.is_none());
    }

    #[test]
    fn program_listing_is_the_parseable_assembly() {
        let spec = JobSpec::benchmark(Benchmark::Ctrl)
            .with_options(CompileOptions::naive())
            .with_program_text(true);
        let report = Service::new().run(&spec).unwrap();
        let text = report.program.expect("listing requested");
        let parsed = asm::parse_text(&text).expect("listing parses back");
        assert_eq!(parsed.num_instructions(), report.instructions);
    }

    #[test]
    fn imp_backend_reports_through_the_same_surface() {
        let spec = JobSpec::benchmark(Benchmark::Int2float)
            .with_options(CompileOptions::naive())
            .with_backend(BackendKind::Imp)
            .with_program_text(true);
        let report = Service::new().run(&spec).unwrap();
        assert_eq!(report.backend, "imp");
        assert!(report.instructions > 0);
        assert!(report.program.unwrap().contains("IMPLY"));
    }

    #[test]
    fn blif_sources_load_and_missing_files_error() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rlim-service-test-{}.blif", std::process::id()));
        std::fs::write(&path, ".inputs a b\n.outputs f\n.names a b f\n11 1\n").unwrap();
        let spec = JobSpec::blif_path(&path).with_options(CompileOptions::naive());
        let report = Service::new().run(&spec).unwrap();
        assert_eq!(report.circuit.inputs, 2);
        std::fs::remove_file(&path).unwrap();

        let err = Service::new()
            .run(&JobSpec::blif_path("/nonexistent/x.blif"))
            .unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{err:?}");

        let bad = dir.join(format!("rlim-service-bad-{}.blif", std::process::id()));
        std::fs::write(&bad, ".inputs a\n.outputs f\n.latch a f\n").unwrap();
        let err = Service::new().run(&JobSpec::blif_path(&bad)).unwrap_err();
        assert!(matches!(err, Error::Blif { .. }), "{err:?}");
        std::fs::remove_file(&bad).unwrap();
    }

    #[test]
    fn fleet_rider_reports_wear_and_budget() {
        let spec = JobSpec::benchmark(Benchmark::Ctrl)
            .with_options(CompileOptions::endurance_aware().with_effort(1))
            .with_fleet(
                FleetSpec::new(2)
                    .with_jobs(8)
                    .with_dispatch(DispatchPolicy::LeastWorn)
                    .with_write_budget(2000),
            );
        let report = Service::new().run(&spec).unwrap();
        let fleet = report.fleet.expect("fleet rider");
        assert_eq!(fleet.arrays, 2);
        assert_eq!(fleet.per_array.len(), 2);
        assert_eq!(fleet.jobs, 8);
        assert_eq!(
            fleet.per_array.iter().map(|a| a.jobs).sum::<u64>(),
            8,
            "every job dispatched"
        );
        assert!(fleet.remaining_jobs.is_some());
        assert!(fleet.first_retirement_horizon.is_some());
        assert_eq!(
            fleet.stream_writes,
            fleet.per_array.iter().map(|a| a.writes).sum::<u64>()
        );
    }

    #[test]
    fn chaos_fleet_reports_faults_and_recovers() {
        let chaos = ChaosSpec::new(7)
            .with_endurance_median(160.0)
            .with_endurance_sigma(0.3)
            .with_stuck_probability(0.02);
        let spec = JobSpec::benchmark(Benchmark::Ctrl)
            .with_options(CompileOptions::endurance_aware().with_effort(1))
            .with_fleet(FleetSpec::new(4).with_jobs(24).with_chaos(chaos));
        let report = Service::new().run(&spec).unwrap();
        let fleet = report.fleet.as_ref().expect("fleet rider");
        let fault = fleet.fault.as_ref().expect("chaos records a fault summary");
        assert_eq!(fault.seed, 7);
        assert!(fault.recovery);
        assert!(fault.faults > 0, "median-48 devices fault under 24 jobs");
        assert_eq!(fault.faults, fault.worn + fault.stuck);
        assert_eq!(fault.remaps + fault.retirements, fault.faults);
        assert_eq!(fault.events.len() as u64, fault.faults);
        assert_eq!(
            fleet.per_array.iter().map(|a| a.jobs).sum::<u64>(),
            24,
            "recovery completes the whole workload"
        );
        // Chaos runs are deterministic: the serialized report is stable.
        let again = Service::new().run(&spec).unwrap();
        assert_eq!(report.to_json_string(), again.to_json_string());
    }

    #[test]
    fn chaos_without_recovery_surfaces_the_fault_error() {
        let chaos = ChaosSpec::new(7)
            .with_endurance_median(160.0)
            .with_endurance_sigma(0.3)
            .with_stuck_probability(0.02)
            .with_recovery(false);
        let spec = JobSpec::benchmark(Benchmark::Ctrl)
            .with_options(CompileOptions::endurance_aware().with_effort(1))
            .with_fleet(FleetSpec::new(4).with_jobs(24).with_chaos(chaos));
        let err = Service::new().run(&spec).unwrap_err();
        assert!(matches!(err, Error::Fleet(_)), "{err:?}");
    }

    #[test]
    fn chaos_with_simd_is_rejected() {
        let spec = JobSpec::benchmark(Benchmark::Ctrl).with_fleet(
            FleetSpec::new(2)
                .with_simd(true)
                .with_chaos(ChaosSpec::new(1)),
        );
        let err = Service::new().run(&spec).unwrap_err();
        assert!(err.is_usage(), "{err:?}");
    }

    #[test]
    fn fleet_on_imp_backend_is_rejected() {
        let spec = JobSpec::benchmark(Benchmark::Ctrl)
            .with_backend(BackendKind::Imp)
            .with_fleet(FleetSpec::new(2));
        let err = Service::new().run(&spec).unwrap_err();
        assert!(err.is_usage(), "{err:?}");
    }

    #[test]
    fn exhausted_fleet_surfaces_the_typed_error() {
        let spec = JobSpec::benchmark(Benchmark::Ctrl)
            .with_options(CompileOptions::naive())
            .with_fleet(FleetSpec::new(1).with_jobs(4).with_write_budget(10));
        let err = Service::new().run(&spec).unwrap_err();
        assert!(matches!(err, Error::Fleet(_)), "{err:?}");
    }

    #[test]
    fn batch_reports_come_back_in_spec_order() {
        let specs = vec![
            JobSpec::benchmark(Benchmark::Ctrl).with_options(CompileOptions::naive()),
            JobSpec::benchmark(Benchmark::Int2float).with_options(CompileOptions::naive()),
            JobSpec::benchmark(Benchmark::Ctrl)
                .with_options(CompileOptions::endurance_aware().with_effort(1)),
        ];
        let reports = Service::new().run_batch(&specs).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].label, "ctrl");
        assert_eq!(reports[1].label, "int2float");
        assert_eq!(reports[2].label, "ctrl");
        assert_ne!(reports[0].instructions, reports[2].instructions);
    }

    #[test]
    fn shared_mig_sweep_compiles_each_option_set_once() {
        let mig = Arc::new(Benchmark::Int2float.build());
        let specs: Vec<JobSpec> = [3u64, 4, 5]
            .iter()
            .map(|&w| {
                JobSpec::shared_mig(Arc::clone(&mig))
                    .with_options(CompileOptions::naive().with_max_writes(w))
            })
            .collect();
        let reports = Service::new().run_batch(&specs).unwrap();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.writes.max <= r.options.max_writes.unwrap());
        }
    }
}
