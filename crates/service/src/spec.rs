//! The typed job description: what to compile, through which backend,
//! with which options — and optionally which fleet workload to run.
//!
//! A [`JobSpec`] is built with a fluent builder and submitted to
//! [`crate::Service`]; every consumer of the toolchain (the CLI, the
//! evaluation binaries, the bench runner, library users) describes work
//! in this one vocabulary instead of hand-assembling compiler calls.

use std::path::PathBuf;
use std::sync::Arc;

use rlim_benchmarks::Benchmark;
use rlim_compiler::CompileOptions;
use rlim_mig::Mig;
use rlim_plim::DispatchPolicy;

/// Where the circuit comes from.
#[derive(Debug, Clone)]
pub enum Source {
    /// A named benchmark of the paper's 18-circuit suite.
    Benchmark(Benchmark),
    /// A BLIF netlist on disk, read and parsed by the service.
    BlifPath(PathBuf),
    /// An in-memory graph. Shared by `Arc` so one graph can back many
    /// specs (a parameter sweep) without cloning.
    Mig(Arc<Mig>),
}

impl PartialEq for Source {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Source::Benchmark(a), Source::Benchmark(b)) => a == b,
            (Source::BlifPath(a), Source::BlifPath(b)) => a == b,
            // In-memory graphs compare by identity: two specs are "the
            // same job" only when they share the same graph.
            (Source::Mig(a), Source::Mig(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Source {
    /// A short human-readable label: the benchmark name, the path, or
    /// `<mig>` for in-memory graphs.
    pub fn label(&self) -> String {
        match self {
            Source::Benchmark(b) => b.name().to_string(),
            Source::BlifPath(p) => p.display().to_string(),
            Source::Mig(_) => "<mig>".to_string(),
        }
    }
}

/// Which compile-and-execute flow serves the job.
///
/// This is the runtime-selectable face of the compiler's static
/// `Backend` trait: a `JobSpec` travels through channels (argv, batch
/// files) where a generic parameter cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The PLiM/RM3 flow through the standard pass pipeline (default).
    #[default]
    Rm3,
    /// The same RM3 programs, self-hosted in the crossbar and driven by
    /// the controller FSM.
    HostedRm3,
    /// The same RM3 programs, executed bit-parallel on the word-level
    /// machine (64 lanes per instruction, identical wear accounting).
    WideRm3,
    /// The material-implication (IMPLY) baseline.
    Imp,
}

impl BackendKind {
    /// The stable name used in reports and on the command line.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Rm3 => "rm3",
            BackendKind::HostedRm3 => "hosted-rm3",
            BackendKind::WideRm3 => "rm3-wide",
            BackendKind::Imp => "imp",
        }
    }

    /// Every backend kind, in display order.
    pub fn all() -> &'static [BackendKind] {
        &[
            BackendKind::Rm3,
            BackendKind::HostedRm3,
            BackendKind::WideRm3,
            BackendKind::Imp,
        ]
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rm3" => Ok(BackendKind::Rm3),
            "hosted-rm3" => Ok(BackendKind::HostedRm3),
            "rm3-wide" => Ok(BackendKind::WideRm3),
            "imp" => Ok(BackendKind::Imp),
            other => Err(format!(
                "unknown backend `{other}` (rm3 | hosted-rm3 | rm3-wide | imp)"
            )),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Chaos-mode parameters for a fleet workload: a device fault model
/// (per-cell endurance variability plus stuck-at faults, all derived
/// from one seed) and the online recovery policy that absorbs the
/// resulting write faults.
///
/// With `recovery` on (the default) the fleet remaps broken cells to
/// spare rows and retires arrays whose fault count crosses the
/// watchdog threshold; with it off, the first detected fault aborts the
/// workload — the naive baseline chaos mode exists to beat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// Master fault seed; per-array models derive deterministically.
    pub fault_seed: u64,
    /// Median per-cell endurance (writes before wear-out).
    pub endurance_median: f64,
    /// Log-normal endurance spread (`0.0` = every cell at the median).
    pub endurance_sigma: f64,
    /// Per-cell probability of carrying a latent stuck-at fault.
    pub stuck_probability: f64,
    /// Whether the fleet recovers online (remap + watchdog) instead of
    /// aborting on the first detected fault.
    pub recovery: bool,
    /// Spare rows available per array for remapping.
    pub spares: usize,
    /// Watchdog threshold: faults an array absorbs before retirement.
    pub max_faults: u64,
}

impl ChaosSpec {
    /// Chaos parameters for `fault_seed` with the standard demo device:
    /// median endurance 4096 writes, σ = 0.25, 1% stuck-at probability,
    /// recovery on with 8 spares and a 64-fault watchdog.
    pub fn new(fault_seed: u64) -> Self {
        ChaosSpec {
            fault_seed,
            endurance_median: 4096.0,
            endurance_sigma: 0.25,
            stuck_probability: 0.01,
            recovery: true,
            spares: 8,
            max_faults: 64,
        }
    }

    /// Sets the median per-cell endurance.
    pub fn with_endurance_median(mut self, median: f64) -> Self {
        self.endurance_median = median;
        self
    }

    /// Sets the log-normal endurance spread.
    pub fn with_endurance_sigma(mut self, sigma: f64) -> Self {
        self.endurance_sigma = sigma;
        self
    }

    /// Sets the per-cell stuck-at fault probability.
    pub fn with_stuck_probability(mut self, probability: f64) -> Self {
        self.stuck_probability = probability;
        self
    }

    /// Enables (or disables) online recovery.
    pub fn with_recovery(mut self, recovery: bool) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the per-array spare-row count.
    pub fn with_spares(mut self, spares: usize) -> Self {
        self.spares = spares;
        self
    }

    /// Sets the watchdog's fault-count retirement threshold.
    pub fn with_max_faults(mut self, max_faults: u64) -> Self {
        self.max_faults = max_faults;
        self
    }
}

/// A fleet workload rider: run the compiled program (as the *light*
/// preset) interleaved with a naive-compiled *heavy* twin on a
/// multi-crossbar fleet, and report per-array wear.
///
/// The workload is the standard heterogeneous stream the whole workspace
/// evaluates with: `jobs` executions alternating heavy/light (heavy
/// first). With [`FleetSpec::input_seed`] unset every job drives the
/// all-false input vector; with a seed, each job gets ChaCha8-seeded
/// random inputs — byte-reproducible for a given seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Number of crossbar arrays.
    pub arrays: usize,
    /// Number of jobs in the workload.
    pub jobs: usize,
    /// Dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Per-array total-write budget (the array-granular maximum write
    /// count strategy); `None` = unbounded.
    pub write_budget: Option<u64>,
    /// Seed for per-job random primary inputs; `None` drives all-false
    /// inputs on every job.
    pub input_seed: Option<u64>,
    /// Whether dispatch is SIMD-batched: same-program jobs on an array
    /// execute as one word-level pass of up to 64 lanes
    /// (`Fleet::run_batch_simd`), with identical dispatch, outputs and
    /// per-cell write counts.
    pub simd: bool,
    /// Chaos mode: inject device faults (and, unless disabled, recover
    /// from them online); `None` runs on ideal devices.
    pub chaos: Option<ChaosSpec>,
}

impl FleetSpec {
    /// A fleet of `arrays` crossbars with least-worn dispatch, no budget
    /// and all-false job inputs.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn new(arrays: usize) -> Self {
        assert!(arrays > 0, "a fleet needs at least one array");
        FleetSpec {
            arrays,
            jobs: 24,
            dispatch: DispatchPolicy::LeastWorn,
            write_budget: None,
            input_seed: None,
            simd: false,
            chaos: None,
        }
    }

    /// Sets the job count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the dispatch policy.
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Sets the per-array write budget.
    pub fn with_write_budget(mut self, budget: u64) -> Self {
        self.write_budget = Some(budget);
        self
    }

    /// Seeds per-job random primary inputs.
    pub fn with_input_seed(mut self, seed: u64) -> Self {
        self.input_seed = Some(seed);
        self
    }

    /// Enables (or disables) SIMD-batched dispatch.
    pub fn with_simd(mut self, simd: bool) -> Self {
        self.simd = simd;
        self
    }

    /// Enables chaos mode: the fleet's devices follow `chaos`'s fault
    /// model, and (unless `chaos.recovery` is off) the fleet recovers
    /// online from the faults it detects.
    pub fn with_chaos(mut self, chaos: ChaosSpec) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// Default array count used for the fleet-lifetime projection in every
/// [`crate::Report`].
pub const DEFAULT_PROJECTION_ARRAYS: usize = 4;

/// One typed request to the service: a circuit source, a backend, the
/// compiler configuration, and optional riders (program listing, fleet
/// workload, lifetime-projection fleet size).
///
/// # Examples
///
/// ```
/// use rlim_benchmarks::Benchmark;
/// use rlim_compiler::CompileOptions;
/// use rlim_service::{BackendKind, JobSpec};
///
/// let spec = JobSpec::benchmark(Benchmark::Int2float)
///     .with_options(CompileOptions::endurance_aware().with_effort(2))
///     .with_backend(BackendKind::Rm3);
/// assert_eq!(spec.label(), "int2float");
/// assert_eq!(spec.options().effort, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    source: Source,
    backend: BackendKind,
    options: CompileOptions,
    fleet: Option<FleetSpec>,
    include_program: bool,
    projection_arrays: usize,
}

impl JobSpec {
    fn new(source: Source) -> Self {
        JobSpec {
            source,
            backend: BackendKind::Rm3,
            options: CompileOptions::endurance_aware(),
            fleet: None,
            include_program: false,
            projection_arrays: DEFAULT_PROJECTION_ARRAYS,
        }
    }

    /// A job over a named benchmark of the suite.
    pub fn benchmark(benchmark: Benchmark) -> Self {
        JobSpec::new(Source::Benchmark(benchmark))
    }

    /// A job over a benchmark looked up by name — the entry point for
    /// clients that receive names over a wire (argv, request bodies).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::UnknownBenchmark`] when `name` is not in the
    /// suite.
    pub fn named_benchmark(name: &str) -> Result<Self, crate::Error> {
        name.parse::<Benchmark>()
            .map(JobSpec::benchmark)
            .map_err(|_| crate::Error::UnknownBenchmark(name.to_string()))
    }

    /// A job over a BLIF netlist on disk.
    pub fn blif_path(path: impl Into<PathBuf>) -> Self {
        JobSpec::new(Source::BlifPath(path.into()))
    }

    /// A job over an in-memory graph.
    pub fn mig(mig: Mig) -> Self {
        JobSpec::new(Source::Mig(Arc::new(mig)))
    }

    /// A job over a shared in-memory graph; specs sharing one `Arc`
    /// compile the graph once per distinct option set.
    pub fn shared_mig(mig: Arc<Mig>) -> Self {
        JobSpec::new(Source::Mig(mig))
    }

    /// Selects the backend (default: [`BackendKind::Rm3`]).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the full compiler configuration (default:
    /// [`CompileOptions::endurance_aware`]).
    pub fn with_options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a fleet workload rider.
    pub fn with_fleet(mut self, fleet: FleetSpec) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Requests the program listing in the report (the parseable `.plim`
    /// assembly for RM3 backends, the disassembly for IMPLY).
    pub fn with_program_text(mut self, include: bool) -> Self {
        self.include_program = include;
        self
    }

    /// Sets the fleet size assumed by the report's lifetime projection
    /// (default [`DEFAULT_PROJECTION_ARRAYS`]).
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn with_projection_arrays(mut self, arrays: usize) -> Self {
        assert!(arrays > 0, "a lifetime projection needs at least one array");
        self.projection_arrays = arrays;
        self
    }

    /// The circuit source.
    pub fn source(&self) -> &Source {
        &self.source
    }

    /// The selected backend.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The compiler configuration.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// The fleet rider, if any.
    pub fn fleet(&self) -> Option<&FleetSpec> {
        self.fleet.as_ref()
    }

    /// Whether the report will carry the program listing.
    pub fn includes_program(&self) -> bool {
        self.include_program
    }

    /// The lifetime projection's fleet size.
    pub fn projection_arrays(&self) -> usize {
        self.projection_arrays
    }

    /// The source's human-readable label (used as the report label).
    pub fn label(&self) -> String {
        self.source.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let spec = JobSpec::benchmark(Benchmark::Ctrl);
        assert_eq!(spec.backend(), BackendKind::Rm3);
        assert_eq!(spec.options(), &CompileOptions::endurance_aware());
        assert!(spec.fleet().is_none());
        assert!(!spec.includes_program());
        assert_eq!(spec.projection_arrays(), DEFAULT_PROJECTION_ARRAYS);
    }

    #[test]
    fn sources_compare_by_value_or_identity() {
        assert_eq!(
            JobSpec::benchmark(Benchmark::Div),
            JobSpec::benchmark(Benchmark::Div)
        );
        assert_ne!(
            JobSpec::benchmark(Benchmark::Div),
            JobSpec::benchmark(Benchmark::Ctrl)
        );
        assert_eq!(JobSpec::blif_path("a.blif"), JobSpec::blif_path("a.blif"));
        let mig = Arc::new(Mig::new(1));
        assert_eq!(
            JobSpec::shared_mig(Arc::clone(&mig)),
            JobSpec::shared_mig(Arc::clone(&mig))
        );
        // Distinct graphs are distinct jobs even if structurally equal.
        assert_ne!(JobSpec::mig(Mig::new(1)), JobSpec::mig(Mig::new(1)));
    }

    #[test]
    fn named_benchmark_lookup() {
        let spec = JobSpec::named_benchmark("ctrl").unwrap();
        assert_eq!(spec, JobSpec::benchmark(Benchmark::Ctrl));
        let err = JobSpec::named_benchmark("nonesuch").unwrap_err();
        assert_eq!(err, crate::Error::UnknownBenchmark("nonesuch".into()));
        assert!(err.is_usage());
    }

    #[test]
    fn backend_names_roundtrip() {
        for &k in BackendKind::all() {
            assert_eq!(k.name().parse::<BackendKind>().unwrap(), k);
        }
        assert!("nonesuch".parse::<BackendKind>().is_err());
    }

    #[test]
    fn fleet_spec_builder() {
        let f = FleetSpec::new(4)
            .with_jobs(10)
            .with_dispatch(DispatchPolicy::RoundRobin)
            .with_write_budget(500)
            .with_input_seed(7);
        assert_eq!(f.arrays, 4);
        assert_eq!(f.jobs, 10);
        assert_eq!(f.dispatch, DispatchPolicy::RoundRobin);
        assert_eq!(f.write_budget, Some(500));
        assert_eq!(f.input_seed, Some(7));
        assert!(f.chaos.is_none());
    }

    #[test]
    fn chaos_spec_builder() {
        let c = ChaosSpec::new(7)
            .with_endurance_median(512.0)
            .with_endurance_sigma(0.4)
            .with_stuck_probability(0.05)
            .with_spares(3)
            .with_max_faults(10);
        assert_eq!(c.fault_seed, 7);
        assert_eq!(c.endurance_median, 512.0);
        assert_eq!(c.endurance_sigma, 0.4);
        assert_eq!(c.stuck_probability, 0.05);
        assert!(c.recovery);
        assert_eq!(c.spares, 3);
        assert_eq!(c.max_faults, 10);
        let naive = c.with_recovery(false);
        assert!(!naive.recovery);
        let f = FleetSpec::new(2).with_chaos(c);
        assert_eq!(f.chaos, Some(c));
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn zero_array_fleet_rejected() {
        let _ = FleetSpec::new(0);
    }
}
