//! Seeded random MIG generation.
//!
//! Used for property testing and, in `rlim-benchmarks`, as the structural
//! stand-in for the random-control circuits of the EPFL suite (`cavlc`,
//! `ctrl`, `i2c`, `mem_ctrl`, `router`, …) whose sources are not available
//! offline. Generation is layered: gates in layer *k* draw children mostly
//! from nearby earlier layers, which produces the fanout-level spreads and
//! complemented-edge densities that drive the paper's write-traffic effects.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::mig::Mig;
use crate::signal::Signal;

/// Shape parameters for [`generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomMigConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Target number of majority gates (the result may be slightly smaller
    /// because Ω.M simplification can collapse candidates).
    pub gates: usize,
    /// Probability that a chosen child edge is complemented.
    pub complement_prob: f64,
    /// Probability that a child is drawn from the whole history instead of
    /// the recent window; higher values create long edges and the "blocked
    /// RRAM" effect of paper Fig. 2.
    pub long_edge_prob: f64,
    /// Size of the recent window children are preferentially drawn from.
    pub window: usize,
    /// Probability that a gate uses a constant child (making it an AND/OR
    /// style gate).
    pub constant_prob: f64,
}

impl Default for RandomMigConfig {
    fn default() -> Self {
        RandomMigConfig {
            inputs: 8,
            outputs: 8,
            gates: 100,
            complement_prob: 0.3,
            long_edge_prob: 0.15,
            window: 24,
            constant_prob: 0.25,
        }
    }
}

/// Generates a random layered MIG. Deterministic in `(config, seed)`.
///
/// # Examples
///
/// ```
/// use rlim_mig::random::{generate, RandomMigConfig};
///
/// let cfg = RandomMigConfig { inputs: 6, outputs: 4, gates: 50, ..Default::default() };
/// let mig = generate(&cfg, 42);
/// assert_eq!(mig.num_inputs(), 6);
/// assert_eq!(mig.num_outputs(), 4);
/// let again = generate(&cfg, 42);
/// assert_eq!(mig.num_gates(), again.num_gates());
/// ```
pub fn generate(config: &RandomMigConfig, seed: u64) -> Mig {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut mig = Mig::new(config.inputs);
    let mut pool: Vec<Signal> = mig.inputs().collect();
    let mut attempts = 0usize;
    let max_attempts = config.gates * 8 + 64;

    while mig.num_gates() < config.gates && attempts < max_attempts {
        attempts += 1;
        let pick = |rng: &mut ChaCha8Rng, pool: &[Signal]| -> Signal {
            let s = if rng.gen_bool(config.long_edge_prob) || pool.len() <= config.window {
                pool[rng.gen_range(0..pool.len())]
            } else {
                let lo = pool.len() - config.window;
                pool[rng.gen_range(lo..pool.len())]
            };
            s.complement_if(rng.gen_bool(config.complement_prob))
        };
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let c = if rng.gen_bool(config.constant_prob) {
            Signal::constant(rng.gen_bool(0.5))
        } else {
            pick(&mut rng, &pool)
        };
        let before = mig.num_gates();
        let g = mig.add_maj(a, b, c);
        if mig.num_gates() > before {
            pool.push(g);
        }
    }

    // Outputs from the deepest region so most of the graph stays live.
    let tail = pool.len().saturating_sub(config.outputs.max(config.window));
    for i in 0..config.outputs {
        let idx = if pool.is_empty() {
            0
        } else {
            rng.gen_range(tail.min(pool.len() - 1)..pool.len())
        };
        let s = if pool.is_empty() {
            Signal::FALSE
        } else {
            pool[idx]
        };
        let _ = i;
        mig.add_output(s.complement_if(rng.gen_bool(config.complement_prob)));
    }
    mig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_interface() {
        let cfg = RandomMigConfig {
            inputs: 12,
            outputs: 7,
            gates: 200,
            ..Default::default()
        };
        let mig = generate(&cfg, 1);
        assert_eq!(mig.num_inputs(), 12);
        assert_eq!(mig.num_outputs(), 7);
        assert!(mig.num_gates() > 100, "should get close to target");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomMigConfig::default();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a.num_gates(), b.num_gates());
        assert_eq!(a.outputs(), b.outputs());
        let c = generate(&cfg, 8);
        // Different seed virtually always differs structurally.
        assert!(a.num_gates() != c.num_gates() || a.outputs() != c.outputs());
    }

    #[test]
    fn long_edges_affect_level_spread() {
        let base = RandomMigConfig {
            inputs: 16,
            outputs: 8,
            gates: 600,
            long_edge_prob: 0.0,
            ..Default::default()
        };
        let long = RandomMigConfig {
            long_edge_prob: 0.6,
            ..base.clone()
        };
        let a = generate(&base, 3);
        let b = generate(&long, 3);
        // More long edges → shallower graph for the same gate count.
        assert!(b.depth() <= a.depth());
    }

    #[test]
    fn zero_gate_config_is_valid() {
        let cfg = RandomMigConfig {
            inputs: 3,
            outputs: 2,
            gates: 0,
            ..Default::default()
        };
        let mig = generate(&cfg, 0);
        assert_eq!(mig.num_gates(), 0);
        assert_eq!(mig.num_outputs(), 2);
    }
}
