//! BLIF (Berkeley Logic Interchange Format) import/export.
//!
//! The EPFL benchmark suite the paper evaluates on is distributed as BLIF
//! netlists; this module lets users bring those (or their own circuits)
//! into the flow and dump MIGs back out for other tools.
//!
//! Supported subset (combinational BLIF):
//!
//! * `.model`, `.inputs`, `.outputs`, `.names`, `.end`;
//! * `\` line continuations and `#` comments;
//! * single-output covers with `0`/`1`/`-` input literals and output
//!   polarity `1` (on-set) or `0` (off-set, complemented on read);
//! * constant covers (empty cube list = constant 0; a cover with no input
//!   columns and output `1` = constant 1).
//!
//! Sequential directives (`.latch`, `.subckt`, …) are rejected with a
//! descriptive error.
//!
//! On import, every `.names` cover is synthesised as a sum-of-products
//! over balanced AND/OR trees of majority gates; structural hashing and
//! Ω.M simplification apply as always, and the paper's rewriting passes
//! can then optimise the result.

use std::collections::HashMap;
use std::fmt;

use crate::mig::Mig;
use crate::signal::Signal;

/// Error from [`parse_blif`], with the 1-based (logical) source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlifError {
    /// 1-based line number (of the first physical line after continuation
    /// folding).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseBlifError {}

/// Writes an MIG as a BLIF netlist.
///
/// Majority gates are emitted as 3-input `.names` with the 4-cube
/// majority on-set; complemented edges are folded into the cover
/// literals, and complemented or constant outputs get buffer/constant
/// covers.
///
/// # Examples
///
/// ```
/// use rlim_mig::{blif, Mig};
///
/// let mut mig = Mig::new(2);
/// let (a, b) = (mig.input(0), mig.input(1));
/// let g = mig.and(a, b);
/// mig.add_output(g);
/// let text = blif::write_blif(&mig, "and2");
/// let back = blif::parse_blif(&text)?;
/// assert!(rlim_mig::equiv_random(&mig, &back, 8, 1).is_equal());
/// # Ok::<(), blif::ParseBlifError>(())
/// ```
pub fn write_blif(mig: &Mig, model: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {model}\n"));

    out.push_str(".inputs");
    for i in 0..mig.num_inputs() {
        out.push_str(&format!(" x{i}"));
    }
    out.push('\n');

    out.push_str(".outputs");
    for o in 0..mig.num_outputs() {
        out.push_str(&format!(" y{o}"));
    }
    out.push('\n');

    // Constant driver, if anything references it.
    let live = mig.live_mask();
    let uses_constant = mig
        .gates()
        .filter(|&g| live[g.index()])
        .flat_map(|g| mig.children(g))
        .chain(mig.outputs().iter().copied())
        .any(|s| s.is_constant());
    if uses_constant {
        // n0 = constant 0 (empty cover).
        out.push_str(".names n0\n");
    }

    let signal_name = |s: Signal| -> (String, bool) {
        // (wire name of the node, complemented?)
        if s.is_constant() {
            ("n0".into(), s.constant_value().expect("constant"))
        } else if !mig.is_gate(s.node()) {
            (format!("x{}", s.node().index() - 1), s.is_complement())
        } else {
            (format!("n{}", s.node().index()), s.is_complement())
        }
    };

    for g in mig.gates() {
        if !live[g.index()] {
            continue;
        }
        let ch = mig.children(g);
        let named: Vec<(String, bool)> = ch.iter().map(|&s| signal_name(s)).collect();
        out.push_str(&format!(
            ".names {} {} {} n{}\n",
            named[0].0,
            named[1].0,
            named[2].0,
            g.index()
        ));
        // Majority on-set: at least two of three true, with per-column
        // polarity folding (a complemented edge flips its literal).
        for cube in [
            [true, true, false],
            [true, false, true],
            [false, true, true],
            [true, true, true],
        ] {
            for (bit, (_, compl)) in cube.iter().zip(&named) {
                out.push(if bit ^ compl { '1' } else { '0' });
            }
            out.push_str(" 1\n");
        }
    }

    for (o, &s) in mig.outputs().iter().enumerate() {
        let (name, compl) = signal_name(s);
        out.push_str(&format!(".names {name} y{o}\n"));
        if s.is_constant() {
            // n0 is constant 0: buffer gives 0, inverter gives 1.
            out.push_str(if compl { "0 1\n" } else { "1 1\n" });
        } else {
            out.push_str(if compl { "0 1\n" } else { "1 1\n" });
        }
    }

    out.push_str(".end\n");
    out
}

/// Parses a combinational BLIF netlist into an MIG.
///
/// # Errors
///
/// Returns [`ParseBlifError`] on unsupported directives, undeclared wires,
/// malformed covers, or missing sections.
pub fn parse_blif(text: &str) -> Result<Mig, ParseBlifError> {
    // Fold continuations and strip comments, remembering line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim_end();
        let (content, continues) = match line.strip_suffix('\\') {
            Some(head) => (head.trim_end(), true),
            None => (line, false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(content);
                if continues {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if continues {
                    pending = Some((i + 1, content.to_string()));
                } else if !content.trim().is_empty() {
                    logical.push((i + 1, content.to_string()));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        logical.push((start, acc));
    }

    // First pass: declarations and cover bodies.
    struct Cover {
        line: usize,
        inputs: Vec<String>,
        output: String,
        cubes: Vec<(String, char)>,
    }
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut covers: Vec<Cover> = Vec::new();
    let mut current: Option<Cover> = None;

    let err = |line: usize, message: String| ParseBlifError { line, message };

    for (line, content) in &logical {
        let line = *line;
        let mut tokens = content.split_whitespace();
        let head = match tokens.next() {
            Some(h) => h,
            None => continue,
        };
        if head.starts_with('.') {
            if let Some(c) = current.take() {
                covers.push(c);
            }
        }
        match head {
            ".model" => {} // name ignored
            ".inputs" => inputs.extend(tokens.map(String::from)),
            ".outputs" => outputs.extend(tokens.map(String::from)),
            ".names" => {
                let mut wires: Vec<String> = tokens.map(String::from).collect();
                let output = wires
                    .pop()
                    .ok_or_else(|| err(line, ".names needs at least an output wire".into()))?;
                current = Some(Cover {
                    line,
                    inputs: wires,
                    output,
                    cubes: Vec::new(),
                });
            }
            ".end" => {}
            other if other.starts_with('.') => {
                return Err(err(line, format!("unsupported directive `{other}`")));
            }
            _ => {
                // A cover row: `<literals> <value>` or just `<value>` for
                // zero-input covers.
                let cover = current
                    .as_mut()
                    .ok_or_else(|| err(line, "cover row outside .names".into()))?;
                let mut row: Vec<&str> = content.split_whitespace().collect();
                let value = row.pop().expect("non-empty row");
                if value.len() != 1 || !matches!(value, "0" | "1") {
                    return Err(err(line, format!("bad cover output `{value}`")));
                }
                let literals = match row.len() {
                    0 => String::new(),
                    1 => row[0].to_string(),
                    _ => return Err(err(line, "too many columns in cover row".into())),
                };
                if literals.len() != cover.inputs.len() {
                    return Err(err(
                        line,
                        format!(
                            "cube `{literals}` has {} literals for {} inputs",
                            literals.len(),
                            cover.inputs.len()
                        ),
                    ));
                }
                if literals.chars().any(|c| !matches!(c, '0' | '1' | '-')) {
                    return Err(err(line, format!("bad cube literals `{literals}`")));
                }
                cover
                    .cubes
                    .push((literals, value.chars().next().expect("len 1")));
            }
        }
    }
    if let Some(c) = current.take() {
        covers.push(c);
    }
    if inputs.is_empty() && covers.is_empty() {
        return Err(err(1, "no .inputs or .names found".into()));
    }

    // Second pass: build the MIG. Covers may reference wires defined later,
    // so resolve with a worklist over topological readiness.
    let mut mig = Mig::new(inputs.len());
    let mut wires: HashMap<String, Signal> = HashMap::new();
    for (i, name) in inputs.iter().enumerate() {
        if wires.insert(name.clone(), mig.input(i)).is_some() {
            return Err(err(1, format!("duplicate input `{name}`")));
        }
    }

    let mut remaining: Vec<Cover> = covers;
    loop {
        let before = remaining.len();
        let mut next_round = Vec::new();
        for cover in remaining {
            let ready = cover.inputs.iter().all(|w| wires.contains_key(w));
            if !ready {
                next_round.push(cover);
                continue;
            }
            let ins: Vec<Signal> = cover.inputs.iter().map(|w| wires[w]).collect();
            let signal =
                build_cover(&mut mig, &ins, &cover.cubes).map_err(|m| err(cover.line, m))?;
            if wires.insert(cover.output.clone(), signal).is_some() {
                return Err(err(
                    cover.line,
                    format!("wire `{}` driven twice", cover.output),
                ));
            }
        }
        if next_round.is_empty() {
            break;
        }
        if next_round.len() == before {
            let missing: Vec<&str> = next_round
                .iter()
                .flat_map(|c| c.inputs.iter())
                .filter(|w| !wires.contains_key(*w))
                .map(String::as_str)
                .collect();
            return Err(err(
                next_round[0].line,
                format!("combinational cycle or undriven wires: {missing:?}"),
            ));
        }
        remaining = next_round;
    }

    for name in &outputs {
        let s = wires
            .get(name)
            .copied()
            .ok_or_else(|| err(1, format!("output `{name}` is never driven")))?;
        mig.add_output(s);
    }
    Ok(mig)
}

/// Synthesises one single-output cover as AND/OR trees of majority gates.
fn build_cover(mig: &mut Mig, ins: &[Signal], cubes: &[(String, char)]) -> Result<Signal, String> {
    if cubes.is_empty() {
        return Ok(Signal::FALSE); // empty cover = constant 0
    }
    let polarity = cubes[0].1;
    if cubes.iter().any(|&(_, v)| v != polarity) {
        return Err("mixed on-set/off-set rows in one cover".into());
    }
    let mut terms: Vec<Signal> = Vec::with_capacity(cubes.len());
    for (literals, _) in cubes {
        let mut product = Signal::TRUE;
        for (ch, &input) in literals.chars().zip(ins) {
            let lit = match ch {
                '1' => input,
                '0' => !input,
                '-' => continue,
                _ => unreachable!("validated earlier"),
            };
            product = mig.and(product, lit);
        }
        terms.push(product);
    }
    // Balanced OR tree over the products.
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        for pair in terms.chunks(2) {
            next.push(if pair.len() == 2 {
                mig.or(pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        terms = next;
    }
    let sum = terms[0];
    Ok(if polarity == '1' { sum } else { !sum })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::equiv_random;

    #[test]
    fn parse_simple_and() {
        let text = ".model and2\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n";
        let mig = parse_blif(text).expect("parses");
        assert_eq!(mig.num_inputs(), 2);
        assert_eq!(mig.num_outputs(), 1);
        assert_eq!(mig.evaluate(&[true, true]), vec![true]);
        assert_eq!(mig.evaluate(&[true, false]), vec![false]);
    }

    #[test]
    fn parse_multi_cube_xor() {
        let text = ".inputs a b\n.outputs f\n.names a b f\n10 1\n01 1\n";
        let mig = parse_blif(text).expect("parses");
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(mig.evaluate(&[a, b]), vec![a ^ b], "a={a} b={b}");
        }
    }

    #[test]
    fn parse_off_set_cover() {
        // f is 0 exactly when a=1,b=1 → NAND.
        let text = ".inputs a b\n.outputs f\n.names a b f\n11 0\n";
        let mig = parse_blif(text).expect("parses");
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(mig.evaluate(&[a, b]), vec![!(a && b)]);
        }
    }

    #[test]
    fn parse_dont_cares_and_buffer() {
        let text = ".inputs a b c\n.outputs f g\n.names a b c f\n1-1 1\n.names a g\n1 1\n";
        let mig = parse_blif(text).expect("parses");
        assert_eq!(mig.evaluate(&[true, false, true]), vec![true, true]);
        assert_eq!(mig.evaluate(&[true, true, false]), vec![false, true]);
    }

    #[test]
    fn parse_constants() {
        let text = ".inputs a\n.outputs t f\n.names t\n 1\n.names f\n.end\n";
        let mig = parse_blif(text).expect("parses");
        assert_eq!(mig.evaluate(&[false]), vec![true, false]);
    }

    #[test]
    fn parse_continuation_and_comments() {
        let text =
            "# a comment\n.inputs a \\\n b\n.outputs f\n.names a b f # trailing\n11 1\n.end\n";
        let mig = parse_blif(text).expect("parses");
        assert_eq!(mig.num_inputs(), 2);
        assert_eq!(mig.evaluate(&[true, true]), vec![true]);
    }

    #[test]
    fn covers_in_any_order() {
        // g is defined after f references it.
        let text = ".inputs a b\n.outputs f\n.names g a f\n11 1\n.names a b g\n11 1\n";
        let mig = parse_blif(text).expect("parses");
        assert_eq!(mig.evaluate(&[true, true]), vec![true]);
        assert_eq!(mig.evaluate(&[true, false]), vec![false]);
    }

    #[test]
    fn rejects_latch() {
        let text = ".inputs a\n.outputs f\n.latch a f re clk 0\n";
        let e = parse_blif(text).expect_err("latch unsupported");
        assert!(e.message.contains(".latch"), "{e}");
    }

    #[test]
    fn rejects_undriven_wire() {
        let text = ".inputs a\n.outputs f\n.names a ghost f\n11 1\n";
        let e = parse_blif(text).expect_err("ghost is undriven");
        assert!(e.message.contains("ghost"), "{e}");
    }

    #[test]
    fn rejects_cycle() {
        let text = ".inputs a\n.outputs f\n.names a g f\n11 1\n.names a f g\n11 1\n";
        let e = parse_blif(text).expect_err("combinational cycle");
        assert!(e.message.contains("cycle"), "{e}");
    }

    #[test]
    fn rejects_double_driver() {
        let text = ".inputs a b\n.outputs f\n.names a f\n1 1\n.names b f\n1 1\n";
        let e = parse_blif(text).expect_err("double driver");
        assert!(e.message.contains("driven twice"), "{e}");
    }

    #[test]
    fn rejects_mixed_polarity() {
        let text = ".inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n";
        let e = parse_blif(text).expect_err("mixed polarity");
        assert!(e.message.contains("mixed"), "{e}");
    }

    #[test]
    fn round_trip_random_graphs() {
        use crate::random::{generate, RandomMigConfig};
        let cfg = RandomMigConfig {
            inputs: 6,
            outputs: 5,
            gates: 60,
            ..Default::default()
        };
        for seed in 0..4 {
            let mig = generate(&cfg, seed);
            let text = write_blif(&mig, "roundtrip");
            let back = parse_blif(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(back.num_inputs(), mig.num_inputs());
            assert_eq!(back.num_outputs(), mig.num_outputs());
            assert!(
                equiv_random(&mig, &back, 16, seed ^ 0xB11F).is_equal(),
                "seed {seed} round trip changed the function"
            );
        }
    }

    #[test]
    fn round_trip_constant_and_complemented_outputs() {
        let mut mig = Mig::new(2);
        let (a, b) = (mig.input(0), mig.input(1));
        let g = mig.and(a, !b);
        mig.add_output(!g);
        mig.add_output(Signal::TRUE);
        mig.add_output(Signal::FALSE);
        mig.add_output(a);
        let text = write_blif(&mig, "edges");
        let back = parse_blif(&text).expect("parses");
        assert!(equiv_random(&mig, &back, 16, 7).is_equal());
    }
}
