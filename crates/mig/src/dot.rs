//! Graphviz (DOT) export for visual inspection of small MIGs.

use std::fmt::Write as _;

use crate::mig::{Mig, NodeKind};

/// Renders the graph in Graphviz DOT syntax. Complemented edges are drawn
/// dashed, mirroring the paper's figures.
///
/// # Examples
///
/// ```
/// use rlim_mig::{Mig, dot::to_dot};
///
/// let mut mig = Mig::new(2);
/// let a = mig.input(0);
/// let b = mig.input(1);
/// let g = mig.and(a, !b);
/// mig.add_output(g);
/// let dot = to_dot(&mig);
/// assert!(dot.contains("digraph mig"));
/// assert!(dot.contains("style=dashed"));
/// ```
pub fn to_dot(mig: &Mig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph mig {{");
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  node [shape=circle];");
    for n in mig.node_ids() {
        match mig.kind(n) {
            NodeKind::Constant => {
                let _ = writeln!(out, "  n0 [label=\"0\", shape=box];");
            }
            NodeKind::Input(i) => {
                let _ = writeln!(out, "  n{} [label=\"x{}\", shape=triangle];", n.index(), i);
            }
            NodeKind::Majority(ch) => {
                let _ = writeln!(out, "  n{} [label=\"M\"];", n.index());
                for s in ch {
                    let style = if s.is_complement() {
                        " [style=dashed]"
                    } else {
                        ""
                    };
                    let _ = writeln!(out, "  n{} -> n{}{};", s.node().index(), n.index(), style);
                }
            }
        }
    }
    for (i, s) in mig.outputs().iter().enumerate() {
        let _ = writeln!(out, "  po{i} [label=\"y{i}\", shape=invtriangle];");
        let style = if s.is_complement() {
            " [style=dashed]"
        } else {
            ""
        };
        let _ = writeln!(out, "  n{} -> po{i}{};", s.node().index(), style);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mig;

    #[test]
    fn contains_all_elements() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        let g = mig.add_maj(a, !b, crate::Signal::FALSE);
        mig.add_output(!g);
        let dot = to_dot(&mig);
        assert!(dot.starts_with("digraph mig {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("y0"));
        assert!(dot.contains("label=\"M\""));
        // Two dashed edges: one input edge, one output edge.
        assert_eq!(dot.matches("style=dashed").count(), 2);
    }

    #[test]
    fn empty_graph_renders() {
        let mig = Mig::new(1);
        let dot = to_dot(&mig);
        assert!(dot.contains("x0"));
    }
}
