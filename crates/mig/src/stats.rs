//! Structural MIG statistics used by the evaluation harness.

use crate::mig::{Mig, NodeKind};

/// Summary of the structural features that drive PLiM write traffic.
///
/// # Examples
///
/// ```
/// use rlim_mig::{Mig, stats::MigStats};
///
/// let mut mig = Mig::new(3);
/// let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
/// let g = mig.add_maj(a, !b, c);
/// mig.add_output(g);
/// let stats = MigStats::of(&mig);
/// assert_eq!(stats.gates, 1);
/// assert_eq!(stats.complement_histogram[1], 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MigStats {
    /// Number of majority gates.
    pub gates: usize,
    /// Number of live (output-reachable) gates.
    pub live_gates: usize,
    /// Graph depth (maximum output level).
    pub depth: u32,
    /// `complement_histogram[k]` = gates with exactly `k` complemented
    /// non-constant children, `k ∈ 0..=3`.
    pub complement_histogram: [usize; 4],
    /// Gates with a constant child (AND/OR-style gates).
    pub constant_child_gates: usize,
    /// Gates that have at least one single-fanout non-constant child —
    /// candidates for the free in-place RM3 destination.
    pub gates_with_single_fanout_child: usize,
    /// Mean over gates of (min fanout-target level − gate level); large
    /// values indicate long storage durations ("blocked RRAMs", paper
    /// Fig. 2).
    pub mean_fanout_wait: f64,
}

impl MigStats {
    /// Computes statistics for a graph.
    pub fn of(mig: &Mig) -> Self {
        let live = mig.live_mask();
        let levels = mig.levels();
        let fanout = mig.fanout_counts();
        let parents = mig.parents();

        let mut complement_histogram = [0usize; 4];
        let mut constant_child_gates = 0usize;
        let mut gates_with_single_fanout_child = 0usize;
        let mut wait_sum = 0f64;
        let mut wait_count = 0usize;

        for g in mig.gates() {
            if !live[g.index()] {
                continue;
            }
            let ch = match mig.kind(g) {
                NodeKind::Majority(ch) => ch,
                _ => unreachable!("gates() yields majority nodes"),
            };
            complement_histogram[mig.complemented_edge_count(g)] += 1;
            if ch.iter().any(|s| s.is_constant()) {
                constant_child_gates += 1;
            }
            if ch
                .iter()
                .any(|s| !s.is_constant() && fanout[s.node().index()] == 1)
            {
                gates_with_single_fanout_child += 1;
            }
            if let Some(min_parent_level) =
                parents[g.index()].iter().map(|p| levels[p.index()]).min()
            {
                wait_sum += (min_parent_level - levels[g.index()]) as f64;
                wait_count += 1;
            }
        }

        MigStats {
            gates: mig.num_gates(),
            live_gates: mig.num_live_gates(),
            depth: mig.depth(),
            complement_histogram,
            constant_child_gates,
            gates_with_single_fanout_child,
            mean_fanout_wait: if wait_count == 0 {
                0.0
            } else {
                wait_sum / wait_count as f64
            },
        }
    }

    /// Fraction of live gates in the "ideal" single-complemented-edge form
    /// that RM3 computes in one instruction.
    pub fn ideal_gate_fraction(&self) -> f64 {
        if self.live_gates == 0 {
            return 0.0;
        }
        self.complement_histogram[1] as f64 / self.live_gates as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mig;

    #[test]
    fn histogram_counts_polarities() {
        let mut mig = Mig::new(4);
        let s: Vec<_> = mig.inputs().collect();
        let g0 = mig.add_maj(s[0], s[1], s[2]); // 0 complements
        let g1 = mig.add_maj(!s[0], s[1], s[3]); // 1
        let g2 = mig.add_maj(!s[1], !s[2], s[3]); // 2
        let g3 = mig.add_maj(!g0, !g1, !g2); // 3
        mig.add_output(g3);
        let st = MigStats::of(&mig);
        assert_eq!(st.complement_histogram, [1, 1, 1, 1]);
        assert_eq!(st.live_gates, 4);
        assert!((st.ideal_gate_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dead_gates_excluded_from_histogram() {
        let mut mig = Mig::new(3);
        let s: Vec<_> = mig.inputs().collect();
        let live = mig.add_maj(s[0], s[1], s[2]);
        let _dead = mig.add_maj(!s[0], !s[1], !s[2]);
        mig.add_output(live);
        let st = MigStats::of(&mig);
        assert_eq!(st.gates, 2);
        assert_eq!(st.live_gates, 1);
        assert_eq!(st.complement_histogram, [1, 0, 0, 0]);
    }

    #[test]
    fn fanout_wait_measures_level_gap() {
        let mut mig = Mig::new(4);
        let s: Vec<_> = mig.inputs().collect();
        let g0 = mig.add_maj(s[0], s[1], s[2]); // level 1
        let g1 = mig.add_maj(g0, s[2], s[3]); // level 2, consumes g0 at gap 1
        let g2 = mig.add_maj(g1, s[0], s[1]); // level 3
        let g3 = mig.add_maj(g2, g0, s[3]); // level 4, consumes g0 at gap 3
        mig.add_output(g3);
        let st = MigStats::of(&mig);
        // g0 waits min(2,4)-1 = 1; g1 waits 1; g2 waits 1; g3 has no parents
        assert!((st.mean_fanout_wait - 1.0).abs() < 1e-12);
        // only g2 (child g1) and g3 (child g2) have a single-fanout child
        assert_eq!(st.gates_with_single_fanout_child, 2);
    }

    #[test]
    fn empty_graph_stats() {
        let mig = Mig::new(2);
        let st = MigStats::of(&mig);
        assert_eq!(st.gates, 0);
        assert_eq!(st.ideal_gate_fraction(), 0.0);
        assert_eq!(st.mean_fanout_wait, 0.0);
    }
}
