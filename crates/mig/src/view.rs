//! Structural views: levels, fanout, liveness and a CSR parent index,
//! computed together and reusable across graph rebuilds.
//!
//! The rewrite engine and the compiler's scheduler both need the same
//! derived structure — per-node levels, fanout counts, output-reachability
//! and a parent index. The original accessors on [`Mig`]
//! ([`Mig::levels`], [`Mig::fanout_counts`], [`Mig::live_mask`],
//! [`Mig::parents`]) each allocate fresh vectors per call, and
//! `parents()`'s `Vec<Vec<NodeId>>` costs one heap allocation per node.
//! [`StructuralView`] derives all four in two linear sweeps into flat,
//! reusable buffers; the parent index is CSR (offsets + one flat array)
//! and the live mask is a [`BitSet`].
//!
//! [`StructuralView::compute`] clears and refills an existing view, so the
//! ~50 rebuilds of a `rewrite()` call touch the allocator only while the
//! buffers grow toward the high-water mark.

use crate::mig::Mig;
use crate::signal::NodeId;

/// A packed bitset over node indices.
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all bits and resizes to `len` bits, keeping the allocation
    /// where possible.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Levels, fanout counts, live mask and CSR parent index of one graph,
/// derived together in two linear sweeps.
///
/// # Examples
///
/// ```
/// use rlim_mig::{Mig, StructuralView};
///
/// let mut mig = Mig::new(3);
/// let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
/// let m = mig.add_maj(a, b, c);
/// mig.add_output(m);
///
/// let view = StructuralView::of(&mig);
/// assert_eq!(view.level(m.node()), 1);
/// assert_eq!(view.fanout(a.node()), 1);
/// assert!(view.is_live(m.node()));
/// assert_eq!(view.parents_of(a.node()), [m.node()]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StructuralView {
    /// Per-node logic level (constants and inputs are 0).
    levels: Vec<u32>,
    /// Per-node fanout count, including primary-output references.
    fanout: Vec<u32>,
    /// Output-reachable nodes.
    live: BitSet,
    /// CSR offsets into `parents`: node `n`'s gate parents are
    /// `parents[offsets[n] .. offsets[n + 1]]`.
    offsets: Vec<u32>,
    /// Flat parent array, grouped by child node index.
    parents: Vec<NodeId>,
}

impl StructuralView {
    /// An empty view; fill it with [`StructuralView::compute`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the view of `mig` in fresh buffers.
    pub fn of(mig: &Mig) -> Self {
        let mut view = Self::new();
        view.compute(mig);
        view
    }

    /// Clears and refills this view from `mig`, reusing every buffer.
    pub fn compute(&mut self, mig: &Mig) {
        self.compute_impl(mig, true);
    }

    /// Like [`StructuralView::compute`] but derives only what the rewrite
    /// passes consume — fanout counts and liveness. Levels (three random
    /// reads per gate) and the CSR parent index (three random writes per
    /// gate) are skipped; [`StructuralView::level`] and
    /// [`StructuralView::parents_of`] must not be called on a view
    /// computed this way.
    pub fn compute_structure(&mut self, mig: &Mig) {
        self.compute_impl(mig, false);
    }

    fn compute_impl(&mut self, mig: &Mig, full: bool) {
        let n = mig.num_nodes();
        self.levels.clear();
        self.fanout.clear();
        self.fanout.resize(n, 0);
        self.live.reset(n);
        // offsets is used as a counting buffer first, then prefix-summed.
        self.offsets.clear();
        if full {
            self.levels.resize(n, 0);
            self.offsets.resize(n + 1, 0);
        }
        self.parents.clear();

        // Sweep 1 (forward): fanout counts (+ levels + parent counts).
        if full {
            for g in mig.gates() {
                let ch = mig.children(g);
                let mut level = 0;
                for s in ch {
                    let idx = s.node().index();
                    level = level.max(self.levels[idx]);
                    self.fanout[idx] += 1;
                    self.offsets[idx + 1] += 1;
                }
                self.levels[g.index()] = level + 1;
            }
        } else {
            for g in mig.gates() {
                for s in mig.children(g) {
                    self.fanout[s.node().index()] += 1;
                }
            }
        }
        for s in mig.outputs() {
            self.fanout[s.node().index()] += 1;
        }

        // Liveness: seed with the outputs, walk children backwards. Node
        // index order is topological, so one reverse sweep settles it.
        for s in mig.outputs() {
            self.live.set(s.node().index());
        }
        for idx in (mig.num_inputs() + 1..n).rev() {
            if self.live.get(idx) {
                for s in mig.children(NodeId::new(idx as u32)) {
                    self.live.set(s.node().index());
                }
            }
        }

        if !full {
            return;
        }

        // Prefix-sum the parent counts into CSR offsets.
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        let total = self.offsets[n] as usize;
        self.parents.resize(total, NodeId::CONST);

        // Sweep 2 (forward): scatter parents. `cursor` borrows the counting
        // trick: offsets[i] is bumped while filling, then shifted back.
        let mut cursor = std::mem::take(&mut self.offsets);
        for g in mig.gates() {
            for s in mig.children(g) {
                let idx = s.node().index();
                self.parents[cursor[idx] as usize] = g;
                cursor[idx] += 1;
            }
        }
        // cursor[i] now equals offsets[i + 1]; shift right to restore.
        for i in (1..=n).rev() {
            cursor[i] = cursor[i - 1];
        }
        cursor[0] = 0;
        self.offsets = cursor;
    }

    /// Logic level of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if the view was built with
    /// [`StructuralView::compute_structure`], which omits levels.
    #[inline]
    pub fn level(&self, n: NodeId) -> u32 {
        self.levels[n.index()]
    }

    /// Fanout count of node `n` (including primary-output references).
    #[inline]
    pub fn fanout(&self, n: NodeId) -> u32 {
        self.fanout[n.index()]
    }

    /// Whether node `n` is reachable from a primary output.
    #[inline]
    pub fn is_live(&self, n: NodeId) -> bool {
        self.live.get(n.index())
    }

    /// The live-node bitset.
    pub fn live_set(&self) -> &BitSet {
        &self.live
    }

    /// The gate parents of node `n` (excludes primary-output references,
    /// includes dead parents), in gate index order.
    ///
    /// # Panics
    ///
    /// Panics if the view was built with
    /// [`StructuralView::compute_structure`], which omits the parent index.
    #[inline]
    pub fn parents_of(&self, n: NodeId) -> &[NodeId] {
        assert!(
            !self.offsets.is_empty(),
            "view was computed without the parent index"
        );
        let lo = self.offsets[n.index()] as usize;
        let hi = self.offsets[n.index() + 1] as usize;
        &self.parents[lo..hi]
    }

    /// `(start, end)` bounds of node `n`'s parent slice — for callers that
    /// need to walk parents while mutating other state.
    ///
    /// # Panics
    ///
    /// Panics if the view was built with
    /// [`StructuralView::compute_structure`], which omits the parent index.
    #[inline]
    pub fn parent_bounds(&self, n: NodeId) -> (usize, usize) {
        assert!(
            !self.offsets.is_empty(),
            "view was computed without the parent index"
        );
        (
            self.offsets[n.index()] as usize,
            self.offsets[n.index() + 1] as usize,
        )
    }

    /// Parent at flat index `i` (see [`StructuralView::parent_bounds`]).
    #[inline]
    pub fn parent_at(&self, i: usize) -> NodeId {
        debug_assert!(
            !self.offsets.is_empty(),
            "view was computed without the parent index"
        );
        self.parents[i]
    }

    /// Maximum level over the primary outputs.
    ///
    /// # Panics
    ///
    /// Panics if the view was built with
    /// [`StructuralView::compute_structure`], which omits levels.
    pub fn depth(&self, mig: &Mig) -> u32 {
        assert!(
            self.levels.len() == mig.num_nodes(),
            "view was computed without levels (or for a different graph)"
        );
        mig.outputs()
            .iter()
            .map(|s| self.levels[s.node().index()])
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::tests::random_mig;

    /// The view must agree exactly with the original per-call accessors on
    /// random graphs — they are the reference implementation.
    #[test]
    fn agrees_with_reference_accessors_on_random_migs() {
        for seed in 0..12 {
            let mig = random_mig(seed, 9, 250, 7);
            let view = StructuralView::of(&mig);

            let levels = mig.levels();
            let fanout = mig.fanout_counts();
            let live = mig.live_mask();
            let parents = mig.parents();
            for n in mig.node_ids() {
                assert_eq!(view.level(n), levels[n.index()], "level of {n}");
                assert_eq!(view.fanout(n), fanout[n.index()], "fanout of {n}");
                assert_eq!(view.is_live(n), live[n.index()], "liveness of {n}");
                assert_eq!(
                    view.parents_of(n),
                    &parents[n.index()][..],
                    "parents of {n}"
                );
            }
            assert_eq!(view.depth(&mig), mig.depth(), "depth");
            assert_eq!(
                view.live_set().count_ones(),
                live.iter().filter(|&&l| l).count()
            );
        }
    }

    #[test]
    fn compute_reuses_buffers_across_graphs() {
        let big = random_mig(1, 10, 400, 8);
        let small = random_mig(2, 4, 30, 3);
        let mut view = StructuralView::of(&big);
        view.compute(&small);
        let live = small.live_mask();
        let parents = small.parents();
        for n in small.node_ids() {
            assert_eq!(view.is_live(n), live[n.index()]);
            assert_eq!(view.parents_of(n), &parents[n.index()][..]);
        }
        assert_eq!(view.live_set().len(), small.num_nodes());
    }

    #[test]
    fn bitset_set_get_count() {
        let mut b = BitSet::new();
        b.reset(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        for i in 0..130 {
            assert_eq!(b.get(i), [0, 63, 64, 129].contains(&i), "bit {i}");
        }
        assert_eq!(b.count_ones(), 4);
        b.reset(10);
        assert_eq!(b.count_ones(), 0);
    }
}
