//! Ω.A associativity reshaping: `⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩`.
//!
//! Swapping an outer operand with an inner one across a shared middle signal
//! `u` does not change the function but reshapes the graph. The pass applies
//! a swap only when the resulting inner gate *already exists* (a structural
//! hash hit), which guarantees one node of sharing is gained and none is
//! duplicated. This is the conservative, provably non-growing flavour used
//! by both of the paper's rewriting schedules; in Algorithm 2 it is
//! sandwiched between inverter-propagation passes so that freshly exposed
//! single-inverter nodes create more hash hits.

use crate::mig::Mig;
use crate::rewrite::{gate_children, old_single_fanout, other_two, rebuild_into, two_excluding};
use crate::signal::Signal;
use crate::view::StructuralView;

pub(crate) fn run(old: &Mig, new: &mut Mig, view: &mut StructuralView, map: &mut Vec<Signal>) {
    rebuild_into(old, new, view, map, |new, view, g, ch| {
        let old_children = view.old.children(g);
        // Try every child as the inner gate position.
        for inner_idx in 0..3 {
            let m = ch[inner_idx];
            // The inner gate must be uncomplemented (Ω.A as stated) and
            // about to die, otherwise restructuring duplicates it.
            if m.is_complement() || !old_single_fanout(view, old_children[inner_idx]) {
                continue;
            }
            let inner = match gate_children(new, m) {
                Some(c) => c,
                None => continue,
            };
            let outer = other_two(ch, inner_idx);
            // Shared middle signal u: present both as an outer child and an
            // inner child.
            for &u in &outer {
                if !inner.contains(&u) {
                    continue;
                }
                // Both outer children can collapse to `u` after remapping
                // (the gate is then ⟨u,u,m⟩ = u): nothing to swap.
                let Some(&x) = outer.iter().find(|&&s| s != u) else {
                    continue;
                };
                let Some([r0, r1]) = two_excluding(&inner, u) else {
                    continue;
                };
                // ⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩; y and z are symmetric so
                // try swapping x with either.
                for (y, z) in [(r0, r1), (r1, r0)] {
                    if let Some(shared) = new.lookup_maj(y, u, x) {
                        let top = new.add_maj(z, u, shared);
                        return top;
                    }
                }
            }
        }
        new.add_maj(ch[0], ch[1], ch[2])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::equiv_random;

    /// Single-pass entry point (shadows the buffer-reusing `super::run`).
    fn run(mig: &Mig) -> Mig {
        crate::rewrite::Pass::Associativity.run(mig)
    }

    #[test]
    fn swap_creates_sharing() {
        // f = ⟨x u ⟨y u z⟩⟩ and g = ⟨y u x⟩ both outputs. The swap rewrites
        // f to reuse g: live gates drop from 3 to 2.
        let mut mig = Mig::new(4);
        let s: Vec<Signal> = mig.inputs().collect();
        let (x, u, y, z) = (s[0], s[1], s[2], s[3]);
        let g = mig.add_maj(y, u, x);
        let inner = mig.add_maj(y, u, z);
        let f = mig.add_maj(x, u, inner);
        mig.add_output(f);
        mig.add_output(g);
        assert_eq!(mig.num_live_gates(), 3);

        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 21).is_equal());
        assert_eq!(out.num_live_gates(), 2);
    }

    #[test]
    fn no_hash_hit_means_no_change() {
        let mut mig = Mig::new(4);
        let s: Vec<Signal> = mig.inputs().collect();
        let inner = mig.add_maj(s[2], s[1], s[3]);
        let f = mig.add_maj(s[0], s[1], inner);
        mig.add_output(f);
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 22).is_equal());
        assert_eq!(out.num_live_gates(), 2);
    }

    #[test]
    fn shared_inner_gate_not_restructured() {
        // The inner gate has another fanout: swapping would duplicate it.
        let mut mig = Mig::new(4);
        let s: Vec<Signal> = mig.inputs().collect();
        let g = mig.add_maj(s[2], s[1], s[0]);
        let inner = mig.add_maj(s[2], s[1], s[3]);
        let f = mig.add_maj(s[0], s[1], inner);
        mig.add_output(f);
        mig.add_output(g);
        mig.add_output(inner); // extra fanout on inner
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 23).is_equal());
        assert_eq!(out.num_live_gates(), 3);
    }

    #[test]
    fn complemented_inner_not_restructured() {
        let mut mig = Mig::new(4);
        let s: Vec<Signal> = mig.inputs().collect();
        let g = mig.add_maj(s[2], s[1], s[0]);
        let inner = mig.add_maj(s[2], s[1], s[3]);
        let f = mig.add_maj(s[0], s[1], !inner);
        mig.add_output(f);
        mig.add_output(g);
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 24).is_equal());
        assert_eq!(out.num_live_gates(), 3);
    }

    #[test]
    fn symmetric_variant_found() {
        // Hash hit requires swapping x with the *other* inner child.
        let mut mig = Mig::new(4);
        let s: Vec<Signal> = mig.inputs().collect();
        let (x, u, y, z) = (s[0], s[1], s[2], s[3]);
        let g = mig.add_maj(z, u, x); // matches (y', u, x) with y' = z
        let inner = mig.add_maj(y, u, z);
        let f = mig.add_maj(x, u, inner);
        mig.add_output(f);
        mig.add_output(g);
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 25).is_equal());
        assert_eq!(out.num_live_gates(), 2);
    }
}
