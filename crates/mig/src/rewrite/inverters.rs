//! Inverter propagation: the Ω.I(R→L) family.
//!
//! Ω.I states `⟨x y z⟩ = ⟨x̄ ȳ z̄⟩̄`. Read right-to-left it lets us *flip* a
//! node — complement all three children and complement the node's output —
//! which turns a node with two or three complemented children into one with
//! one or zero. The DATE'17 paper uses two flavours:
//!
//! * **Ω.I(R→L)(1–3)**: flip when ≥ 2 non-constant children are complemented
//!   (rules `⟨x̄ȳz̄⟩ = ⟨xyz⟩̄` and `⟨x̄ȳz⟩ = ⟨xyz̄⟩̄`).
//! * **Ω.I(R→L)**: flip only the all-complemented case (rule 1), removing
//!   the costliest nodes.
//!
//! Constant children are excluded from the count because the PLiM controller
//! reads constants in either polarity for free.

use crate::mig::Mig;
use crate::rewrite::rebuild_into;
use crate::signal::Signal;
use crate::view::StructuralView;

/// Which complement patterns trigger a flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InverterMode {
    /// Flip nodes with 2 or 3 complemented non-constant children.
    TwoOrThree,
    /// Flip only nodes with 3 complemented non-constant children.
    ThreeOnly,
}

/// Number of complemented, non-constant signals in a triple.
fn complemented_count(children: &[Signal; 3]) -> usize {
    children
        .iter()
        .filter(|s| !s.is_constant() && s.is_complement())
        .count()
}

pub(crate) fn run(
    old: &Mig,
    new: &mut Mig,
    view: &mut StructuralView,
    map: &mut Vec<Signal>,
    mode: InverterMode,
) {
    rebuild_into(old, new, view, map, |new, _view, _old_gate, ch| {
        let count = complemented_count(&ch);
        let flip = match mode {
            InverterMode::TwoOrThree => count >= 2,
            InverterMode::ThreeOnly => count == 3,
        };
        if flip {
            !new.add_maj(!ch[0], !ch[1], !ch[2])
        } else {
            new.add_maj(ch[0], ch[1], ch[2])
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::NodeId;
    use crate::simulate::equiv_random;

    /// Single-pass entry point (shadows the buffer-reusing `super::run`).
    fn run(mig: &Mig, mode: InverterMode) -> Mig {
        match mode {
            InverterMode::TwoOrThree => crate::rewrite::Pass::InvertersTwoOrThree,
            InverterMode::ThreeOnly => crate::rewrite::Pass::InvertersThreeOnly,
        }
        .run(mig)
    }

    fn three_complemented() -> Mig {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let g = mig.add_maj(!a, !b, !c);
        mig.add_output(g);
        mig
    }

    #[test]
    fn flips_triple_complement() {
        let mig = three_complemented();
        for mode in [InverterMode::ThreeOnly, InverterMode::TwoOrThree] {
            let out = run(&mig, mode);
            assert!(equiv_random(&mig, &out, 8, 1).is_equal());
            let g = out.gates().next().expect("one gate");
            assert_eq!(out.complemented_edge_count(g), 0);
            // output edge absorbed the inversion
            assert!(out.outputs()[0].is_complement());
        }
    }

    #[test]
    fn two_or_three_flips_double_complement() {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let g = mig.add_maj(!a, !b, c);
        mig.add_output(g);

        let strict = run(&mig, InverterMode::ThreeOnly);
        let g0 = strict.gates().next().expect("gate");
        assert_eq!(
            strict.complemented_edge_count(g0),
            2,
            "rule 1 must not fire"
        );

        let loose = run(&mig, InverterMode::TwoOrThree);
        assert!(equiv_random(&mig, &loose, 8, 2).is_equal());
        let g1 = loose.gates().next().expect("gate");
        assert_eq!(loose.complemented_edge_count(g1), 1);
    }

    #[test]
    fn single_complement_untouched() {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let g = mig.add_maj(!a, b, c);
        mig.add_output(g);
        let out = run(&mig, InverterMode::TwoOrThree);
        let g0 = out.gates().next().expect("gate");
        assert_eq!(out.complemented_edge_count(g0), 1);
        assert!(!out.outputs()[0].is_complement());
    }

    #[test]
    fn constant_children_do_not_count() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        // ⟨!a !b 1⟩: two non-constant complements plus TRUE — flips.
        let g = mig.or(!a, !b);
        mig.add_output(g);
        let out = run(&mig, InverterMode::TwoOrThree);
        assert!(equiv_random(&mig, &out, 8, 3).is_equal());
        let g0 = out.gates().next().expect("gate");
        assert_eq!(out.complemented_edge_count(g0), 0);

        // ⟨!a b 1⟩: only one non-constant complement — must not flip even
        // though the constant child is the TRUE (complemented) signal.
        let mut mig2 = Mig::new(2);
        let a2 = mig2.input(0);
        let b2 = mig2.input(1);
        let g2 = mig2.or(!a2, b2);
        mig2.add_output(g2);
        let out2 = run(&mig2, InverterMode::TwoOrThree);
        assert!(!out2.outputs()[0].is_complement());
    }

    #[test]
    fn flip_cascades_to_parents() {
        // Flipping a child complements its output edge; the parent sees the
        // new complement during the same bottom-up pass.
        let mut mig = Mig::new(4);
        let [a, b, c, d] = [mig.input(0), mig.input(1), mig.input(2), mig.input(3)];
        let inner = mig.add_maj(!a, !b, !c); // will flip
        let outer = mig.add_maj(inner, d, !a); // gains a complement after flip
        mig.add_output(outer);
        let out = run(&mig, InverterMode::TwoOrThree);
        assert!(equiv_random(&mig, &out, 8, 4).is_equal());
        for g in out.gates() {
            assert!(out.complemented_edge_count(g) <= 1);
        }
    }

    #[test]
    fn complemented_count_helper() {
        let a = Signal::new(NodeId::new(3), true);
        let b = Signal::new(NodeId::new(4), false);
        assert_eq!(complemented_count(&[a, b, Signal::TRUE]), 1);
        assert_eq!(complemented_count(&[a, !b, Signal::FALSE]), 2);
    }
}
