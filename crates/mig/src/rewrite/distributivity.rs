//! Ω.D applied right-to-left: `⟨⟨x y u⟩ ⟨x y v⟩ z⟩ → ⟨x y ⟨u v z⟩⟩`.
//!
//! Merging two inner gates that share two children saves one node whenever
//! the inner gates are not otherwise used. The complemented variant
//! `⟨⟨xyu⟩̄ ⟨xyv⟩̄ z⟩ = ⟨x̄ ȳ ⟨ū v̄ z⟩⟩` (both outer edges complemented) is
//! handled by flipping through Ω.I first.

use crate::mig::Mig;
use crate::rewrite::{gate_children, old_single_fanout, rebuild_into, View};
use crate::signal::Signal;
use crate::view::StructuralView;

/// Signals present in both sorted triples (exact match incl. complement),
/// returned as `(buffer, count)`. Children of a gate always reference three
/// distinct nodes, so the intersection is duplicate-free.
fn shared_signals(a: &[Signal; 3], b: &[Signal; 3]) -> ([Signal; 3], usize) {
    let mut out = [Signal::FALSE; 3];
    let mut n = 0;
    for &s in a {
        if b.contains(&s) {
            out[n] = s;
            n += 1;
        }
    }
    (out, n)
}

/// The child of `t` that is not in `shared`.
fn leftover(t: &[Signal; 3], shared: &[Signal]) -> Option<Signal> {
    let mut it = t.iter().filter(|s| !shared.contains(s));
    let first = it.next().copied();
    if it.next().is_some() {
        None
    } else {
        first
    }
}

pub(crate) fn run(old: &Mig, new: &mut Mig, view: &mut StructuralView, map: &mut Vec<Signal>) {
    rebuild_into(
        old,
        new,
        view,
        map,
        |new, view, g: crate::signal::NodeId, ch| {
            let old_children = view.old.children(g);
            try_distribute(new, view, ch, old_children)
                .unwrap_or_else(|| new.add_maj(ch[0], ch[1], ch[2]))
        },
    )
}

/// Attempts the right-to-left distributivity merge on one node.
fn try_distribute(
    new: &mut Mig,
    view: &View<'_>,
    ch: [Signal; 3],
    old_children: [Signal; 3],
) -> Option<Signal> {
    // Consider each pair of children as the two inner gates.
    for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let (si, sj) = (ch[i], ch[j]);
        let k = 3 - i - j;
        let z = ch[k];
        // Both uncomplemented gates or both complemented gates.
        if si.is_complement() != sj.is_complement() {
            continue;
        }
        let flipped = si.is_complement();
        let (gi, gj) = match (gate_children(new, si), gate_children(new, sj)) {
            (Some(a), Some(b)) => (a, b),
            _ => continue,
        };
        // Only profitable when the inner gates die after the merge. The
        // mapped signals may not correspond 1:1 to the old children, so we
        // conservatively require the *old* children at the same positions to
        // be single-fanout gates too.
        if !old_single_fanout(view, old_children[i]) || !old_single_fanout(view, old_children[j]) {
            continue;
        }
        let (shared, num_shared) = shared_signals(&gi, &gj);
        if num_shared != 2 {
            continue;
        }
        let shared = &shared[..2];
        let u = leftover(&gi, shared)?;
        let v = leftover(&gj, shared)?;
        let (x, y) = (shared[0], shared[1]);
        if flipped {
            // ⟨ḡi ḡj z⟩ with gi=⟨x y u⟩: ḡi = ⟨x̄ ȳ ū⟩, so
            // pattern = ⟨⟨x̄ȳū⟩ ⟨x̄ȳv̄⟩ z⟩ = ⟨x̄ ȳ ⟨ū v̄ z⟩⟩.
            let inner = new.add_maj(!u, !v, z);
            return Some(new.add_maj(!x, !y, inner));
        }
        let inner = new.add_maj(u, v, z);
        return Some(new.add_maj(x, y, inner));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::equiv_random;

    /// Single-pass entry point (shadows the buffer-reusing `super::run`).
    fn run(mig: &Mig) -> Mig {
        crate::rewrite::Pass::DistributivityRl.run(mig)
    }

    #[test]
    fn merges_shared_pair() {
        let mut mig = Mig::new(5);
        let s: Vec<Signal> = mig.inputs().collect();
        let g1 = mig.add_maj(s[0], s[1], s[2]);
        let g2 = mig.add_maj(s[0], s[1], s[3]);
        let top = mig.add_maj(g1, g2, s[4]);
        mig.add_output(top);
        assert_eq!(mig.num_gates(), 3);

        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 11).is_equal());
        assert_eq!(out.num_live_gates(), 2, "⟨xy⟨uvz⟩⟩ needs two gates");
    }

    #[test]
    fn merges_complemented_pair() {
        let mut mig = Mig::new(5);
        let s: Vec<Signal> = mig.inputs().collect();
        let g1 = mig.add_maj(s[0], s[1], s[2]);
        let g2 = mig.add_maj(s[0], s[1], s[3]);
        let top = mig.add_maj(!g1, !g2, s[4]);
        mig.add_output(top);

        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 12).is_equal());
        assert_eq!(out.num_live_gates(), 2);
    }

    #[test]
    fn respects_shared_fanout() {
        // g1 feeds both the top node and an extra output: merging would
        // duplicate logic, so the pass must leave the structure alone.
        let mut mig = Mig::new(5);
        let s: Vec<Signal> = mig.inputs().collect();
        let g1 = mig.add_maj(s[0], s[1], s[2]);
        let g2 = mig.add_maj(s[0], s[1], s[3]);
        let top = mig.add_maj(g1, g2, s[4]);
        mig.add_output(top);
        mig.add_output(g1);

        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 13).is_equal());
        assert_eq!(out.num_live_gates(), 3);
    }

    #[test]
    fn mixed_polarity_not_merged() {
        let mut mig = Mig::new(5);
        let s: Vec<Signal> = mig.inputs().collect();
        let g1 = mig.add_maj(s[0], s[1], s[2]);
        let g2 = mig.add_maj(s[0], s[1], s[3]);
        let top = mig.add_maj(g1, !g2, s[4]);
        mig.add_output(top);
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 14).is_equal());
        assert_eq!(out.num_live_gates(), 3);
    }

    #[test]
    fn single_shared_signal_not_merged() {
        let mut mig = Mig::new(6);
        let s: Vec<Signal> = mig.inputs().collect();
        let g1 = mig.add_maj(s[0], s[1], s[2]);
        let g2 = mig.add_maj(s[0], s[3], s[4]);
        let top = mig.add_maj(g1, g2, s[5]);
        mig.add_output(top);
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 15).is_equal());
        assert_eq!(out.num_live_gates(), 3);
    }

    #[test]
    fn and_or_pattern_collapses() {
        // (a∧b)∨(a∧c) = a∧(b∨c): AND = ⟨ab0⟩, OR = ⟨xy1⟩. The outer node is
        // ⟨⟨ab0⟩⟨ac0⟩1⟩; shared pair {a, 0} → ⟨a 0 ⟨b c 1⟩⟩. One node saved.
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let t1 = mig.and(a, b);
        let t2 = mig.and(a, c);
        let top = mig.or(t1, t2);
        mig.add_output(top);
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 16).is_equal());
        assert_eq!(out.num_live_gates(), 2);
    }
}
