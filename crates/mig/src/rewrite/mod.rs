//! MIG algebraic rewriting: the Ω/Ψ axioms and the paper's two rewriting
//! algorithms.
//!
//! Every pass is a *rebuild*: it walks the old graph in topological order,
//! mapping each live gate through a rule-specific constructor into a second
//! graph buffer. Structural hashing plus the Ω.M axiom run on every node
//! insertion, so each pass also performs node minimisation and dead-node
//! garbage collection. [`rewrite`] double-buffers two recycled [`Mig`]s and
//! a shared internal `Workspace` (structural view, signal map, level memo), so the
//! ~50 passes of one call stay away from the allocator instead of
//! constructing ~50 graphs, strash tables and derived-index vectors.
//! Functional equivalence of every pass is enforced by the test-suite via
//! random simulation.
//!
//! * [`Pass`] — the individual axioms (Ω.M, Ω.D(R→L), Ω.A, Ψ.C, the
//!   inverter-propagation family Ω.I(R→L)).
//! * [`Algorithm::PlimCompiler`] — Algorithm 1 of the paper (the DAC'16
//!   PLiM-compiler schedule).
//! * [`Algorithm::EnduranceAware`] — Algorithm 2 of the paper (drops Ψ.C,
//!   sandwiches Ω.A between inverter-propagation passes).

mod associativity;
mod distributivity;
mod inverters;
mod level_balance;
mod psi;
pub mod rules;

pub use inverters::InverterMode;

use crate::mig::Mig;
use crate::signal::{NodeId, Signal};
use crate::view::StructuralView;

/// One rewriting pass over the whole graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Ω.M + structural hashing only (node minimisation / cleanup).
    Majority,
    /// Ω.D applied right-to-left: `⟨⟨xyu⟩⟨xyv⟩z⟩ → ⟨xy⟨uvz⟩⟩`.
    DistributivityRl,
    /// Ω.A reshaping, applied only when it provably shares a node.
    Associativity,
    /// Ψ.C complementary associativity: `⟨x,u,⟨y,x̄,z⟩⟩ → ⟨x,u,⟨y,x,z⟩⟩`.
    ComplementaryAssociativity,
    /// Ω.I right-to-left, rules (1)–(3): flip nodes with ≥ 2 complemented
    /// (non-constant) children.
    InvertersTwoOrThree,
    /// Ω.I right-to-left, rule (1) only: flip nodes with 3 complemented
    /// children.
    InvertersThreeOnly,
    /// Level-balancing Ω.A (§III-B4 future work): swap deep inner signals
    /// toward their consumers to narrow parent-child level gaps — the
    /// structural source of blocked RRAMs.
    LevelBalance,
}

impl Pass {
    /// Runs this pass, producing a rewritten graph in fresh buffers.
    pub fn run(self, mig: &Mig) -> Mig {
        let mut new = Mig::new(mig.num_inputs());
        self.run_into(mig, &mut new, &mut Workspace::default());
        new
    }

    /// Runs this pass, rebuilding `old` into the recycled `new` buffer
    /// using `ws` for every piece of derived scratch state.
    pub(crate) fn run_into(self, old: &Mig, new: &mut Mig, ws: &mut Workspace) {
        let Workspace { view, map, levels } = ws;
        match self {
            Pass::Majority => rebuild_into(old, new, view, map, |new, _, _, ch| {
                new.add_maj(ch[0], ch[1], ch[2])
            }),
            Pass::DistributivityRl => distributivity::run(old, new, view, map),
            Pass::Associativity => associativity::run(old, new, view, map),
            Pass::ComplementaryAssociativity => psi::run(old, new, view, map),
            Pass::InvertersTwoOrThree => {
                inverters::run(old, new, view, map, InverterMode::TwoOrThree)
            }
            Pass::InvertersThreeOnly => {
                inverters::run(old, new, view, map, InverterMode::ThreeOnly)
            }
            Pass::LevelBalance => level_balance::run(old, new, view, map, levels),
        }
    }
}

/// The two pass schedules evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Paper Algorithm 1 — the baseline PLiM-compiler rewriting (DAC'16):
    /// `Ω.M; Ω.D(R→L); Ω.A; Ψ.C; Ω.M; Ω.D(R→L); Ω.I(R→L)(1–3); Ω.I(R→L)`.
    PlimCompiler,
    /// Paper Algorithm 2 — endurance-aware rewriting: removes Ψ.C and
    /// sandwiches Ω.A between inverter-propagation passes:
    /// `Ω.M; Ω.D(R→L); Ω.I(1–3); Ω.I; Ω.A; Ω.I(1–3); Ω.I; Ω.M; Ω.D(R→L); Ω.I`.
    #[default]
    EnduranceAware,
    /// Extension (paper §III-B4 future work): Algorithm 2 plus a final
    /// level-balancing pass that keeps parent-child level differences low
    /// to shorten blocked-RRAM storage durations, potentially at an
    /// instruction-count cost.
    LevelAware,
}

impl Algorithm {
    /// The pass sequence executed once per effort cycle.
    pub fn cycle(self) -> &'static [Pass] {
        match self {
            Algorithm::PlimCompiler => &[
                Pass::Majority,
                Pass::DistributivityRl,
                Pass::Associativity,
                Pass::ComplementaryAssociativity,
                Pass::Majority,
                Pass::DistributivityRl,
                Pass::InvertersTwoOrThree,
                Pass::InvertersThreeOnly,
            ],
            Algorithm::EnduranceAware => &[
                Pass::Majority,
                Pass::DistributivityRl,
                Pass::InvertersTwoOrThree,
                Pass::InvertersThreeOnly,
                Pass::Associativity,
                Pass::InvertersTwoOrThree,
                Pass::InvertersThreeOnly,
                Pass::Majority,
                Pass::DistributivityRl,
                Pass::InvertersThreeOnly,
            ],
            Algorithm::LevelAware => &[
                Pass::Majority,
                Pass::DistributivityRl,
                Pass::InvertersTwoOrThree,
                Pass::InvertersThreeOnly,
                Pass::Associativity,
                Pass::InvertersTwoOrThree,
                Pass::InvertersThreeOnly,
                Pass::Majority,
                Pass::DistributivityRl,
                Pass::InvertersThreeOnly,
                Pass::LevelBalance,
                Pass::InvertersThreeOnly,
            ],
        }
    }
}

/// Runs `effort` cycles of the given algorithm (the paper uses `effort = 5`).
///
/// # Examples
///
/// ```
/// use rlim_mig::{Mig, rewrite::{rewrite, Algorithm}};
///
/// let mut mig = Mig::new(3);
/// let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
/// let x = mig.xor(a, b);
/// let y = mig.xor(x, c);
/// mig.add_output(y);
/// let rewritten = rewrite(&mig, Algorithm::EnduranceAware, 5);
/// assert!(rewritten.num_gates() <= mig.num_gates());
/// ```
pub fn rewrite(mig: &Mig, algorithm: Algorithm, effort: usize) -> Mig {
    let mut ws = Workspace::default();
    let mut current = Mig::new(mig.num_inputs());
    let mut spare = Mig::new(mig.num_inputs());
    Pass::Majority.run_into(mig, &mut current, &mut ws);
    let mut before = fingerprint(&current);
    for _ in 0..effort {
        for pass in algorithm.cycle() {
            pass.run_into(&current, &mut spare, &mut ws);
            std::mem::swap(&mut current, &mut spare);
        }
        let after = fingerprint(&current);
        if after == before {
            break; // fixed point reached early
        }
        before = after;
    }
    current
}

/// The convergence fingerprint of [`rewrite`]'s fixed-point check: the
/// exact structural [`Mig::fingerprint`]. An earlier version compared
/// the `(gate count, complemented edges, depth)` triple instead; that
/// can misclassify a still-moving cycle as converged whenever a pass
/// permutes structure while leaving all three summary statistics
/// untouched. The exact fingerprint only stops when the graph is
/// literally unchanged — on the committed benchmark tables the two
/// checks happen to agree (the tables are byte-identical), so the
/// switch costs nothing and removes the coincidence hazard.
pub(crate) fn fingerprint(mig: &Mig) -> u128 {
    mig.fingerprint()
}

/// Reusable scratch shared by every pass of a [`rewrite`] call: the
/// structural view of the pass's source graph, the old-node → new-signal
/// map, and the level memo used by [`Pass::LevelBalance`]. Together with
/// the two recycled [`Mig`] buffers (whose strash tables clear without
/// deallocating), this keeps the ~50 rebuilds per call away from the
/// allocator once buffers reach their high-water mark.
#[derive(Debug, Default)]
pub(crate) struct Workspace {
    /// Structural view of the graph currently being rebuilt *from*.
    view: StructuralView,
    /// `map[old node index]` -> new signal for the node's value.
    map: Vec<Signal>,
    /// Level memo over the graph being built (LevelBalance only).
    levels: Vec<u32>,
}

/// Read-only context handed to rebuild transforms.
pub(crate) struct View<'a> {
    /// The graph being rebuilt.
    pub old: &'a Mig,
    /// Structural view (levels, fanout, liveness, parents) of `old`.
    pub structure: &'a StructuralView,
}

/// Rebuilds `old` gate by gate into the recycled `new` buffer.
/// `transform(new, view, old_gate, mapped_children)` must return the new
/// signal implementing the gate's (uncomplemented) function. Dead gates are
/// skipped; outputs are remapped at the end.
pub(crate) fn rebuild_into<F>(
    old: &Mig,
    new: &mut Mig,
    view_buf: &mut StructuralView,
    map: &mut Vec<Signal>,
    mut transform: F,
) where
    F: FnMut(&mut Mig, &View<'_>, NodeId, [Signal; 3]) -> Signal,
{
    view_buf.compute_structure(old);
    let view = View {
        old,
        structure: view_buf,
    };
    new.reset(old.num_inputs());
    map.clear();
    map.resize(old.num_nodes(), Signal::FALSE);
    for i in 0..old.num_inputs() {
        map[i + 1] = new.input(i);
    }
    for g in old.gates() {
        if !view.structure.is_live(g) {
            continue;
        }
        let mapped = old.children(g).map(|s| map_signal(map, s));
        map[g.index()] = transform(new, &view, g, mapped);
    }
    for &po in old.outputs() {
        let s = map_signal(map, po);
        new.add_output(s);
    }
}

/// Maps an old-graph signal through a node map, carrying the complement.
#[inline]
pub(crate) fn map_signal(map: &[Signal], s: Signal) -> Signal {
    map[s.node().index()].complement_if(s.is_complement())
}

/// Returns the children of `s.node()` in graph `mig` if `s` points at a
/// gate, regardless of complement.
#[inline]
pub(crate) fn gate_children(mig: &Mig, s: Signal) -> Option<[Signal; 3]> {
    if mig.is_gate(s.node()) {
        Some(mig.children(s.node()))
    } else {
        None
    }
}

/// Whether the old-graph node behind this *old* signal had fanout 1 —
/// used by restructuring passes to avoid duplicating shared logic.
#[inline]
pub(crate) fn old_single_fanout(view: &View<'_>, old_child: Signal) -> bool {
    view.structure.fanout(old_child.node()) <= 1
}

/// The two children of `ch` other than `ch[skip]`, in order.
#[inline]
pub(crate) fn other_two(ch: [Signal; 3], skip: usize) -> [Signal; 2] {
    match skip {
        0 => [ch[1], ch[2]],
        1 => [ch[0], ch[2]],
        _ => [ch[0], ch[1]],
    }
}

/// The children of `t` other than `exclude`, when there are exactly two
/// (i.e. `exclude` occurs exactly once in the triple).
#[inline]
pub(crate) fn two_excluding(t: &[Signal; 3], exclude: Signal) -> Option<[Signal; 2]> {
    let mut out = [Signal::FALSE; 2];
    let mut n = 0;
    for &s in t {
        if s != exclude {
            if n == 2 {
                return None;
            }
            out[n] = s;
            n += 1;
        }
    }
    (n == 2).then_some(out)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::simulate::equiv_random;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Random layered MIG used to stress the passes.
    pub(crate) fn random_mig(seed: u64, inputs: usize, gates: usize, outputs: usize) -> Mig {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut mig = Mig::new(inputs);
        let mut pool: Vec<Signal> = mig.inputs().collect();
        pool.push(Signal::FALSE);
        while mig.num_gates() < gates {
            let mut pick = || {
                let s = pool[rng.gen_range(0..pool.len())];
                s.complement_if(rng.gen_bool(0.35))
            };
            let (a, b, c) = (pick(), pick(), pick());
            let g = mig.add_maj(a, b, c);
            pool.push(g);
        }
        for _ in 0..outputs {
            let s = pool[rng.gen_range(0..pool.len())];
            mig.add_output(s.complement_if(rng.gen_bool(0.3)));
        }
        mig
    }

    #[test]
    fn majority_pass_gc_and_preserves_function() {
        let mig = random_mig(1, 8, 200, 6);
        let out = Pass::Majority.run(&mig);
        assert!(out.num_gates() <= mig.num_gates());
        assert!(equiv_random(&mig, &out, 16, 99).is_equal());
    }

    #[test]
    fn every_pass_preserves_function_on_random_graphs() {
        for seed in 0..6 {
            let mig = random_mig(seed, 10, 300, 8);
            for pass in [
                Pass::Majority,
                Pass::DistributivityRl,
                Pass::Associativity,
                Pass::ComplementaryAssociativity,
                Pass::InvertersTwoOrThree,
                Pass::InvertersThreeOnly,
            ] {
                let out = pass.run(&mig);
                assert!(
                    equiv_random(&mig, &out, 16, seed ^ 0xABCD).is_equal(),
                    "pass {pass:?} broke seed {seed}"
                );
            }
        }
    }

    #[test]
    fn algorithms_preserve_function_and_do_not_grow() {
        for seed in [3, 17] {
            let mig = random_mig(seed, 12, 400, 10);
            let baseline = Pass::Majority.run(&mig).num_gates();
            for alg in [Algorithm::PlimCompiler, Algorithm::EnduranceAware] {
                let out = rewrite(&mig, alg, 5);
                assert!(
                    equiv_random(&mig, &out, 16, seed).is_equal(),
                    "{alg:?} broke seed {seed}"
                );
                assert!(
                    out.num_gates() <= baseline,
                    "{alg:?} grew the graph on seed {seed}"
                );
            }
        }
    }

    #[test]
    fn endurance_rewriting_controls_complemented_edges() {
        // After Algorithm 2, no gate should have ≥ 2 complemented
        // non-constant children (the inverter passes flip them away).
        let mig = random_mig(5, 10, 500, 8);
        let out = rewrite(&mig, Algorithm::EnduranceAware, 5);
        for g in out.gates() {
            assert!(
                out.complemented_edge_count(g) <= 1,
                "gate {g} kept {} complemented edges",
                out.complemented_edge_count(g)
            );
        }
    }

    #[test]
    fn rewrite_is_deterministic() {
        let mig = random_mig(9, 10, 300, 8);
        let a = rewrite(&mig, Algorithm::EnduranceAware, 3);
        let b = rewrite(&mig, Algorithm::EnduranceAware, 3);
        assert_eq!(a.num_gates(), b.num_gates());
        assert_eq!(a.outputs(), b.outputs());
    }

    #[test]
    fn fingerprint_distinguishes_depth_only_changes() {
        // The exact shape LevelBalance produces: same gate count, same
        // complemented-edge count, different depth. The fixed-point check
        // must not treat these as converged.
        let mut a = Mig::new(5);
        let s: Vec<Signal> = a.inputs().collect();
        let d1 = a.add_maj(s[2], s[3], s[4]);
        let z = a.add_maj(d1, s[3], !s[0]);
        let inner = a.add_maj(s[2], s[1], z);
        let f = a.add_maj(s[0], s[1], inner);
        a.add_output(f);

        // LevelBalance leaves the bypassed inner gate dead; a Majority
        // (GC) pass removes it, as happens inside every real cycle.
        let b = Pass::Majority.run(&Pass::LevelBalance.run(&a));
        assert_eq!(a.num_gates(), b.num_gates());
        assert_eq!(a.total_complemented_edges(), b.total_complemented_edges());
        assert_ne!(a.depth(), b.depth());
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn repeated_rewrites_share_buffers_and_stay_equivalent() {
        // The double-buffered engine must behave identically to the old
        // fresh-allocation engine: run the same rewrite twice and against
        // a per-pass reference composition.
        let mig = random_mig(23, 10, 300, 8);
        let out = rewrite(&mig, Algorithm::EnduranceAware, 2);
        let mut reference = Pass::Majority.run(&mig);
        for _ in 0..2 {
            let before = fingerprint(&reference);
            for pass in Algorithm::EnduranceAware.cycle() {
                reference = pass.run(&reference);
            }
            if fingerprint(&reference) == before {
                break;
            }
        }
        assert_eq!(out.num_gates(), reference.num_gates());
        assert_eq!(out.outputs(), reference.outputs());
        assert!(equiv_random(&mig, &out, 16, 99).is_equal());
    }

    #[test]
    fn xor_chain_shrinks() {
        let mut mig = Mig::new(6);
        let mut acc = mig.input(0);
        for i in 1..6 {
            let x = mig.input(i);
            acc = mig.xor(acc, x);
        }
        mig.add_output(acc);
        let out = rewrite(&mig, Algorithm::EnduranceAware, 5);
        assert!(equiv_random(&mig, &out, 16, 0).is_equal());
        assert!(out.num_gates() <= mig.num_gates());
    }
}
