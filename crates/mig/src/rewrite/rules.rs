//! Pattern→pattern descriptions of the Ω rewrite rules.
//!
//! The greedy passes in this module's siblings (`associativity`,
//! `distributivity`, `inverters`, `psi`, `level_balance`) each implement
//! one Ω axiom *imperatively*: walk the graph, test applicability, commit
//! the first profitable rewrite. The equality-saturation engine
//! (`rlim-egraph`) needs the same axioms *declaratively* — a left pattern
//! to match against e-classes and a right pattern to instantiate — so
//! this module states them once as data, shared by both consumers.
//!
//! The correspondence with the greedy passes:
//!
//! | rule        | greedy pass                  | axiom                                     |
//! |-------------|------------------------------|-------------------------------------------|
//! | `omega.A`   | `Pass::Associativity`        | `⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩`           |
//! | `psi.C`     | `Pass::ComplementaryAssociativity` | `⟨x u ⟨y ū z⟩⟩ = ⟨x u ⟨y x z⟩⟩`     |
//! | `omega.D.rl`| `Pass::DistributivityRl`     | `⟨⟨x y u⟩ ⟨x y v⟩ z⟩ = ⟨x y ⟨u v z⟩⟩`     |
//! | `omega.D.lr`| (reverse of the above)       | `⟨x y ⟨u v z⟩⟩ = ⟨⟨x y u⟩ ⟨x y v⟩ z⟩`     |
//! | `omega.I`   | `Pass::Inverters*`           | `⟨x y z⟩ = ¬⟨x̄ ȳ z̄⟩`                     |
//!
//! Two of the five greedy passes need no rule of their own: Ω.M
//! (`Pass::Majority`) is applied by construction on every node the
//! e-graph interns (exactly as [`crate::Mig::add_maj`] applies it on
//! every insertion), and `Pass::LevelBalance` is Ω.A steered by a level
//! heuristic — in an e-graph both orientations coexist and the
//! *extractor* picks the shallower one, so the plain `omega.A` rule
//! subsumes it. `omega.I` is likewise native to a parity-aware e-graph
//! (a node and its complemented-children dual intern to one e-node), but
//! it is kept in the list so the rule set is the complete published
//! algebra and so engines without native parity still close over it.
//!
//! Patterns are tiny trees over at most [`MAX_VARS`] variables; matching
//! treats majority children as the unordered set they are (the graph
//! stores them sorted), so one rule covers every argument permutation.

use std::fmt;

/// Upper bound on distinct variables in any rule of [`omega_rules`]
/// (`x u y z v`). Matching engines can use a fixed-size binding array.
pub const MAX_VARS: usize = 5;

/// One side of a rewrite rule: a majority-term tree with complement
/// attributes, over numbered pattern variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// A pattern variable, optionally complemented. Matches any signal;
    /// every occurrence of the same variable must bind the same signal.
    Var {
        /// Variable index, `< MAX_VARS`.
        var: u8,
        /// Whether the matched signal is consumed complemented.
        complement: bool,
    },
    /// A majority of three sub-patterns, optionally complemented. The
    /// children are an unordered set — majority is fully symmetric.
    Maj {
        /// The three operand patterns.
        children: Box<[Pattern; 3]>,
        /// Whether the majority's value is consumed complemented.
        complement: bool,
    },
}

impl Pattern {
    /// The uncomplemented variable `v`.
    pub fn var(v: u8) -> Pattern {
        assert!((v as usize) < MAX_VARS, "variable index out of range");
        Pattern::Var {
            var: v,
            complement: false,
        }
    }

    /// The majority `⟨a b c⟩`, uncomplemented.
    pub fn maj(a: Pattern, b: Pattern, c: Pattern) -> Pattern {
        Pattern::Maj {
            children: Box::new([a, b, c]),
            complement: false,
        }
    }

    /// This pattern with its complement attribute flipped.
    pub fn complemented(self) -> Pattern {
        match self {
            Pattern::Var { var, complement } => Pattern::Var {
                var,
                complement: !complement,
            },
            Pattern::Maj {
                children,
                complement,
            } => Pattern::Maj {
                children,
                complement: !complement,
            },
        }
    }

    /// Number of variables used: one past the highest index mentioned.
    pub fn num_vars(&self) -> usize {
        match self {
            Pattern::Var { var, .. } => *var as usize + 1,
            Pattern::Maj { children, .. } => {
                children.iter().map(Pattern::num_vars).max().unwrap_or(0)
            }
        }
    }

    /// Evaluates the pattern as a Boolean function of its variables.
    pub fn eval(&self, env: &[bool]) -> bool {
        match self {
            Pattern::Var { var, complement } => env[*var as usize] ^ complement,
            Pattern::Maj {
                children,
                complement,
            } => {
                let [a, b, c] = [
                    children[0].eval(env),
                    children[1].eval(env),
                    children[2].eval(env),
                ];
                (u8::from(a) + u8::from(b) + u8::from(c) >= 2) ^ complement
            }
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [char; MAX_VARS] = ['x', 'u', 'y', 'z', 'v'];
        match self {
            Pattern::Var { var, complement } => {
                if *complement {
                    write!(f, "!{}", NAMES[*var as usize])
                } else {
                    write!(f, "{}", NAMES[*var as usize])
                }
            }
            Pattern::Maj {
                children,
                complement,
            } => {
                if *complement {
                    write!(f, "!")?;
                }
                write!(f, "<{} {} {}>", children[0], children[1], children[2])
            }
        }
    }
}

/// A named equivalence `lhs = rhs` over majority terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteRule {
    /// Stable rule name (used in logs and tests).
    pub name: &'static str,
    /// The pattern to match.
    pub lhs: Pattern,
    /// The pattern to instantiate under the matched binding.
    pub rhs: Pattern,
}

impl RewriteRule {
    /// Number of variables either side mentions.
    pub fn num_vars(&self) -> usize {
        self.lhs.num_vars().max(self.rhs.num_vars())
    }

    /// Brute-force check that `lhs` and `rhs` compute the same Boolean
    /// function over every assignment of the rule's variables.
    pub fn is_sound(&self) -> bool {
        let n = self.num_vars();
        (0..1u32 << n).all(|bits| {
            let env: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            self.lhs.eval(&env) == self.rhs.eval(&env)
        })
    }
}

impl fmt::Display for RewriteRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} => {}", self.name, self.lhs, self.rhs)
    }
}

/// The Ω rule set the greedy passes implement, as pattern→pattern data.
///
/// Variable convention (matches the paper's statement of the axioms):
/// `0 = x`, `1 = u`, `2 = y`, `3 = z`, `4 = v`.
pub fn omega_rules() -> Vec<RewriteRule> {
    use Pattern as P;
    let [x, u, y, z, v] = [0u8, 1, 2, 3, 4];
    vec![
        // Ω.A — associativity: ⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩. Swapping
        // x and z re-balances levels; the extractor decides which
        // orientation is profitable (this is what LevelBalance guesses
        // greedily).
        RewriteRule {
            name: "omega.A",
            lhs: P::maj(
                P::var(x),
                P::var(u),
                P::maj(P::var(y), P::var(u), P::var(z)),
            ),
            rhs: P::maj(
                P::var(z),
                P::var(u),
                P::maj(P::var(y), P::var(u), P::var(x)),
            ),
        },
        // Ψ.C — complementary associativity: ⟨x u ⟨y ū z⟩⟩ = ⟨x u ⟨y x z⟩⟩.
        // Substituting x for ū inside the inner gate frequently exposes
        // an Ω.M collapse the greedy pass already committed past.
        RewriteRule {
            name: "psi.C",
            lhs: P::maj(
                P::var(x),
                P::var(u),
                P::maj(P::var(y), P::var(u).complemented(), P::var(z)),
            ),
            rhs: P::maj(
                P::var(x),
                P::var(u),
                P::maj(P::var(y), P::var(x), P::var(z)),
            ),
        },
        // Ω.D right-to-left — the node-saving direction: two gates
        // sharing an (x, y) pair fuse into one.
        RewriteRule {
            name: "omega.D.rl",
            lhs: P::maj(
                P::maj(P::var(x), P::var(y), P::var(u)),
                P::maj(P::var(x), P::var(y), P::var(v)),
                P::var(z),
            ),
            rhs: P::maj(
                P::var(x),
                P::var(y),
                P::maj(P::var(u), P::var(v), P::var(z)),
            ),
        },
        // Ω.D left-to-right — the expanding direction. Locally worse
        // (one extra gate) but repeatedly enables rl-fusions elsewhere;
        // only an e-graph can afford to try it everywhere.
        RewriteRule {
            name: "omega.D.lr",
            lhs: P::maj(
                P::var(x),
                P::var(y),
                P::maj(P::var(u), P::var(v), P::var(z)),
            ),
            rhs: P::maj(
                P::maj(P::var(x), P::var(y), P::var(u)),
                P::maj(P::var(x), P::var(y), P::var(v)),
                P::var(z),
            ),
        },
        // Ω.I — self-duality: ⟨x y z⟩ = ¬⟨x̄ ȳ z̄⟩. Native to a
        // parity-aware e-graph (both sides intern to one e-node), listed
        // for completeness of the published algebra.
        RewriteRule {
            name: "omega.I",
            lhs: P::maj(P::var(x), P::var(y), P::var(z)),
            rhs: P::maj(
                P::var(x).complemented(),
                P::var(y).complemented(),
                P::var(z).complemented(),
            )
            .complemented(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_is_a_boolean_identity() {
        for rule in omega_rules() {
            assert!(rule.is_sound(), "unsound rule {rule}");
        }
    }

    #[test]
    fn rule_names_are_unique_and_fit_the_binding_array() {
        let rules = omega_rules();
        let mut names: Vec<&str> = rules.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rules.len(), "duplicate rule names");
        for rule in &rules {
            assert!(rule.num_vars() <= MAX_VARS, "{} overflows MAX_VARS", rule);
        }
    }

    #[test]
    fn a_broken_rule_is_detected() {
        // Sanity-check the checker itself: majority is not conjunction.
        let bogus = RewriteRule {
            name: "bogus",
            lhs: Pattern::maj(Pattern::var(0), Pattern::var(1), Pattern::var(2)),
            rhs: Pattern::var(0),
        };
        assert!(!bogus.is_sound());
    }

    #[test]
    fn display_is_readable() {
        let rules = omega_rules();
        assert_eq!(
            rules[0].to_string(),
            "omega.A: <x u <y u z>> => <z u <y u x>>"
        );
        assert_eq!(rules[4].to_string(), "omega.I: <x y z> => !<!x !y !z>");
    }

    #[test]
    fn eval_respects_complements() {
        let p = Pattern::maj(
            Pattern::var(0),
            Pattern::var(1).complemented(),
            Pattern::var(2),
        )
        .complemented();
        // ⟨x ū y⟩ at x=1, u=1, y=0 is maj(1,0,0) = 0; complemented = 1.
        assert!(p.eval(&[true, true, false]));
        assert_eq!(p.num_vars(), 3);
    }
}
