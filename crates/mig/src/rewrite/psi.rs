//! Ψ.C complementary associativity: `⟨x, u, ⟨y, ū, z⟩⟩ = ⟨x, u, ⟨y, x, z⟩⟩`.
//!
//! When an inner gate references the *complement* of an operand `u` it
//! shares with its parent, that complemented reference can be replaced by
//! the parent's other operand `x`, removing one complemented edge.
//! Algorithm 1 uses this pass to remove inverters; the endurance-aware
//! Algorithm 2 deliberately *omits* it because removing a node's single
//! complemented edge destroys the ideal one-inverter pattern that RM3
//! executes in a single instruction.
//!
//! (The DATE'17 paper's inline rendering of Ψ.C is typographically garbled;
//! the form implemented here is the original axiom from the DAC'14 MIG
//! paper, and is validated by exhaustive truth-table tests below.)

use crate::mig::Mig;
use crate::rewrite::{gate_children, old_single_fanout, other_two, rebuild_into};
use crate::signal::Signal;
use crate::view::StructuralView;

pub(crate) fn run(old: &Mig, new: &mut Mig, view: &mut StructuralView, map: &mut Vec<Signal>) {
    rebuild_into(old, new, view, map, |new, view, g, ch| {
        let old_children = view.old.children(g);
        for inner_idx in 0..3 {
            let m = ch[inner_idx];
            if m.is_complement() || !old_single_fanout(view, old_children[inner_idx]) {
                continue;
            }
            let inner = match gate_children(new, m) {
                Some(c) => c,
                None => continue,
            };
            let outer = other_two(ch, inner_idx);
            // Try both assignments of (x, u) to the outer pair: we need the
            // inner gate to contain ū.
            for (x, u) in [(outer[0], outer[1]), (outer[1], outer[0])] {
                if u.is_constant() {
                    continue; // constant polarity is free for PLiM anyway
                }
                if let Some(pos) = inner.iter().position(|&s| s == !u) {
                    let mut fixed = inner;
                    fixed[pos] = x;
                    let new_inner = new.add_maj(fixed[0], fixed[1], fixed[2]);
                    return new.add_maj(x, u, new_inner);
                }
            }
        }
        new.add_maj(ch[0], ch[1], ch[2])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::equiv_random;

    /// Single-pass entry point (shadows the buffer-reusing `super::run`).
    fn run(mig: &Mig) -> Mig {
        crate::rewrite::Pass::ComplementaryAssociativity.run(mig)
    }

    /// Exhaustive check of the axiom itself: ⟨x,u,⟨y,ū,z⟩⟩ = ⟨x,u,⟨y,x,z⟩⟩.
    #[test]
    fn axiom_truth_table() {
        let maj = |a: bool, b: bool, c: bool| (a && b) || (c && (a || b));
        for p in 0..16u32 {
            let (x, u, y, z) = (p & 1 == 1, p & 2 == 2, p & 4 == 4, p & 8 == 8);
            let lhs = maj(x, u, maj(y, !u, z));
            let rhs = maj(x, u, maj(y, x, z));
            assert_eq!(lhs, rhs, "x={x} u={u} y={y} z={z}");
        }
    }

    #[test]
    fn drops_complement_of_shared_operand() {
        let mut mig = Mig::new(4);
        let s: Vec<Signal> = mig.inputs().collect();
        let (x, u, y, z) = (s[0], s[1], s[2], s[3]);
        let inner = mig.add_maj(y, !u, z);
        let f = mig.add_maj(x, u, inner);
        mig.add_output(f);

        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 31).is_equal());
        // The old inner gate survives as a dead node until the next pass
        // garbage-collects it, so count live gates only.
        let live = out.live_mask();
        let total: usize = out
            .gates()
            .filter(|g| live[g.index()])
            .map(|g| out.complemented_edge_count(g))
            .sum();
        assert_eq!(total, 0, "Ψ.C must remove the inner complement");
    }

    #[test]
    fn unrelated_complements_untouched() {
        let mut mig = Mig::new(5);
        let s: Vec<Signal> = mig.inputs().collect();
        let inner = mig.add_maj(s[2], !s[4], s[3]);
        let f = mig.add_maj(s[0], s[1], inner);
        mig.add_output(f);
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 32).is_equal());
        let total: usize = out.gates().map(|g| out.complemented_edge_count(g)).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn shared_inner_gate_untouched() {
        let mut mig = Mig::new(4);
        let s: Vec<Signal> = mig.inputs().collect();
        let inner = mig.add_maj(s[2], !s[1], s[3]);
        let f = mig.add_maj(s[0], s[1], inner);
        mig.add_output(f);
        mig.add_output(inner);
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 33).is_equal());
        // inner keeps its complement (rewriting it would change the second
        // output or force duplication)
        let total: usize = out.gates().map(|g| out.complemented_edge_count(g)).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn complemented_shared_operand_matches() {
        // outer child is !u; inner contains u = !(!u): Ψ.C with u := !u.
        let mut mig = Mig::new(4);
        let s: Vec<Signal> = mig.inputs().collect();
        let inner = mig.add_maj(s[2], s[1], s[3]);
        let f = mig.add_maj(s[0], !s[1], inner);
        mig.add_output(f);
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 34).is_equal());
    }

    #[test]
    fn constant_shared_operand_skipped() {
        // u = TRUE: ū = FALSE appears in the inner gate, but constants are
        // free for PLiM, so the pass leaves the structure alone.
        let mut mig = Mig::new(3);
        let s: Vec<Signal> = mig.inputs().collect();
        let inner = mig.add_maj(s[1], Signal::FALSE, s[2]);
        let f = mig.add_maj(s[0], Signal::TRUE, inner);
        mig.add_output(f);
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 35).is_equal());
    }
}
