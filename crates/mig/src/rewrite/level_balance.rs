//! Level-balancing Ω.A: the paper's §III-B4 future-work objective.
//!
//! Blocked RRAMs arise when a node's value must wait many levels before its
//! fanout target is computed; the paper notes that "the issue of blocked
//! RRAMs could be considered as an objective during MIG rewriting to keep
//! the level differences between connected nodes low", while warning that
//! such rewriting may cost instructions. This pass implements that
//! objective: the associativity identity
//!
//! ```text
//! ⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩
//! ```
//!
//! is applied whenever the *inner* gate hides a signal `z` that is deeper
//! than the outer signal `x` — swapping them moves the late-arriving signal
//! up to the top gate (consumed sooner after it is produced) and pushes the
//! early signal down (less waiting). Unlike the conservative sharing-only
//! Ω.A pass, no hash hit is required; the inner gate must simply be
//! single-fanout so the restructuring cannot duplicate logic.

use crate::mig::Mig;
use crate::rewrite::{gate_children, old_single_fanout, other_two, rebuild_into, two_excluding};
use crate::signal::Signal;
use crate::view::StructuralView;

/// Level of a signal in the graph under construction, memoised per node.
fn level_of(new: &Mig, cache: &mut Vec<u32>, s: Signal) -> u32 {
    let idx = s.node().index();
    if idx >= cache.len() {
        cache.resize(new.num_nodes(), u32::MAX);
    }
    if cache[idx] != u32::MAX {
        return cache[idx];
    }
    let level = if new.is_gate(s.node()) {
        1 + new
            .children(s.node())
            .into_iter()
            .map(|c| level_of(new, cache, c))
            .max()
            .expect("gates have three children")
    } else {
        0
    };
    cache[idx] = level;
    level
}

pub(crate) fn run(
    old: &Mig,
    new: &mut Mig,
    view: &mut StructuralView,
    map: &mut Vec<Signal>,
    levels: &mut Vec<u32>,
) {
    levels.clear();
    rebuild_into(old, new, view, map, move |new, view, g, ch| {
        let old_children = view.old.children(g);
        for inner_idx in 0..3 {
            let m = ch[inner_idx];
            if m.is_complement() || !old_single_fanout(view, old_children[inner_idx]) {
                continue;
            }
            let inner = match gate_children(new, m) {
                Some(c) => c,
                None => continue,
            };
            let outer = other_two(ch, inner_idx);
            for &u in &outer {
                if !inner.contains(&u) {
                    continue;
                }
                let Some(&x) = outer.iter().find(|&&s| s != u) else {
                    continue;
                };
                let Some([r0, r1]) = two_excluding(&inner, u) else {
                    continue;
                };
                // Pick the deeper of the two remaining inner children as z.
                let (y, z) = {
                    let l0 = level_of(new, levels, r0);
                    let l1 = level_of(new, levels, r1);
                    if l0 >= l1 {
                        (r1, r0)
                    } else {
                        (r0, r1)
                    }
                };
                let lz = level_of(new, levels, z);
                let lx = level_of(new, levels, x);
                // Swap only when it strictly narrows the span: the hidden
                // signal is deeper than the exposed one.
                if lz > lx {
                    let shared = new.add_maj(y, u, x);
                    return new.add_maj(z, u, shared);
                }
            }
        }
        new.add_maj(ch[0], ch[1], ch[2])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::equiv_random;

    /// Single-pass entry point (shadows the buffer-reusing `super::run`).
    fn run(mig: &Mig) -> Mig {
        crate::rewrite::Pass::LevelBalance.run(mig)
    }

    #[test]
    fn deep_signal_is_pulled_up() {
        // z is 2 levels deep; x is an input. ⟨x u ⟨y u z⟩⟩ buries z one
        // level further — the pass lifts it to the top gate.
        let mut mig = Mig::new(5);
        let s: Vec<Signal> = mig.inputs().collect();
        let (x, u, y) = (s[0], s[1], s[2]);
        let d1 = mig.add_maj(s[2], s[3], s[4]);
        let z = mig.add_maj(d1, s[3], !s[0]); // level 2
        let inner = mig.add_maj(y, u, z);
        let f = mig.add_maj(x, u, inner);
        mig.add_output(f);

        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 31).is_equal());

        // Lifting z out of the inner gate un-buries the deep path: the
        // root consumes z directly and overall depth shrinks 4 → 3.
        let _ = inner;
        assert_eq!(mig.depth(), 4);
        assert_eq!(out.depth(), 3, "deep signal now feeds the root directly");
    }

    #[test]
    fn balanced_children_untouched() {
        // x and z at the same level: no swap.
        let mut mig = Mig::new(4);
        let s: Vec<Signal> = mig.inputs().collect();
        let inner = mig.add_maj(s[2], s[1], s[3]);
        let f = mig.add_maj(s[0], s[1], inner);
        mig.add_output(f);
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 32).is_equal());
        assert_eq!(out.num_live_gates(), 2);
        assert_eq!(out.depth(), mig.depth());
    }

    #[test]
    fn shared_inner_gate_not_restructured() {
        let mut mig = Mig::new(5);
        let s: Vec<Signal> = mig.inputs().collect();
        let deep = mig.add_maj(s[2], s[3], s[4]);
        let z = mig.add_maj(deep, s[3], s[0]);
        let inner = mig.add_maj(s[2], s[1], z);
        let f = mig.add_maj(s[0], s[1], inner);
        mig.add_output(f);
        mig.add_output(inner); // second fanout pins the inner gate
        let before = mig.num_live_gates();
        let out = run(&mig);
        assert!(equiv_random(&mig, &out, 16, 33).is_equal());
        assert_eq!(out.num_live_gates(), before);
    }

    #[test]
    fn preserves_function_on_random_graphs() {
        for seed in 0..6 {
            let mig = crate::rewrite::tests::random_mig(seed, 9, 250, 7);
            let out = run(&mig);
            assert!(
                equiv_random(&mig, &out, 16, seed ^ 0x1E7E1).is_equal(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn never_grows_the_graph() {
        for seed in 0..4 {
            let mig = crate::rewrite::tests::random_mig(seed + 50, 10, 300, 8);
            let out = run(&mig);
            assert!(
                out.num_live_gates() <= mig.num_live_gates(),
                "seed {seed}: {} -> {}",
                mig.num_live_gates(),
                out.num_live_gates()
            );
        }
    }
}
