//! Bit-parallel simulation and random equivalence checking.
//!
//! Each node value is a 64-bit word, so one pass evaluates 64 input patterns
//! at once. This is the workhorse behind functional verification of the
//! rewriting passes and of compiled PLiM programs.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::mig::{Mig, NodeKind};
use crate::signal::Signal;

/// Bitwise majority of three words.
#[inline]
pub fn maj_word(a: u64, b: u64, c: u64) -> u64 {
    (a & b) | (a & c) | (b & c)
}

impl Mig {
    /// Evaluates every node for 64 parallel input patterns.
    ///
    /// `inputs[i]` carries 64 values of primary input `i`. The returned
    /// vector is indexed by node index and holds the uncomplemented node
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn simulate_nodes(&self, inputs: &[u64]) -> Vec<u64> {
        let mut values = Vec::new();
        self.simulate_nodes_into(inputs, &mut values);
        values
    }

    /// Like [`Mig::simulate_nodes`], writing into a caller-owned buffer so
    /// repeated 64-pattern blocks (e.g. the rounds of
    /// [`equiv_random`](crate::simulate::equiv_random)) reuse one
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn simulate_nodes_into(&self, inputs: &[u64], values: &mut Vec<u64>) {
        assert_eq!(
            inputs.len(),
            self.num_inputs(),
            "input word count must match the number of primary inputs"
        );
        values.clear();
        values.resize(self.num_nodes(), 0);
        for n in self.node_ids() {
            values[n.index()] = match self.kind(n) {
                NodeKind::Constant => 0,
                NodeKind::Input(i) => inputs[i as usize],
                NodeKind::Majority([a, b, c]) => {
                    let va = signal_value(values, a);
                    let vb = signal_value(values, b);
                    let vc = signal_value(values, c);
                    maj_word(va, vb, vc)
                }
            };
        }
    }

    /// Evaluates the primary outputs for 64 parallel input patterns.
    pub fn simulate(&self, inputs: &[u64]) -> Vec<u64> {
        let values = self.simulate_nodes(inputs);
        self.outputs()
            .iter()
            .map(|&s| signal_value(&values, s))
            .collect()
    }

    /// Evaluates the primary outputs for a single Boolean input pattern.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
        self.simulate(&words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }
}

/// Reads a signal value out of a node-value table, honouring complement.
#[inline]
pub fn signal_value(values: &[u64], s: Signal) -> u64 {
    let v = values[s.node().index()];
    if s.is_complement() {
        !v
    } else {
        v
    }
}

/// Outcome of [`equiv_random`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Equivalence {
    /// No differing pattern found after all rounds.
    ProbablyEqual,
    /// Interfaces differ (input or output counts).
    InterfaceMismatch,
    /// A counterexample pattern was found.
    NotEqual {
        /// Simulation round in which the mismatch appeared.
        round: usize,
        /// Index of the first differing primary output.
        output: usize,
    },
}

impl Equivalence {
    /// `true` when no mismatch was observed.
    pub fn is_equal(self) -> bool {
        matches!(self, Equivalence::ProbablyEqual)
    }
}

/// Random simulation equivalence check between two MIGs with identical
/// interfaces. Each round compares 64 random patterns; the first round also
/// injects the all-zero and all-one patterns.
///
/// This is a Monte-Carlo check — `ProbablyEqual` is not a proof — but for
/// rewriting-pass validation on large graphs it is the standard tool.
pub fn equiv_random(a: &Mig, b: &Mig, rounds: usize, seed: u64) -> Equivalence {
    if a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs() {
        return Equivalence::InterfaceMismatch;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // One input buffer and one node-value buffer per graph, reused across
    // all rounds; outputs are compared straight out of the node values.
    let mut inputs = vec![0u64; a.num_inputs()];
    let mut va: Vec<u64> = Vec::new();
    let mut vb: Vec<u64> = Vec::new();
    for round in 0..rounds {
        for w in inputs.iter_mut() {
            *w = rng.gen();
        }
        if round == 0 {
            // Force pattern 0 = all-zeros, pattern 1 = all-ones.
            for w in inputs.iter_mut() {
                *w = (*w & !0b11) | 0b10;
            }
        }
        a.simulate_nodes_into(&inputs, &mut va);
        b.simulate_nodes_into(&inputs, &mut vb);
        let mismatch = a
            .outputs()
            .iter()
            .zip(b.outputs())
            .position(|(&sa, &sb)| signal_value(&va, sa) != signal_value(&vb, sb));
        if let Some(output) = mismatch {
            return Equivalence::NotEqual { round, output };
        }
    }
    Equivalence::ProbablyEqual
}

/// Generates `num_inputs` random 64-pattern input words from a seed.
pub fn random_input_words(num_inputs: usize, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..num_inputs).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Mig {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let m = mig.add_maj(a, b, c);
        mig.add_output(m);
        mig.add_output(!m);
        mig
    }

    #[test]
    fn maj_word_is_bitwise_majority() {
        assert_eq!(maj_word(0b0011, 0b0101, 0b0110), 0b0111);
        assert_eq!(maj_word(!0, 0, 0), 0);
        assert_eq!(maj_word(!0, !0, 0), !0);
    }

    #[test]
    fn simulate_majority_and_complement_output() {
        let mig = tiny();
        let out = mig.simulate(&[0b0011, 0b0101, 0b0110]);
        assert_eq!(out[0] & 0b1111, 0b0111);
        assert_eq!(out[1] & 0b1111, 0b1000);
    }

    #[test]
    fn evaluate_single_pattern() {
        let mig = tiny();
        assert_eq!(mig.evaluate(&[true, true, false]), vec![true, false]);
        assert_eq!(mig.evaluate(&[false, true, false]), vec![false, true]);
    }

    #[test]
    fn full_adder_matches_arithmetic() {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let (s, co) = mig.full_adder(a, b, c);
        mig.add_output(s);
        mig.add_output(co);
        for pattern in 0..8u32 {
            let bits = [pattern & 1 == 1, pattern & 2 == 2, pattern & 4 == 4];
            let out = mig.evaluate(&bits);
            let total = bits.iter().filter(|&&x| x).count() as u32;
            assert_eq!(out[0], total & 1 == 1, "sum for {bits:?}");
            assert_eq!(out[1], total >= 2, "carry for {bits:?}");
        }
    }

    #[test]
    fn xor_and_mux_semantics() {
        let mut mig = Mig::new(3);
        let [a, b, s] = [mig.input(0), mig.input(1), mig.input(2)];
        let x = mig.xor(a, b);
        let m = mig.mux(s, a, b);
        mig.add_output(x);
        mig.add_output(m);
        for p in 0..8u32 {
            let bits = [p & 1 == 1, p & 2 == 2, p & 4 == 4];
            let out = mig.evaluate(&bits);
            assert_eq!(out[0], bits[0] ^ bits[1]);
            assert_eq!(out[1], if bits[2] { bits[0] } else { bits[1] });
        }
    }

    #[test]
    fn equiv_detects_difference() {
        let mig1 = tiny();
        let mut mig2 = Mig::new(3);
        let [a, b, c] = [mig2.input(0), mig2.input(1), mig2.input(2)];
        let m = mig2.add_maj(a, b, c);
        mig2.add_output(m);
        mig2.add_output(m); // differs: second output not complemented
        assert!(matches!(
            equiv_random(&mig1, &mig2, 4, 42),
            Equivalence::NotEqual { .. }
        ));
    }

    #[test]
    fn equiv_detects_interface_mismatch() {
        let mig1 = tiny();
        let mig2 = Mig::new(2);
        assert_eq!(
            equiv_random(&mig1, &mig2, 1, 0),
            Equivalence::InterfaceMismatch
        );
    }

    #[test]
    fn equiv_accepts_identical() {
        let mig1 = tiny();
        let mig2 = tiny();
        assert!(equiv_random(&mig1, &mig2, 8, 7).is_equal());
    }
}
