//! Structural-hashing table: open addressing over a cheap 64-bit mix.
//!
//! [`Mig::add_maj`](crate::Mig::add_maj) runs on every node insertion of
//! every rewriting pass (~50 full-graph rebuilds per `rewrite()` call), so
//! the strash lookup is the hottest operation in the whole kernel. The
//! `std` `HashMap` it replaces pays SipHash on every probe and cannot hand
//! its allocation to the next pass. This table instead
//!
//! * hashes the sorted `[Signal; 3]` triple with an FxHash-style
//!   multiply-xorshift mix (a handful of ALU ops),
//! * stores only `node index + 1` per slot (4 bytes; `0` = empty) and
//!   re-reads the key from the graph's node array on probe, since a gate's
//!   children *are* its key,
//! * supports [`Strash::clear`], which zeroes the slots but keeps the
//!   allocation, so a table can be reused across pass rebuilds.
//!
//! Deduplication semantics are exactly those of the `HashMap`: keys are the
//! canonically sorted child triples, compared for full equality (node ids
//! *and* complement attributes) on every probe.

use crate::signal::{NodeId, Signal};

/// Multiplier used by the FxHash family (empirically good avalanche for
/// power-of-two table sizes once finished with a xor-shift).
const FX: u64 = 0x517c_c1b7_2722_0a95;

/// Cheap 64-bit mix of a sorted child triple.
#[inline]
fn mix(key: &[Signal; 3]) -> u64 {
    let lo = key[0].raw() as u64 | ((key[1].raw() as u64) << 32);
    let hi = key[2].raw() as u64;
    let mut h = lo.wrapping_mul(FX);
    h ^= hi.wrapping_mul(FX).rotate_left(32);
    h ^= h >> 29;
    h = h.wrapping_mul(FX);
    h ^ (h >> 32)
}

/// Open-addressing structural-hash table mapping sorted child triples to
/// the gate that owns them. Keys live in the graph's node array; each slot
/// holds the gate id plus a hash tag so that probe chains resolve almost
/// every collision in-slot instead of dereferencing the node array (a
/// random cache miss per step — the dominant probe cost on large graphs,
/// where a rebuild's inserts are nearly all misses walking short chains).
///
/// [`Mig`](crate::Mig) owns one internally; the type is public for
/// callers building their own graph structures over [`Signal`] triples.
///
/// # Examples
///
/// ```
/// use rlim_mig::{NodeId, Signal, Strash};
///
/// // The node array *is* the key store: ids stored in the table index it.
/// let mut nodes: Vec<[Signal; 3]> = vec![[Signal::FALSE; 3]; 3];
/// let key = [
///     Signal::new(NodeId::new(1), false),
///     Signal::new(NodeId::new(2), true),
///     Signal::new(NodeId::new(2), false),
/// ];
/// let mut table = Strash::new();
/// let id = NodeId::new(nodes.len() as u32);
/// assert_eq!(table.insert_or_get(&key, id, &nodes), None); // fresh gate
/// nodes.push(key);
/// assert_eq!(table.get(&key, &nodes), Some(id));           // deduplicated
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Strash {
    /// Low 32 bits: `raw node index + 1`, `0` = empty slot. High 32 bits:
    /// the key hash's upper half. Length is always a power of two.
    slots: Vec<u64>,
    len: usize,
}

/// Packs a slot entry from a hash and a node id.
#[inline]
fn entry(hash: u64, id: u32) -> u64 {
    (hash & !0xFFFF_FFFF) | (id as u64 + 1)
}

impl Strash {
    /// An empty table; no allocation until the first insert.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored gates.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table stores no gates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Forgets every entry but keeps the slot allocation, so the table can
    /// be reused by the next graph rebuild without reallocating.
    pub fn clear(&mut self) {
        self.slots.fill(0);
        self.len = 0;
    }

    /// Looks up the gate whose sorted children equal `key`. `nodes` must be
    /// the node array the stored ids point into.
    #[inline]
    pub fn get(&self, key: &[Signal; 3], nodes: &[[Signal; 3]]) -> Option<NodeId> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let hash = mix(key);
        let tag = hash & !0xFFFF_FFFF;
        let mut i = hash as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot == 0 {
                return None;
            }
            if slot & !0xFFFF_FFFF == tag {
                let id = (slot as u32) - 1;
                if &nodes[id as usize] == key {
                    return Some(NodeId::new(id));
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Single-probe lookup-or-insert: returns the existing gate whose
    /// sorted children equal `key`, or claims the chain's empty slot for
    /// `id` and returns `None`. One chain walk serves both outcomes — a
    /// rebuild's inserts are nearly all misses, and a separate
    /// `get`-then-insert would walk every chain twice.
    ///
    /// `id` must be the id the caller will assign if the key is absent
    /// (i.e. the next node index); `nodes` need not contain it yet.
    #[inline]
    pub fn insert_or_get(
        &mut self,
        key: &[Signal; 3],
        id: NodeId,
        nodes: &[[Signal; 3]],
    ) -> Option<NodeId> {
        // Grow at 7/8 occupancy (counting the entry we may add) *before*
        // probing, so the claimed slot survives.
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow(nodes);
        }
        let mask = self.slots.len() - 1;
        let hash = mix(key);
        let tag = hash & !0xFFFF_FFFF;
        let mut i = hash as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot == 0 {
                self.slots[i] = entry(hash, id.raw());
                self.len += 1;
                return None;
            }
            if slot & !0xFFFF_FFFF == tag {
                let existing = (slot as u32) - 1;
                if &nodes[existing as usize] == key {
                    return Some(NodeId::new(existing));
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Doubles the slot array and rehashes every stored id. The tag is the
    /// hash's upper half, so rehashing needs no access to `nodes` beyond
    /// recomputing slot positions — done from the stored keys.
    fn grow(&mut self, nodes: &[[Signal; 3]]) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![0u64; new_cap]);
        let mask = new_cap - 1;
        for slot in old {
            if slot == 0 {
                continue;
            }
            let key = &nodes[(slot as u32 - 1) as usize];
            let mut i = mix(key) as usize & mask;
            while self.slots[i] != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(idx: u32, c: bool) -> Signal {
        Signal::new(NodeId::new(idx), c)
    }

    #[test]
    fn get_insert_round_trip() {
        let mut nodes: Vec<[Signal; 3]> = vec![[Signal::FALSE; 3]; 4]; // const + 3 inputs
        let mut table = Strash::new();
        let key = [sig(1, false), sig(2, true), sig(3, false)];
        assert_eq!(table.get(&key, &nodes), None);
        let id = NodeId::new(nodes.len() as u32);
        assert_eq!(table.insert_or_get(&key, id, &nodes), None);
        nodes.push(key);
        assert_eq!(table.get(&key, &nodes), Some(id));
        // A second insert of the same key resolves to the existing gate.
        let next = NodeId::new(nodes.len() as u32);
        assert_eq!(table.insert_or_get(&key, next, &nodes), Some(id));
        // A different complement pattern is a different key.
        let other = [sig(1, false), sig(2, false), sig(3, false)];
        assert_eq!(table.get(&other, &nodes), None);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity_and_keeps_all_entries() {
        let mut nodes: Vec<[Signal; 3]> = vec![[Signal::FALSE; 3]; 3];
        let mut table = Strash::new();
        let mut keys = Vec::new();
        for i in 0..1000u32 {
            let key = [sig(1, false), sig(2, i % 2 == 0), sig(3 + i, false)];
            let id = NodeId::new(nodes.len() as u32);
            assert_eq!(table.insert_or_get(&key, id, &nodes), None);
            nodes.push(key);
            keys.push((key, id));
        }
        for (key, id) in &keys {
            assert_eq!(table.get(key, &nodes), Some(*id));
        }
        assert_eq!(table.len(), 1000);
    }

    #[test]
    fn clear_keeps_allocation_and_forgets_entries() {
        let mut nodes: Vec<[Signal; 3]> = vec![[Signal::FALSE; 3]; 2];
        let mut table = Strash::new();
        let key = [sig(0, false), sig(1, true), sig(1, false)];
        let id = NodeId::new(nodes.len() as u32);
        assert_eq!(table.insert_or_get(&key, id, &nodes), None);
        nodes.push(key);
        let cap = table.slots.len();
        table.clear();
        assert_eq!(table.len(), 0);
        assert_eq!(table.slots.len(), cap, "allocation must survive clear()");
        assert_eq!(table.get(&key, &nodes), None);
    }

    #[test]
    fn mix_spreads_adjacent_keys() {
        // Not a statistical test — just a guard against a degenerate mix
        // (e.g. ignoring one of the three signals).
        let base = [sig(10, false), sig(20, false), sig(30, false)];
        let mut seen = std::collections::HashSet::new();
        for i in 0..3 {
            for c in [false, true] {
                let mut k = base;
                k[i] = k[i].with_complement(c);
                seen.insert(mix(&k));
            }
        }
        assert_eq!(seen.len(), 4, "complement flips must change the hash");
        let shifted = [sig(11, false), sig(20, false), sig(30, false)];
        assert_ne!(mix(&base), mix(&shifted));
    }
}
