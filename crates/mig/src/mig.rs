//! The Majority-Inverter Graph container.

use std::fmt;

use crate::signal::{NodeId, Signal};
use crate::strash::Strash;

/// Classification of a node inside a [`Mig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The constant-false node (always node 0).
    Constant,
    /// The `i`-th primary input.
    Input(u32),
    /// A 3-input majority gate.
    Majority([Signal; 3]),
}

/// A Majority-Inverter Graph: 3-input majority nodes plus complemented edges.
///
/// The graph is immutable-by-construction: nodes are appended with children
/// that already exist, so node index order is a topological order. Rewriting
/// (see [`crate::rewrite`]) produces new graphs instead of mutating in place.
///
/// Structural hashing and the paper's Ω.M (majority) axiom are applied on
/// every [`Mig::add_maj`], so trivially redundant gates are never created.
///
/// # Examples
///
/// ```
/// use rlim_mig::Mig;
///
/// let mut mig = Mig::new(3);
/// let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
/// let carry = mig.add_maj(a, b, c);
/// mig.add_output(carry);
/// assert_eq!(mig.num_gates(), 1);
/// assert_eq!(mig.num_outputs(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mig {
    /// Children of each node; unused (all-FALSE) for constant and inputs.
    nodes: Vec<[Signal; 3]>,
    num_inputs: u32,
    outputs: Vec<Signal>,
    strash: Strash,
}

impl Mig {
    /// Creates a graph with `num_inputs` primary inputs and no gates.
    pub fn new(num_inputs: usize) -> Self {
        let num_inputs = u32::try_from(num_inputs).expect("too many inputs");
        let nodes = vec![[Signal::FALSE; 3]; num_inputs as usize + 1];
        Mig {
            nodes,
            num_inputs,
            outputs: Vec::new(),
            strash: Strash::new(),
        }
    }

    /// Clears the graph back to `num_inputs` fresh inputs and no gates,
    /// **keeping every internal allocation** (node array, output list,
    /// strash slots). This is what makes the rewrite engine's
    /// double-buffering allocation-free: the ~50 rebuilds per `rewrite()`
    /// call recycle two `Mig` buffers instead of constructing fresh ones.
    pub fn reset(&mut self, num_inputs: usize) {
        let num_inputs = u32::try_from(num_inputs).expect("too many inputs");
        self.nodes.clear();
        self.nodes
            .resize(num_inputs as usize + 1, [Signal::FALSE; 3]);
        self.num_inputs = num_inputs;
        self.outputs.clear();
        self.strash.clear();
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs as usize
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of majority gates (excludes constant and inputs).
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.nodes.len() - 1 - self.num_inputs as usize
    }

    /// Total node count: constant + inputs + gates.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The uncomplemented signal of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs`.
    #[inline]
    pub fn input(&self, i: usize) -> Signal {
        assert!(i < self.num_inputs as usize, "input index out of range");
        Signal::new(NodeId::new(i as u32 + 1), false)
    }

    /// All primary input signals, in order.
    pub fn inputs(&self) -> impl Iterator<Item = Signal> + '_ {
        (0..self.num_inputs as usize).map(|i| self.input(i))
    }

    /// The primary output signals.
    #[inline]
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// Registers `s` as the next primary output.
    ///
    /// # Panics
    ///
    /// Panics if `s` points past the last node — a dangling output would
    /// otherwise surface only as an index panic in a later traversal.
    pub fn add_output(&mut self, s: Signal) {
        assert!(
            s.node().index() < self.nodes.len(),
            "dangling primary output {s}: graph has {} nodes",
            self.nodes.len()
        );
        self.outputs.push(s);
    }

    /// Classifies a node.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        let idx = n.index();
        debug_assert!(idx < self.nodes.len());
        if idx == 0 {
            NodeKind::Constant
        } else if idx <= self.num_inputs as usize {
            NodeKind::Input(idx as u32 - 1)
        } else {
            NodeKind::Majority(self.nodes[idx])
        }
    }

    /// Whether `n` is a majority gate.
    #[inline]
    pub fn is_gate(&self, n: NodeId) -> bool {
        n.index() > self.num_inputs as usize
    }

    /// Children of a majority gate.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a gate.
    #[inline]
    pub fn children(&self, n: NodeId) -> [Signal; 3] {
        assert!(self.is_gate(n), "{n} is not a majority gate");
        self.nodes[n.index()]
    }

    /// Iterates over all gate ids in topological (index) order.
    pub fn gates(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.num_inputs as usize + 1..self.nodes.len()).map(|i| NodeId::new(i as u32))
    }

    /// Iterates over every node id (constant, inputs, gates) in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId::new(i as u32))
    }

    /// Applies the Ω.M simplification rules to a child triple without
    /// creating a node. Returns `Ok(signal)` when the majority collapses to
    /// an existing signal, or `Err(children)` with the canonically sorted
    /// triple otherwise.
    ///
    /// Rules (paper §III-A-1):
    /// * `⟨x x z⟩ = x`
    /// * `⟨x x̄ z⟩ = z`
    pub fn simplify_maj(a: Signal, b: Signal, c: Signal) -> Result<Signal, [Signal; 3]> {
        // Duplicate / complementary pairs.
        if a == b {
            return Ok(a);
        }
        if a == !b {
            return Ok(c);
        }
        if a == c {
            return Ok(a);
        }
        if a == !c {
            return Ok(b);
        }
        if b == c {
            return Ok(b);
        }
        if b == !c {
            return Ok(a);
        }
        // Three-element sorting network — cheaper than the generic slice
        // sort on this hottest of paths (one call per add_maj).
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let (b, c) = if b <= c { (b, c) } else { (c, b) };
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        Err([a, b, c])
    }

    /// Adds (or finds) the majority gate `⟨a b c⟩`.
    ///
    /// Applies Ω.M simplification and structural hashing, so the result may
    /// be an existing signal. Children are stored sorted; complement
    /// attributes are preserved exactly (no automatic inverter
    /// canonicalisation — the paper's rewriting algorithms manage inverters
    /// explicitly).
    pub fn add_maj(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        match Mig::simplify_maj(a, b, c) {
            Ok(s) => s,
            Err(key) => {
                debug_assert!(key.iter().all(|s| s.node().index() < self.nodes.len()));
                let id = NodeId::new(self.nodes.len() as u32);
                match self.strash.insert_or_get(&key, id, &self.nodes) {
                    Some(existing) => Signal::new(existing, false),
                    None => {
                        self.nodes.push(key);
                        Signal::new(id, false)
                    }
                }
            }
        }
    }

    /// Looks up `⟨a b c⟩` without creating it. Returns the signal the triple
    /// simplifies or hashes to, if it already exists in the graph.
    pub fn lookup_maj(&self, a: Signal, b: Signal, c: Signal) -> Option<Signal> {
        match Mig::simplify_maj(a, b, c) {
            Ok(s) => Some(s),
            Err(key) => self
                .strash
                .get(&key, &self.nodes)
                .map(|n| Signal::new(n, false)),
        }
    }

    // ---- Convenience logic constructors -------------------------------

    /// `a ∧ b = ⟨a b 0⟩`.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        self.add_maj(a, b, Signal::FALSE)
    }

    /// `a ∨ b = ⟨a b 1⟩`.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        self.add_maj(a, b, Signal::TRUE)
    }

    /// `a ⊕ b = (a ∧ b̄) ∨ (ā ∧ b)`.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        let t = self.and(a, !b);
        let e = self.and(!a, b);
        self.or(t, e)
    }

    /// `s ? t : e = (s ∧ t) ∨ (s̄ ∧ e)`.
    pub fn mux(&mut self, s: Signal, t: Signal, e: Signal) -> Signal {
        let x = self.and(s, t);
        let y = self.and(!s, e);
        self.or(x, y)
    }

    /// Full adder `(sum, carry)` in native MIG form:
    /// `carry = ⟨a b c⟩`, `sum = ⟨carrȳ c ⟨a b c̄⟩⟩` (3 gates total).
    pub fn full_adder(&mut self, a: Signal, b: Signal, c: Signal) -> (Signal, Signal) {
        let carry = self.add_maj(a, b, c);
        let t = self.add_maj(a, b, !c);
        let sum = self.add_maj(!carry, c, t);
        (sum, carry)
    }

    /// Half adder `(sum, carry)`.
    pub fn half_adder(&mut self, a: Signal, b: Signal) -> (Signal, Signal) {
        let carry = self.and(a, b);
        let sum = self.xor(a, b);
        (sum, carry)
    }

    // ---- Structural queries --------------------------------------------

    /// Per-node logic level: constants and inputs are level 0, a gate is one
    /// more than the maximum level of its children. Indexed by node index.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.nodes.len()];
        for g in self.gates() {
            let ch = self.nodes[g.index()];
            let l = ch
                .iter()
                .map(|s| levels[s.node().index()])
                .max()
                .unwrap_or(0);
            levels[g.index()] = l + 1;
        }
        levels
    }

    /// Depth of the graph: maximum level over primary outputs.
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|s| levels[s.node().index()])
            .max()
            .unwrap_or(0)
    }

    /// Per-node fanout count, **including** primary-output references.
    /// Indexed by node index.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for g in self.gates() {
            for s in self.nodes[g.index()] {
                counts[s.node().index()] += 1;
            }
        }
        for s in &self.outputs {
            counts[s.node().index()] += 1;
        }
        counts
    }

    /// Per-node list of gate parents (excludes primary-output references).
    pub fn parents(&self) -> Vec<Vec<NodeId>> {
        let mut parents = vec![Vec::new(); self.nodes.len()];
        for g in self.gates() {
            for s in self.nodes[g.index()] {
                parents[s.node().index()].push(g);
            }
        }
        parents
    }

    /// Number of complemented gate-child edges pointing at non-constant
    /// nodes, per gate. Constant children are excluded because PLiM reads
    /// constants for free in either polarity.
    pub fn complemented_edge_count(&self, n: NodeId) -> usize {
        self.children(n)
            .iter()
            .filter(|s| !s.is_constant() && s.is_complement())
            .count()
    }

    /// Total complemented (non-constant) edges over all gates and outputs.
    pub fn total_complemented_edges(&self) -> usize {
        let gate_edges: usize = self.gates().map(|g| self.complemented_edge_count(g)).sum();
        let po_edges = self
            .outputs
            .iter()
            .filter(|s| !s.is_constant() && s.is_complement())
            .count();
        gate_edges + po_edges
    }

    /// Gates reachable from the primary outputs (live gates). Returns a
    /// boolean mask indexed by node index.
    pub fn live_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = Vec::new();
        for s in &self.outputs {
            if !live[s.node().index()] {
                live[s.node().index()] = true;
                stack.push(s.node());
            }
        }
        while let Some(n) = stack.pop() {
            if self.is_gate(n) {
                for s in self.nodes[n.index()] {
                    if !live[s.node().index()] {
                        live[s.node().index()] = true;
                        stack.push(s.node());
                    }
                }
            }
        }
        live
    }

    /// Number of live (output-reachable) gates.
    pub fn num_live_gates(&self) -> usize {
        let live = self.live_mask();
        self.gates().filter(|g| live[g.index()]).count()
    }

    /// A 128-bit structural fingerprint: two independent FxHash-style
    /// streams over the input count, every gate's child triple (in
    /// topological node order) and the primary-output list.
    ///
    /// Two graphs built by the same construction sequence fingerprint
    /// identically, so a benchmark rebuilt in another process — or a
    /// BLIF netlist re-parsed by a long-running daemon — lands on the
    /// same value. This is the source half of the daemon's compile-cache
    /// key; 128 bits keep accidental collisions negligible for any
    /// realistic cache population.
    pub fn fingerprint(&self) -> u128 {
        // Same multiplier as the strash (FxHash's 64-bit constant); the
        // two lanes differ by seed and rotation so they never collapse
        // into one 64-bit stream.
        const FX: u64 = 0x517c_c1b7_2722_0a95;
        fn mix(h: u64, word: u64, rot: u32) -> u64 {
            (h.rotate_left(rot) ^ word).wrapping_mul(FX)
        }
        let mut a = 0x243f_6a88_85a3_08d3u64;
        let mut b = 0x1319_8a2e_0370_7344u64;
        let mut absorb = |word: u64| {
            a = mix(a, word, 5);
            b = mix(b, word, 23);
        };
        absorb(self.num_inputs as u64);
        absorb(self.outputs.len() as u64);
        for children in &self.nodes[self.num_inputs as usize + 1..] {
            let [x, y, z] = children;
            absorb(u64::from(x.raw()) | (u64::from(y.raw()) << 32));
            absorb(u64::from(z.raw()));
        }
        for s in &self.outputs {
            absorb(u64::from(s.raw()));
        }
        (u128::from(a) << 64) | u128::from(b)
    }
}

impl fmt::Display for Mig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mig(inputs={}, gates={}, outputs={}, depth={})",
            self.num_inputs(),
            self.num_gates(),
            self.num_outputs(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let mig = Mig::new(2);
        assert_eq!(mig.num_inputs(), 2);
        assert_eq!(mig.num_gates(), 0);
        assert_eq!(mig.num_nodes(), 3);
        assert_eq!(mig.kind(NodeId::CONST), NodeKind::Constant);
        assert_eq!(mig.kind(NodeId::new(1)), NodeKind::Input(0));
        assert_eq!(mig.kind(NodeId::new(2)), NodeKind::Input(1));
    }

    #[test]
    fn fingerprint_tracks_structure() {
        let build = |complement: bool| {
            let mut mig = Mig::new(3);
            let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
            let g = mig.add_maj(a, if complement { !b } else { b }, c);
            mig.add_output(g);
            mig
        };
        // Identical construction sequences fingerprint identically…
        assert_eq!(build(false).fingerprint(), build(false).fingerprint());
        // …and a single complemented edge separates them.
        assert_ne!(build(false).fingerprint(), build(true).fingerprint());
        // Output polarity and interface width matter too.
        let mut flipped = build(false);
        let out = flipped.outputs()[0];
        flipped.outputs.clear();
        flipped.add_output(!out);
        assert_ne!(build(false).fingerprint(), flipped.fingerprint());
        assert_ne!(Mig::new(2).fingerprint(), Mig::new(3).fingerprint());
    }

    #[test]
    fn omega_m_duplicate_child() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        assert_eq!(mig.add_maj(a, a, b), a);
        assert_eq!(mig.add_maj(b, a, b), b);
        assert_eq!(mig.num_gates(), 0);
    }

    #[test]
    fn omega_m_complement_pair() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        assert_eq!(mig.add_maj(a, !a, b), b);
        assert_eq!(mig.add_maj(b, a, !b), a);
        assert_eq!(mig.add_maj(!a, b, a), b);
        assert_eq!(mig.num_gates(), 0);
    }

    #[test]
    fn constant_simplifications() {
        let mut mig = Mig::new(1);
        let a = mig.input(0);
        // ⟨0 1 a⟩ = a (complementary constant pair)
        assert_eq!(mig.add_maj(Signal::FALSE, Signal::TRUE, a), a);
        // ⟨0 0 a⟩ = 0
        assert_eq!(mig.add_maj(Signal::FALSE, Signal::FALSE, a), Signal::FALSE);
        assert_eq!(mig.num_gates(), 0);
    }

    #[test]
    fn strash_dedups_permutations_and_keeps_complements() {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let g1 = mig.add_maj(a, !b, c);
        let g2 = mig.add_maj(c, a, !b);
        let g3 = mig.add_maj(!b, c, a);
        assert_eq!(g1, g2);
        assert_eq!(g1, g3);
        // A different complement pattern is a different node.
        let g4 = mig.add_maj(a, b, c);
        assert_ne!(g1, g4);
        assert_eq!(mig.num_gates(), 2);
    }

    #[test]
    fn lookup_does_not_create() {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        assert_eq!(mig.lookup_maj(a, b, c), None);
        let g = mig.add_maj(a, b, c);
        assert_eq!(mig.lookup_maj(c, b, a), Some(g));
        assert_eq!(mig.lookup_maj(a, a, b), Some(a));
        assert_eq!(mig.num_gates(), 1);
    }

    #[test]
    fn levels_and_depth() {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let g1 = mig.add_maj(a, b, c);
        let g2 = mig.and(g1, a);
        mig.add_output(g2);
        let levels = mig.levels();
        assert_eq!(levels[g1.node().index()], 1);
        assert_eq!(levels[g2.node().index()], 2);
        assert_eq!(mig.depth(), 2);
    }

    #[test]
    fn fanouts_count_po_refs() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        let g = mig.and(a, b);
        mig.add_output(g);
        mig.add_output(!g);
        let counts = mig.fanout_counts();
        assert_eq!(counts[g.node().index()], 2);
        assert_eq!(counts[a.node().index()], 1);
        // constant node referenced by the AND gate
        assert_eq!(counts[NodeId::CONST.index()], 1);
    }

    #[test]
    fn complemented_edges_ignore_constants() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        let g = mig.or(!a, b); // ⟨!a b 1⟩ — TRUE child must not count
        assert_eq!(mig.complemented_edge_count(g.node()), 1);
    }

    #[test]
    fn live_mask_excludes_dangling() {
        let mut mig = Mig::new(2);
        let a = mig.input(0);
        let b = mig.input(1);
        let g1 = mig.and(a, b);
        let _dead = mig.or(a, b);
        mig.add_output(g1);
        assert_eq!(mig.num_gates(), 2);
        assert_eq!(mig.num_live_gates(), 1);
    }

    /// The open-addressing strash must dedup exactly like the `HashMap`
    /// keyed on sorted triples that it replaced: same signal for every
    /// child permutation, distinct nodes for distinct complement patterns.
    #[test]
    fn strash_matches_hashmap_model_on_random_triples() {
        use rand::{Rng, SeedableRng};
        use std::collections::HashMap;
        for seed in 0..4u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut mig = Mig::new(6);
            let mut model: HashMap<[Signal; 3], Signal> = HashMap::new();
            let mut pool: Vec<Signal> = mig.inputs().collect();
            pool.push(Signal::FALSE);
            for _ in 0..3000 {
                let pick = |rng: &mut rand_chacha::ChaCha8Rng| {
                    let s = pool[rng.gen_range(0..pool.len())];
                    s.complement_if(rng.gen_bool(0.4))
                };
                let (a, b, c) = (pick(&mut rng), pick(&mut rng), pick(&mut rng));
                // Insert a random permutation of the triple; the strash
                // must resolve every ordering to the same signal.
                let perm: [Signal; 3] = [[a, b, c], [c, a, b], [b, c, a]][rng.gen_range(0..3usize)];
                let got = mig.add_maj(perm[0], perm[1], perm[2]);
                let expect = match Mig::simplify_maj(a, b, c) {
                    Ok(s) => s,
                    Err(key) => *model.entry(key).or_insert(got),
                };
                assert_eq!(got, expect, "seed {seed}: ⟨{a} {b} {c}⟩");
                pool.push(got);
            }
            assert_eq!(mig.num_gates(), model.len(), "seed {seed}");
        }
    }

    #[test]
    fn reset_keeps_dedup_and_clears_state() {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let g = mig.add_maj(a, b, c);
        mig.add_output(g);

        mig.reset(2);
        assert_eq!(mig.num_inputs(), 2);
        assert_eq!(mig.num_gates(), 0);
        assert_eq!(mig.num_outputs(), 0);

        // The recycled strash must not remember pre-reset gates, and must
        // still dedup new ones.
        let a2 = mig.input(0);
        let b2 = mig.input(1);
        let g1 = mig.and(a2, b2);
        let g2 = mig.and(b2, a2);
        assert_eq!(g1, g2);
        assert_eq!(mig.num_gates(), 1);
    }

    #[test]
    #[should_panic(expected = "dangling primary output")]
    fn dangling_output_rejected() {
        let mut mig = Mig::new(2);
        mig.add_output(Signal::new(NodeId::new(40), false));
    }

    #[test]
    fn full_adder_truth_table() {
        // checked exhaustively via simulation in simulate.rs tests; here a
        // structural check: exactly three gates.
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let (s, co) = mig.full_adder(a, b, c);
        mig.add_output(s);
        mig.add_output(co);
        assert_eq!(mig.num_gates(), 3);
    }
}
