//! Node identifiers and complement-edge signals.
//!
//! A [`Signal`] is an edge in a Majority-Inverter Graph: a reference to a
//! node together with an optional complement (inversion) attribute. MIGs owe
//! much of their compactness to these complemented edges, and the DATE 2017
//! endurance paper manipulates them explicitly (the `RM3` operation inverts
//! exactly one operand, so a node with exactly one complemented child is the
//! "ideal" case for PLiM compilation).

use std::fmt;
use std::ops::Not;

/// Index of a node inside a [`crate::Mig`].
///
/// Node `0` is always the constant-false node; nodes `1..=num_inputs` are the
/// primary inputs; all following nodes are majority gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant node (index 0). `Signal::FALSE`/`Signal::TRUE` point here.
    pub const CONST: NodeId = NodeId(0);

    /// Creates a node id from a raw index.
    #[inline]
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Raw index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw index as `u32`.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An edge pointing at a node, possibly complemented.
///
/// Packed as `index << 1 | complement` so a signal is a single `u32`.
///
/// # Examples
///
/// ```
/// use rlim_mig::{NodeId, Signal};
///
/// let s = Signal::new(NodeId::new(3), false);
/// assert_eq!(s.node(), NodeId::new(3));
/// assert!(!s.is_complement());
/// assert_eq!((!s).node(), s.node());
/// assert!((!s).is_complement());
/// assert_eq!(!!s, s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signal(u32);

impl Signal {
    /// Constant logic 0: the constant node, uncomplemented.
    pub const FALSE: Signal = Signal(0);
    /// Constant logic 1: the constant node, complemented.
    pub const TRUE: Signal = Signal(1);

    /// Creates a signal from a node and a complement flag.
    #[inline]
    pub fn new(node: NodeId, complement: bool) -> Self {
        Signal(node.0 << 1 | complement as u32)
    }

    /// Creates a constant signal of the given value.
    ///
    /// ```
    /// use rlim_mig::Signal;
    /// assert_eq!(Signal::constant(true), Signal::TRUE);
    /// assert_eq!(Signal::constant(false), Signal::FALSE);
    /// ```
    #[inline]
    pub fn constant(value: bool) -> Self {
        if value {
            Signal::TRUE
        } else {
            Signal::FALSE
        }
    }

    /// The node this signal points at.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the edge is complemented.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the two constant signals.
    #[inline]
    pub fn is_constant(self) -> bool {
        self.node() == NodeId::CONST
    }

    /// The constant value, if this is a constant signal.
    #[inline]
    pub fn constant_value(self) -> Option<bool> {
        if self.is_constant() {
            Some(self.is_complement())
        } else {
            None
        }
    }

    /// Returns the same edge with the requested complement attribute.
    #[inline]
    pub fn with_complement(self, complement: bool) -> Self {
        Signal(self.0 & !1 | complement as u32)
    }

    /// XORs the complement attribute with `flip`.
    ///
    /// ```
    /// use rlim_mig::Signal;
    /// let s = Signal::TRUE;
    /// assert_eq!(s.complement_if(true), Signal::FALSE);
    /// assert_eq!(s.complement_if(false), Signal::TRUE);
    /// ```
    #[inline]
    pub fn complement_if(self, flip: bool) -> Self {
        Signal(self.0 ^ flip as u32)
    }

    /// Raw packed representation (`index << 1 | complement`).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a signal from [`Signal::raw`].
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        Signal(raw)
    }
}

impl Not for Signal {
    type Output = Signal;

    #[inline]
    fn not(self) -> Signal {
        Signal(self.0 ^ 1)
    }
}

impl From<NodeId> for Signal {
    /// The uncomplemented edge to `node`.
    #[inline]
    fn from(node: NodeId) -> Signal {
        Signal::new(node, false)
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.node().0)
        } else {
            write!(f, "n{}", self.node().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_the_const_node() {
        assert_eq!(Signal::FALSE.node(), NodeId::CONST);
        assert_eq!(Signal::TRUE.node(), NodeId::CONST);
        assert!(!Signal::FALSE.is_complement());
        assert!(Signal::TRUE.is_complement());
        assert_eq!(!Signal::FALSE, Signal::TRUE);
        assert_eq!(Signal::FALSE.constant_value(), Some(false));
        assert_eq!(Signal::TRUE.constant_value(), Some(true));
    }

    #[test]
    fn pack_round_trip() {
        for idx in [0u32, 1, 2, 1000, u32::MAX >> 1] {
            for c in [false, true] {
                let s = Signal::new(NodeId::new(idx), c);
                assert_eq!(s.node(), NodeId::new(idx));
                assert_eq!(s.is_complement(), c);
                assert_eq!(Signal::from_raw(s.raw()), s);
            }
        }
    }

    #[test]
    fn complement_algebra() {
        let s = Signal::new(NodeId::new(7), false);
        assert_eq!(!!s, s);
        assert_ne!(!s, s);
        assert_eq!((!s).node(), s.node());
        assert_eq!(s.complement_if(true), !s);
        assert_eq!(s.complement_if(false), s);
        assert_eq!(s.with_complement(true), !s);
        assert_eq!((!s).with_complement(false), s);
    }

    #[test]
    fn non_constant_signal_has_no_value() {
        let s = Signal::new(NodeId::new(4), true);
        assert!(!s.is_constant());
        assert_eq!(s.constant_value(), None);
    }

    #[test]
    fn display_formats() {
        let s = Signal::new(NodeId::new(4), true);
        assert_eq!(s.to_string(), "!n4");
        assert_eq!((!s).to_string(), "n4");
        assert_eq!(NodeId::new(4).to_string(), "n4");
    }

    #[test]
    fn ordering_groups_by_node() {
        let a = Signal::new(NodeId::new(1), false);
        let b = Signal::new(NodeId::new(1), true);
        let c = Signal::new(NodeId::new(2), false);
        assert!(a < b && b < c);
    }
}
