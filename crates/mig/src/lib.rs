//! # rlim-mig — Majority-Inverter Graphs for resistive logic-in-memory
//!
//! This crate provides the logic-representation substrate of the `rlim`
//! workspace, a reproduction of *"Endurance Management for Resistive
//! Logic-In-Memory Computing Architectures"* (DATE 2017):
//!
//! * [`Mig`] — the Majority-Inverter Graph: 3-input majority nodes with
//!   complemented edges, structural hashing and Ω.M simplification built in.
//! * [`Signal`] / [`NodeId`] — complement-edge references.
//! * [`rewrite`] — the paper's MIG Boolean-algebra passes (Ω.M, Ω.D, Ω.A,
//!   Ψ.C, the Ω.I inverter-propagation family) and the two pass schedules:
//!   Algorithm 1 (baseline PLiM-compiler rewriting) and Algorithm 2
//!   (endurance-aware rewriting).
//! * [`simulate`] — 64-way bit-parallel simulation and
//!   random equivalence checking (available as inherent methods on [`Mig`]).
//! * [`view`] — reusable structural views: levels, fanout, bitset live
//!   mask and a CSR parent index, derived together in two linear sweeps.
//! * [`strash`] — the open-addressing structural-hashing table behind
//!   [`Mig::add_maj`] deduplication, reusable across graph rebuilds.
//! * [`stats`] — structural statistics (complemented-edge histogram, level
//!   spread) used by the evaluation harness.
//! * [`random`] — seeded random-MIG generation for tests and synthetic
//!   workloads.
//! * [`dot`] — Graphviz export.
//!
//! ## Example
//!
//! ```
//! use rlim_mig::{Mig, rewrite::{rewrite, Algorithm}};
//!
//! // f = maj(a, b, c) XOR d
//! let mut mig = Mig::new(4);
//! let [a, b, c, d] = [mig.input(0), mig.input(1), mig.input(2), mig.input(3)];
//! let m = mig.add_maj(a, b, c);
//! let f = mig.xor(m, d);
//! mig.add_output(f);
//!
//! let optimized = rewrite(&mig, Algorithm::EnduranceAware, 5);
//! assert!(optimized.num_gates() <= mig.num_gates());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mig;
mod signal;
pub mod strash;

pub mod blif;
pub mod dot;
pub mod random;
pub mod rewrite;
pub mod simulate;
pub mod stats;
pub mod view;

pub use crate::mig::{Mig, NodeKind};
pub use crate::signal::{NodeId, Signal};
pub use crate::simulate::{equiv_random, Equivalence};
pub use crate::strash::Strash;
pub use crate::view::{BitSet, StructuralView};
