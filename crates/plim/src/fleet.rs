//! A fleet of PLiM crossbars with endurance-aware dispatch.
//!
//! The DATE 2017 paper balances write traffic *inside* one crossbar; this
//! module lifts the same two allocation ideas to **array granularity** so
//! a multi-crossbar system can serve a stream of compiled programs:
//!
//! * [`DispatchPolicy::LeastWorn`] mirrors the paper's *minimum write
//!   count strategy*: each job goes to the live array with the fewest
//!   accumulated writes, so heterogeneous programs cannot concentrate
//!   wear on one array.
//! * [`FleetConfig::with_write_budget`] mirrors the *maximum write count
//!   strategy*: arrays whose remaining budget cannot fit a job are
//!   skipped for it (never stranding budget a cheaper later job could
//!   still use), and an array whose budget is fully consumed — it cannot
//!   fit even a single write, exactly the paper's cell-retirement rule —
//!   is **retired**: it never executes another write, and the remaining
//!   arrays take over.
//! * [`DispatchPolicy::RoundRobin`] is the oblivious baseline the
//!   evaluation compares against.
//! * [`FleetConfig::with_faults`] injects a deterministic per-cell
//!   [`FaultModel`] (sampled endurance, seeded stuck-at faults) into
//!   every array, and [`FleetConfig::with_recovery`] turns detected
//!   faults into spare-cell remaps, retries and watchdog retirements
//!   instead of batch failures — see [`RecoveryConfig`],
//!   [`patch_program`] and [`Fleet::fault_log`] for the building blocks
//!   and the event log.
//!
//! ## Determinism
//!
//! Dispatch is planned serially before anything executes: a PLiM program's
//! write cost is static (every execution writes the same cells the same
//! number of times), so the plan depends only on the job sequence and the
//! fleet's accumulated wear — never on thread scheduling. Execution then
//! runs each array's job list in plan order, arrays in parallel on a
//! scoped worker pool following the workspace convention (`threads == 0`
//! means one worker per core, `1` forces serial); arrays are disjoint, so
//! serial and parallel runs are byte-identical.
//!
//! ## Example
//!
//! ```
//! use rlim_plim::{DispatchPolicy, Fleet, FleetConfig, Instruction, Job, Operand, Program};
//! use rlim_rram::CellId;
//!
//! // set1 r0 — a one-instruction program costing one write per run.
//! let program = Program {
//!     instructions: vec![Instruction {
//!         p: Operand::Const(true),
//!         q: Operand::Const(false),
//!         z: CellId::new(0),
//!     }],
//!     num_cells: 1,
//!     input_cells: vec![],
//!     output_cells: vec![CellId::new(0)],
//! };
//! let mut fleet = Fleet::new(
//!     FleetConfig::new(2).with_policy(DispatchPolicy::LeastWorn),
//! );
//! let jobs = vec![Job::new(&program, &[]); 4];
//! let outputs = fleet.run_batch(&jobs, 1).unwrap();
//! assert_eq!(outputs.len(), 4);
//! // Four one-write jobs over two arrays: perfectly balanced.
//! assert_eq!(fleet.total_writes(0), 2);
//! assert_eq!(fleet.total_writes(1), 2);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rlim_rram::{CellId, Crossbar, FaultModel, FleetWriteStats, WideCrossbar, WriteFault};

use crate::isa::Program;
use crate::machine::Machine;
use crate::recovery::{
    patch_program, remap_target, FaultEvent, FaultKind, FaultRecorder, RecoveryAction,
    RecoveryConfig,
};
use crate::wide::WideMachine;

/// How the dispatcher chooses an array for the next job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatchPolicy {
    /// Rotate through live arrays regardless of wear — the oblivious
    /// baseline. Arrays that cannot fit the job are skipped.
    RoundRobin,
    /// The paper's minimum write count strategy at array granularity:
    /// send the job to the live, fitting array with the fewest total
    /// writes (ties broken by lowest array index).
    #[default]
    LeastWorn,
}

impl DispatchPolicy {
    /// Short label used in tables and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastWorn => "least-worn",
        }
    }
}

impl std::str::FromStr for DispatchPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" | "rr" => Ok(DispatchPolicy::RoundRobin),
            "least-worn" | "lw" => Ok(DispatchPolicy::LeastWorn),
            other => Err(format!(
                "unknown dispatch policy `{other}` (round-robin | least-worn)"
            )),
        }
    }
}

/// Configuration of a [`Fleet`].
///
/// # Examples
///
/// ```
/// use rlim_plim::{DispatchPolicy, FleetConfig};
///
/// let config = FleetConfig::new(4)
///     .with_policy(DispatchPolicy::RoundRobin)
///     .with_write_budget(10_000);
/// assert_eq!(config.arrays, 4);
/// assert_eq!(config.write_budget, Some(10_000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of crossbar arrays.
    pub arrays: usize,
    /// Dispatch policy.
    pub policy: DispatchPolicy,
    /// Per-array total-write budget `W`: arrays that cannot fit a job
    /// within `W` total writes are skipped for it, and an array whose
    /// budget is fully consumed is retired — the maximum write count
    /// strategy lifted to arrays.
    pub write_budget: Option<u64>,
    /// Physical per-cell endurance limit of every array (writes fail with
    /// [`rlim_rram::EnduranceError`] beyond it), as in
    /// [`Machine::with_endurance`].
    pub endurance: Option<u64>,
    /// Device-faithful fault injection: every array runs on a
    /// [`Crossbar::with_faults`] crossbar seeded per array via
    /// [`FaultModel::for_array`], with write-verify readback enabled.
    /// Per-cell sampled endurance limits override the uniform
    /// `endurance` limit.
    pub faults: Option<FaultModel>,
    /// Online recovery policy. `None` leaves the fleet naive: the first
    /// detected fault aborts the batch and retires the array, exactly as
    /// a plain endurance failure does.
    pub recovery: Option<RecoveryConfig>,
}

impl FleetConfig {
    /// A fleet of `arrays` crossbars with least-worn dispatch, no write
    /// budget and no physical endurance limit.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn new(arrays: usize) -> Self {
        assert!(arrays > 0, "a fleet needs at least one array");
        FleetConfig {
            arrays,
            policy: DispatchPolicy::default(),
            write_budget: None,
            endurance: None,
            faults: None,
            recovery: None,
        }
    }

    /// Sets the dispatch policy.
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-array total-write budget `W`.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn with_write_budget(mut self, budget: u64) -> Self {
        assert!(budget > 0, "write budget must be positive");
        self.write_budget = Some(budget);
        self
    }

    /// Sets the physical per-cell endurance limit.
    pub fn with_endurance(mut self, limit: u64) -> Self {
        self.endurance = Some(limit);
        self
    }

    /// Enables fault injection: array `i` runs under
    /// `model.for_array(i)`, so per-cell endurance is sampled (not
    /// uniform) and seeded stuck-at faults can appear mid-job, detected
    /// by write-verify readback.
    pub fn with_faults(mut self, model: FaultModel) -> Self {
        self.faults = Some(model);
        self
    }

    /// Enables online recovery: detected faults are remapped to spare
    /// cells and the job retried; the watchdog retires arrays that
    /// exceed `recovery`'s budgets and their work re-dispatches to the
    /// survivors.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = Some(recovery);
        self
    }
}

/// One unit of fleet work: a compiled program plus its input vector.
#[derive(Debug, Clone, Copy)]
pub struct Job<'a> {
    /// The compiled PLiM program to execute.
    pub program: &'a Program,
    /// Primary-input values, in the program's PI order.
    pub inputs: &'a [bool],
}

impl<'a> Job<'a> {
    /// Bundles a program with its inputs.
    pub fn new(program: &'a Program, inputs: &'a [bool]) -> Self {
        Job { program, inputs }
    }

    /// The job's static write cost: one write per RM3 instruction.
    pub fn cost(&self) -> u64 {
        self.program.total_writes()
    }

    /// The standard heterogeneous evaluation stream: `count` jobs
    /// alternating `heavy` and `light` (heavy first), all sharing one
    /// input vector. Periodic traffic like this is what separates
    /// wear-aware dispatch from oblivious striping; the CLI, the bench
    /// runner and the test-suite use it directly, and the `fleet` eval
    /// sweep builds the same alternation with per-job random inputs.
    pub fn alternating(
        heavy: &'a Program,
        light: &'a Program,
        inputs: &'a [bool],
        count: usize,
    ) -> Vec<Job<'a>> {
        (0..count)
            .map(|i| Job::new(if i % 2 == 0 { heavy } else { light }, inputs))
            .collect()
    }
}

/// A fleet batch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// No live array could absorb job `job` within its write budget; wear
    /// from jobs before `job` in the batch was **not** applied (dispatch
    /// is planned before anything executes).
    Exhausted {
        /// Index of the unplaceable job in the batch.
        job: usize,
        /// The job's static write cost that no array could fit.
        cost: u64,
        /// Live (unretired) arrays at the failed placement — `0` means
        /// the whole fleet is dead, not merely out of budget headroom.
        live_arrays: usize,
    },
    /// A device fault — an exhausted cell or a write-verify mismatch —
    /// failed job `job` at run time. Writes performed before the failure
    /// (on this and other arrays) persist, and the failed array is
    /// retired.
    Fault {
        /// Index of the failing job in the batch.
        job: usize,
        /// The array the job was dispatched to.
        array: usize,
        /// The underlying cell failure, naming the exact cell.
        fault: WriteFault,
    },
}

impl FleetError {
    /// The batch index of the failing job.
    pub fn job(&self) -> usize {
        match self {
            FleetError::Exhausted { job, .. } | FleetError::Fault { job, .. } => *job,
        }
    }

    /// The failing array, for run-time faults.
    pub fn array(&self) -> Option<usize> {
        match self {
            FleetError::Exhausted { .. } => None,
            FleetError::Fault { array, .. } => Some(*array),
        }
    }

    /// The failing cell, for run-time faults.
    pub fn cell(&self) -> Option<CellId> {
        match self {
            FleetError::Exhausted { .. } => None,
            FleetError::Fault { fault, .. } => Some(fault.cell()),
        }
    }
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Exhausted {
                job,
                cost,
                live_arrays,
            } => {
                write!(
                    f,
                    "fleet exhausted: none of {live_arrays} live arrays can absorb \
                     job {job} ({cost} writes)"
                )
            }
            FleetError::Fault { job, array, fault } => {
                write!(f, "job {job} on array {array}: {fault}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Exhausted { .. } => None,
            FleetError::Fault { fault, .. } => Some(fault),
        }
    }
}

/// One crossbar of the fleet plus its dispatch bookkeeping.
#[derive(Debug, Clone)]
struct Slot {
    machine: Machine,
    /// Total writes accumulated (plan-time mirror of the machine's wear;
    /// reconciled to executed wear whenever recovery retries jobs).
    total: u64,
    /// Jobs ever dispatched to this array.
    jobs: u64,
    retired: bool,
    /// Physical cells confirmed broken, in detection order.
    broken: Vec<CellId>,
    /// Faults detected on this array (the watchdog's counter).
    faults: u64,
    /// Patched programs keyed by original program identity; cleared when
    /// `broken` grows (every cached binding is stale then).
    patches: HashMap<usize, Program>,
    /// Fault events of the in-flight round, drained into the fleet's
    /// [`FaultRecorder`] after the parallel phase (merged in job order,
    /// keeping the log deterministic under any thread schedule).
    events: Vec<FaultEvent>,
}

/// One array's dispatch bookkeeping, as reported by
/// [`Fleet::array_stats`]: the per-array rows behind the pooled
/// [`FleetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayStats {
    /// Jobs ever dispatched to this array.
    pub jobs: u64,
    /// Total writes executed on this array.
    pub writes: u64,
    /// Whether the array has been retired (budget spent or endurance
    /// failure).
    pub retired: bool,
}

/// Fleet-level wear summary returned by [`Fleet::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Write-traffic distributions per array and pooled per cell.
    pub wear: FleetWriteStats,
    /// Number of retired arrays.
    pub retired: usize,
    /// Jobs dispatched since construction.
    pub jobs: u64,
}

/// A fleet of independent PLiM crossbars behind one dispatcher.
///
/// Construct with [`Fleet::new`], feed batches of [`Job`]s through
/// [`Fleet::run_batch`], and read wear back with [`Fleet::stats`]. Arrays
/// persist across batches, so wear (and retirement) accumulates exactly as
/// in the single-machine lifetime experiments.
#[derive(Debug, Clone)]
pub struct Fleet {
    slots: Vec<Slot>,
    policy: DispatchPolicy,
    write_budget: Option<u64>,
    faults: Option<FaultModel>,
    recovery: Option<RecoveryConfig>,
    recorder: FaultRecorder,
    /// Round-robin scan position.
    cursor: usize,
    jobs_run: u64,
}

impl Fleet {
    /// Builds the fleet: `config.arrays` empty crossbars with zero wear.
    pub fn new(config: FleetConfig) -> Self {
        let slots = (0..config.arrays)
            .map(|i| Slot {
                machine: Machine::with_array(match (config.faults, config.endurance) {
                    (Some(model), _) => Crossbar::with_faults(model.for_array(i)),
                    (None, Some(limit)) => Crossbar::with_endurance(limit),
                    (None, None) => Crossbar::new(),
                }),
                total: 0,
                jobs: 0,
                retired: false,
                broken: Vec::new(),
                faults: 0,
                patches: HashMap::new(),
                events: Vec::new(),
            })
            .collect();
        Fleet {
            slots,
            policy: config.policy,
            write_budget: config.write_budget,
            faults: config.faults,
            recovery: config.recovery,
            recorder: FaultRecorder::new(config.recovery.map_or(256, |r| r.log_capacity)),
            cursor: 0,
            jobs_run: 0,
        }
    }

    /// Number of arrays (live and retired).
    pub fn num_arrays(&self) -> usize {
        self.slots.len()
    }

    /// The dispatch policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The per-array write budget, if any.
    pub fn write_budget(&self) -> Option<u64> {
        self.write_budget
    }

    /// The injected fault model, if the fleet runs under chaos.
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.faults.as_ref()
    }

    /// The recovery policy, if online recovery is enabled.
    pub fn recovery(&self) -> Option<&RecoveryConfig> {
        self.recovery.as_ref()
    }

    /// The fleet-wide fault log: every detected fault and what recovery
    /// did about it, in deterministic job order.
    pub fn fault_log(&self) -> &FaultRecorder {
        &self.recorder
    }

    /// Physical cells of array `index` confirmed broken and remapped
    /// around, in detection order.
    pub fn broken_cells(&self, index: usize) -> &[CellId] {
        &self.slots[index].broken
    }

    /// Whether array `index` has been retired — by exhausting its write
    /// budget or by a physical endurance failure. A retired array never
    /// executes another write.
    pub fn is_retired(&self, index: usize) -> bool {
        self.slots[index].retired
    }

    /// The crossbar of array `index` (wear counters, stored values).
    pub fn array(&self, index: usize) -> &Crossbar {
        self.slots[index].machine.array()
    }

    /// Total writes executed on array `index`.
    pub fn total_writes(&self, index: usize) -> u64 {
        self.slots[index].total
    }

    /// Jobs dispatched to array `index` since construction (a job whose
    /// array failed mid-batch still counts as dispatched).
    pub fn jobs_on(&self, index: usize) -> u64 {
        self.slots[index].jobs
    }

    /// Jobs dispatched fleet-wide since construction.
    pub fn jobs_run(&self) -> u64 {
        self.jobs_run
    }

    /// Per-array dispatch bookkeeping in array order: jobs, total writes
    /// and retirement, the rows a service report renders per array.
    pub fn array_stats(&self) -> Vec<ArrayStats> {
        self.slots
            .iter()
            .map(|s| ArrayStats {
                jobs: s.jobs,
                writes: s.total,
                retired: s.retired,
            })
            .collect()
    }

    /// Fleet-level wear statistics: per-array totals/peaks and the pooled
    /// per-cell distribution, plus retirement progress.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            wear: FleetWriteStats::from_arrays(
                self.slots.iter().map(|s| s.machine.array().write_counts()),
            ),
            retired: self.slots.iter().filter(|s| s.retired).count(),
            jobs: self.jobs_run,
        }
    }

    /// How many more jobs of write cost `cost` the fleet can absorb before
    /// every array is exhausted: `Σᵢ ⌊remainingᵢ / cost⌋` over live
    /// arrays. `None` when no write budget is configured (unbounded);
    /// `Some(u64::MAX)` for write-free jobs (`cost == 0`) while any array
    /// is live, since such jobs consume no budget.
    pub fn remaining_jobs(&self, cost: u64) -> Option<u64> {
        let budget = self.write_budget?;
        if cost == 0 {
            let any_live = self.slots.iter().any(|s| !s.retired);
            return Some(if any_live { u64::MAX } else { 0 });
        }
        Some(
            self.slots
                .iter()
                .filter(|s| !s.retired)
                .map(|s| budget.saturating_sub(s.total) / cost)
                .sum(),
        )
    }

    /// The first-retirement horizon: jobs of write cost `cost` the
    /// most-worn live array can still absorb — the earliest point at which
    /// the fleet can lose an array. `None` when no write budget is
    /// configured; `Some(0)` when every array is retired;
    /// `Some(u64::MAX)` for write-free jobs on a live fleet.
    pub fn first_retirement_horizon(&self, cost: u64) -> Option<u64> {
        let budget = self.write_budget?;
        if cost == 0 {
            let any_live = self.slots.iter().any(|s| !s.retired);
            return Some(if any_live { u64::MAX } else { 0 });
        }
        Some(
            self.slots
                .iter()
                .filter(|s| !s.retired)
                .map(|s| budget.saturating_sub(s.total) / cost)
                .min()
                .unwrap_or(0),
        )
    }

    /// Dispatches and executes a batch of jobs, returning each job's
    /// primary outputs in batch order.
    ///
    /// Dispatch is planned serially first (see the module docs), then each
    /// array executes its assigned jobs in plan order, arrays in parallel
    /// over `threads` scoped workers (`0` = one per available core, `1` =
    /// forced serial). Serial and parallel runs produce identical outputs
    /// and identical wear.
    ///
    /// # Errors
    ///
    /// * [`FleetError::Exhausted`] if some job cannot be placed within the
    ///   write budget — detected at plan time, before any write executes.
    /// * [`FleetError::Fault`] if a device fault (worn-out cell, or a
    ///   stuck-at cell caught by write-verify readback) fails a write at
    ///   run time **and recovery is off**. Earlier writes persist, the
    ///   failed array is **retired** (later batches go to the survivors),
    ///   and its wear bookkeeping is reconciled to the writes that
    ///   actually executed. Outputs of jobs that did complete in the
    ///   failed batch are not returned, so callers operating close to an
    ///   endurance limit should prefer small batches (the lifetime
    ///   experiments submit one job at a time) to avoid re-executing —
    ///   and re-wearing — work.
    ///
    /// With [`FleetConfig::with_recovery`], a detected fault does not
    /// fail the batch: the broken cell is remapped to a spare via
    /// [`patch_program`] and the job retried on the same array; when the
    /// watchdog retires an array instead, its unfinished jobs re-dispatch
    /// to the survivors in follow-up planning rounds. The batch then only
    /// fails with [`FleetError::Exhausted`], once no live array remains
    /// for some job. Completed outputs equal a fault-free run's byte for
    /// byte: a write that slips through verification stored the intended
    /// value by definition, and remapping never changes the instruction
    /// sequence.
    ///
    /// # Panics
    ///
    /// Panics if a job's input vector does not match its program's
    /// interface.
    pub fn run_batch(
        &mut self,
        jobs: &[Job<'_>],
        threads: usize,
    ) -> Result<Vec<Vec<bool>>, FleetError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        if self.recovery.is_some() {
            return self.run_batch_recovering(jobs, threads);
        }
        let (assignment, per_array) = self.prepare_batch(jobs)?;
        let results: Vec<ResultSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        self.execute_arrays(&per_array, threads, |_, slot, list| {
            for &j in list {
                let outcome = slot.machine.run(jobs[j].program, jobs[j].inputs);
                let failed = outcome.is_err();
                *results[j].lock().expect("result lock") = Some(outcome);
                if failed {
                    return; // this array is dead; its later jobs never ran
                }
            }
        });
        self.collect_results(&assignment, results)
    }

    /// The recovering batch path: plan, execute with per-array
    /// remap-and-retry, then re-plan whatever a retired array left
    /// unfinished onto the survivors. Each round either finishes every
    /// pending job or retires at least one array, so the loop runs at
    /// most `arrays + 1` rounds.
    fn run_batch_recovering(
        &mut self,
        jobs: &[Job<'_>],
        threads: usize,
    ) -> Result<Vec<Vec<bool>>, FleetError> {
        let recovery = self.recovery.expect("recovery configured");
        let mut outputs: Vec<Option<Vec<bool>>> = jobs.iter().map(|_| None).collect();
        let mut pending: Vec<usize> = (0..jobs.len()).collect();
        while !pending.is_empty() {
            let round: Vec<Job<'_>> = pending.iter().map(|&j| jobs[j]).collect();
            let (_, per_array) = self.prepare_batch(&round).map_err(|e| match e {
                // Report the unplaceable job under its original batch index.
                FleetError::Exhausted {
                    job,
                    cost,
                    live_arrays,
                } => FleetError::Exhausted {
                    job: pending[job],
                    cost,
                    live_arrays,
                },
                other => other,
            })?;
            let results: Vec<Mutex<Option<Vec<bool>>>> =
                round.iter().map(|_| Mutex::new(None)).collect();
            let global = pending.as_slice();
            self.execute_arrays(&per_array, threads, |array, slot, list| {
                for &r in list {
                    match run_with_recovery(slot, array, global[r], round[r], recovery) {
                        Some(out) => *results[r].lock().expect("result lock") = Some(out),
                        // Watchdog retired the array; this job and the
                        // rest of the list wait for the next round.
                        None => return,
                    }
                }
            });
            // Drain per-array fault events into the recorder, merged in
            // job order (each job runs on exactly one array, so a stable
            // sort by job keeps per-job retry order), and reconcile the
            // planned wear totals with what retries actually wrote.
            let mut round_events = Vec::new();
            for slot in &mut self.slots {
                round_events.append(&mut slot.events);
                slot.total = slot.machine.array().write_counts().iter().sum();
            }
            round_events.sort_by_key(|e| e.job);
            for event in round_events {
                self.recorder.record(event);
            }
            let mut still = Vec::new();
            for (r, result) in results.into_iter().enumerate() {
                match result.into_inner().expect("no poisoned lock") {
                    Some(out) => outputs[pending[r]] = Some(out),
                    None => still.push(pending[r]),
                }
            }
            pending = still;
        }
        Ok(outputs
            .into_iter()
            .map(|o| o.expect("every job completed or the loop errored"))
            .collect())
    }

    /// [`Fleet::run_batch`] with the batch packed into SIMD lanes: jobs
    /// dispatched to the same array that share a program are executed as
    /// one word-level [`WideMachine`] pass of up to 64 lanes per
    /// instruction, instead of one scalar run per job.
    ///
    /// Dispatch, job outputs and wear are unchanged: the plan is the one
    /// [`Fleet::run_batch`] would produce, word writes charge one logical
    /// write per lane so every array's per-cell write counts (and thus all
    /// [`FleetStats`]) equal the unbatched run's, and serial and parallel
    /// invocations stay byte-identical. Lane groups commit in order of
    /// their last dispatched job, so each cell's final stored value is the
    /// serial last writer's. Two observable deviations, both outside the
    /// endurance evaluation: per-cell *switch* counts may differ (a word
    /// store cannot observe per-lane flips), and an endurance failure is
    /// reported for the first job of the failing lane group — word writes
    /// fail atomically, never exceeding the serial run's wear.
    ///
    /// Programs are assumed state-insensitive — every work cell is
    /// established (`set0`/`set1`) before it is read, which `rlim-compiler`
    /// output guarantees and the differential suite asserts. A hand-written
    /// program that reads a cell it never established may observe different
    /// garbage lane values than a scalar run.
    ///
    /// Fault injection is a scalar-path feature: a word-level write has
    /// no per-lane readback to verify against, so a fleet configured with
    /// [`FleetConfig::with_faults`] or [`FleetConfig::with_recovery`]
    /// transparently falls back to the scalar [`Fleet::run_batch`].
    ///
    /// # Errors
    ///
    /// As [`Fleet::run_batch`].
    ///
    /// # Panics
    ///
    /// Panics if a job's input vector does not match its program's
    /// interface.
    pub fn run_batch_simd(
        &mut self,
        jobs: &[Job<'_>],
        threads: usize,
    ) -> Result<Vec<Vec<bool>>, FleetError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        if self.faults.is_some() || self.recovery.is_some() {
            return self.run_batch(jobs, threads);
        }
        let (assignment, per_array) = self.prepare_batch(jobs)?;
        let results: Vec<ResultSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        self.execute_arrays(&per_array, threads, |_, slot, list| {
            for group in lane_groups(jobs, list) {
                let lanes = group.len();
                let program = jobs[group[0]].program;
                let lane_inputs: Vec<&[bool]> = group.iter().map(|&j| jobs[j].inputs).collect();
                let overlay = WideCrossbar::from_scalar(slot.machine.array());
                let mut wide = WideMachine::with_array(overlay, lanes);
                let outcome = wide.run(program, &lane_inputs);
                // Commit even on failure: wear performed before the failing
                // word write persists, as in the scalar path.
                wide.array()
                    .commit_into(slot.machine.array_mut(), lanes - 1);
                match outcome {
                    Ok(lane_outputs) => {
                        for (&j, out) in group.iter().zip(lane_outputs) {
                            *results[j].lock().expect("result lock") = Some(Ok(out));
                        }
                    }
                    Err(error) => {
                        *results[group[0]].lock().expect("result lock") = Some(Err(error.into()));
                        return; // this array is dead; later groups never ran
                    }
                }
            }
        });
        self.collect_results(&assignment, results)
    }

    /// Plans a batch and commits the plan: wear totals, job counts,
    /// retirement and the round-robin cursor. Returns the job → array
    /// assignment and each array's job list (in dispatch order), with
    /// every involved crossbar grown to its largest program.
    ///
    /// Planning is serial, deterministic and transactional — a batch that
    /// exhausts the fleet leaves all bookkeeping untouched.
    fn prepare_batch(
        &mut self,
        jobs: &[Job<'_>],
    ) -> Result<(Vec<usize>, Vec<Vec<usize>>), FleetError> {
        let costs: Vec<u64> = jobs.iter().map(Job::cost).collect();
        let mut plan = Planner {
            totals: self.slots.iter().map(|s| s.total).collect(),
            job_counts: self.slots.iter().map(|s| s.jobs).collect(),
            retired: self.slots.iter().map(|s| s.retired).collect(),
            cursor: self.cursor,
            policy: self.policy,
            write_budget: self.write_budget,
        };
        plan.retire_spent();
        let mut assignment = Vec::with_capacity(jobs.len());
        for (j, &cost) in costs.iter().enumerate() {
            let slot = plan.place(cost).ok_or_else(|| FleetError::Exhausted {
                job: j,
                cost,
                live_arrays: plan.retired.iter().filter(|r| !**r).count(),
            })?;
            plan.totals[slot] += cost;
            plan.job_counts[slot] += 1;
            assignment.push(slot);
            plan.retire_spent();
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.total = plan.totals[i];
            slot.jobs = plan.job_counts[i];
            slot.retired = plan.retired[i];
        }
        self.cursor = plan.cursor;
        self.jobs_run += jobs.len() as u64;

        let mut per_array: Vec<Vec<usize>> = vec![Vec::new(); self.slots.len()];
        for (j, &slot) in assignment.iter().enumerate() {
            per_array[slot].push(j);
        }
        for (slot, list) in self.slots.iter_mut().zip(&per_array) {
            let cells = list.iter().map(|&j| jobs[j].program.num_cells).max();
            if let Some(cells) = cells {
                slot.machine.ensure_cells(cells);
            }
        }
        Ok((assignment, per_array))
    }

    /// Runs `run_task` once per non-empty array job list, arrays in
    /// parallel over `threads` scoped workers (`0` = one per available
    /// core, `1` = forced serial). Arrays are disjoint, so serial and
    /// parallel schedules produce identical state.
    fn execute_arrays<F>(&mut self, per_array: &[Vec<usize>], threads: usize, run_task: F)
    where
        F: Fn(usize, &mut Slot, &[usize]) + Sync,
    {
        type TaskSlot<'m> = Mutex<Option<(usize, &'m mut Slot, &'m [usize])>>;
        let tasks: Vec<TaskSlot<'_>> = self
            .slots
            .iter_mut()
            .enumerate()
            .zip(per_array)
            .filter(|(_, list)| !list.is_empty())
            .map(|((i, slot), list)| Mutex::new(Some((i, slot, list.as_slice()))))
            .collect();
        let workers = resolve_threads(threads, tasks.len());
        if workers <= 1 {
            for task in &tasks {
                let (i, slot, list) = task.lock().expect("task lock").take().expect("task set");
                run_task(i, slot, list);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            return;
                        }
                        let (array, slot, list) = tasks[i]
                            .lock()
                            .expect("task lock")
                            .take()
                            .expect("task set");
                        run_task(array, slot, list);
                    });
                }
            });
        }
    }

    /// Aggregates per-job outcomes in batch order, retiring arrays that
    /// failed on a device fault and reconciling their planned wear to the
    /// writes that actually executed.
    fn collect_results(
        &mut self,
        assignment: &[usize],
        results: Vec<ResultSlot>,
    ) -> Result<Vec<Vec<bool>>, FleetError> {
        let mut outputs = Vec::with_capacity(results.len());
        let mut first_error: Option<FleetError> = None;
        for (j, cell) in results.into_iter().enumerate() {
            match cell.into_inner().expect("no poisoned lock") {
                Some(Ok(out)) => outputs.push(out),
                Some(Err(fault)) => {
                    // A dead cell is permanent: retire the array so later
                    // batches go to the survivors, and replace its planned
                    // wear with the writes that actually executed.
                    let array = assignment[j];
                    let slot = &mut self.slots[array];
                    slot.retired = true;
                    slot.total = slot.machine.array().write_counts().iter().sum();
                    if first_error.is_none() {
                        first_error = Some(FleetError::Fault {
                            job: j,
                            array,
                            fault,
                        });
                    }
                }
                // Jobs queued behind a failed one on the same array never
                // ran; the earliest failing job is the error reported.
                None => {}
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(outputs),
        }
    }
}

/// Per-job outcome slot shared between the planner thread and the array
/// workers.
type ResultSlot = Mutex<Option<Result<Vec<bool>, WriteFault>>>;

/// Runs one job on one array with remap-and-retry recovery. Returns the
/// job's outputs, or `None` when the watchdog retired the array instead
/// (the fault budget or the spare budget is spent).
///
/// Every detected fault appends a [`FaultEvent`] to `slot.events` under
/// the job's original batch index `job_index`; the fleet merges the
/// per-array logs deterministically after the parallel phase.
fn run_with_recovery(
    slot: &mut Slot,
    array: usize,
    job_index: usize,
    job: Job<'_>,
    recovery: RecoveryConfig,
) -> Option<Vec<bool>> {
    loop {
        let key = std::ptr::from_ref(job.program) as usize;
        if !slot.broken.is_empty() && !slot.patches.contains_key(&key) {
            slot.patches
                .insert(key, patch_program(job.program, &slot.broken));
        }
        let program = slot.patches.get(&key).unwrap_or(job.program);
        slot.machine.ensure_cells(program.num_cells);
        match slot.machine.run(program, job.inputs) {
            Ok(out) => return Some(out),
            Err(fault) => {
                slot.faults += 1;
                let cell = fault.cell();
                let kind = FaultKind::of(&fault);
                if slot.faults > recovery.max_faults || slot.broken.len() >= recovery.spares {
                    slot.retired = true;
                    slot.events.push(FaultEvent {
                        job: job_index,
                        array,
                        cell,
                        kind,
                        action: RecoveryAction::Retired,
                    });
                    return None;
                }
                slot.broken.push(cell);
                // Every cached binding is stale now; rebuild on demand.
                slot.patches.clear();
                let spare = remap_target(&slot.broken, cell);
                slot.events.push(FaultEvent {
                    job: job_index,
                    array,
                    cell,
                    kind,
                    action: RecoveryAction::Remapped { spare },
                });
            }
        }
    }
}

/// Packs one array's planned job list into SIMD lane groups: jobs sharing
/// a program (by reference identity), up to [`WideCrossbar::LANES`] per
/// group, in dispatch order within each group.
///
/// Groups are returned ordered by their *last* member's batch index, so
/// that the group committing last on any cell contains the serial last
/// writer of that cell: a program always writes the same cell set, and a
/// cell a group's program never writes commits as a no-op (it still holds
/// the snapshot of the previous commit).
fn lane_groups(jobs: &[Job<'_>], list: &[usize]) -> Vec<Vec<usize>> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for &j in list {
        let key = std::ptr::from_ref(jobs[j].program) as usize;
        // Only the newest group of a program can be open (earlier ones
        // were closed at 64 lanes), so scanning from the back finds it.
        match groups
            .iter_mut()
            .rev()
            .find(|(k, g)| *k == key && g.len() < WideCrossbar::LANES)
        {
            Some((_, group)) => group.push(j),
            None => groups.push((key, vec![j])),
        }
    }
    groups.sort_by_key(|(_, g)| *g.last().expect("groups are non-empty"));
    groups.into_iter().map(|(_, g)| g).collect()
}

/// Scratch dispatch state: a copy of the fleet's wear bookkeeping that a
/// batch plan mutates, committed back only when every job places.
struct Planner {
    totals: Vec<u64>,
    job_counts: Vec<u64>,
    retired: Vec<bool>,
    cursor: usize,
    policy: DispatchPolicy,
    write_budget: Option<u64>,
}

impl Planner {
    /// Whether array `slot` can absorb `cost` more writes.
    fn fits(&self, slot: usize, cost: u64) -> bool {
        match self.write_budget {
            None => true,
            Some(w) => self.totals[slot] + cost <= w,
        }
    }

    /// Chooses a live, fitting array for a job of write cost `cost`, or
    /// `None` when the fleet is exhausted for this cost.
    fn place(&mut self, cost: u64) -> Option<usize> {
        let n = self.totals.len();
        match self.policy {
            DispatchPolicy::RoundRobin => {
                for step in 0..n {
                    let i = (self.cursor + step) % n;
                    if !self.retired[i] && self.fits(i, cost) {
                        self.cursor = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
            DispatchPolicy::LeastWorn => (0..n)
                .filter(|&i| !self.retired[i] && self.fits(i, cost))
                .min_by_key(|&i| (self.totals[i], i)),
        }
    }

    /// Retires every live array whose budget is fully consumed (it cannot
    /// fit even a single write) — the array-level analogue of dropping
    /// at-limit cells from the compile-time free pool. Arrays with budget
    /// left are never retired here, only skipped by [`Planner::place`]
    /// for jobs they cannot fit, so remaining capacity stays reachable
    /// for cheaper later jobs.
    fn retire_spent(&mut self) {
        let Some(budget) = self.write_budget else {
            return;
        };
        for (i, retired) in self.retired.iter_mut().enumerate() {
            if !*retired && self.totals[i] >= budget {
                *retired = true;
            }
        }
    }
}

/// Worker-count resolution following `rlim-testkit`'s convention (`0` =
/// one per available core, never more workers than tasks). Local copy:
/// `rlim-plim` sits below the testkit in the crate graph.
fn resolve_threads(requested: usize, tasks: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        requested
    };
    t.clamp(1, tasks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instruction, Operand};
    use rlim_rram::CellId;

    /// A program of `writes` set1 instructions on distinct cells.
    fn burn(writes: usize) -> Program {
        Program {
            instructions: (0..writes)
                .map(|i| Instruction {
                    p: Operand::Const(true),
                    q: Operand::Const(false),
                    z: CellId::new(i as u32),
                })
                .collect(),
            num_cells: writes.max(1),
            input_cells: vec![],
            output_cells: vec![CellId::new(0)],
        }
    }

    #[test]
    fn round_robin_rotates() {
        let heavy = burn(4);
        let mut fleet = Fleet::new(FleetConfig::new(3).with_policy(DispatchPolicy::RoundRobin));
        let jobs = vec![Job::new(&heavy, &[]); 5];
        fleet.run_batch(&jobs, 1).unwrap();
        assert_eq!(
            (0..3).map(|i| fleet.jobs_on(i)).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
    }

    #[test]
    fn least_worn_balances_heterogeneous_costs() {
        let heavy = burn(10);
        let light = burn(1);
        let mut fleet = Fleet::new(FleetConfig::new(2).with_policy(DispatchPolicy::LeastWorn));
        // heavy → array 0; the next ten light jobs must all avoid it.
        let mut jobs = vec![Job::new(&heavy, &[])];
        jobs.extend(std::iter::repeat_n(Job::new(&light, &[]), 10));
        fleet.run_batch(&jobs, 1).unwrap();
        assert_eq!(fleet.total_writes(0), 10);
        assert_eq!(fleet.total_writes(1), 10);
    }

    #[test]
    fn plan_totals_match_executed_wear() {
        let a = burn(3);
        let b = burn(7);
        let mut fleet = Fleet::new(FleetConfig::new(3));
        let jobs = [
            Job::new(&a, &[]),
            Job::new(&b, &[]),
            Job::new(&a, &[]),
            Job::new(&b, &[]),
        ];
        fleet.run_batch(&jobs, 0).unwrap();
        for i in 0..3 {
            let executed: u64 = fleet.array(i).write_counts().iter().sum();
            assert_eq!(fleet.total_writes(i), executed, "array {i}");
        }
        assert_eq!(fleet.jobs_run(), 4);
    }

    #[test]
    fn serial_and_parallel_identical() {
        let a = burn(2);
        let b = burn(5);
        let jobs: Vec<Job<'_>> = (0..20)
            .map(|i| Job::new(if i % 3 == 0 { &b } else { &a }, &[]))
            .collect();
        let mut serial = Fleet::new(FleetConfig::new(4));
        let out_serial = serial.run_batch(&jobs, 1).unwrap();
        let mut parallel = Fleet::new(FleetConfig::new(4));
        let out_parallel = parallel.run_batch(&jobs, 0).unwrap();
        assert_eq!(out_serial, out_parallel);
        for i in 0..4 {
            assert_eq!(
                serial.array(i).write_counts(),
                parallel.array(i).write_counts(),
                "array {i}"
            );
        }
    }

    #[test]
    fn budget_exhausts_without_stranding_capacity() {
        let job = burn(4);
        // W = 10: each array absorbs 2 cost-4 jobs (8 writes); remaining
        // budget 2 cannot fit another cost-4 job…
        let mut fleet = Fleet::new(FleetConfig::new(2).with_write_budget(10));
        let jobs = vec![Job::new(&job, &[]); 4];
        fleet.run_batch(&jobs, 1).unwrap();
        assert_eq!(fleet.remaining_jobs(4), Some(0));
        assert_eq!(fleet.first_retirement_horizon(4), Some(0));
        let err = fleet.run_batch(&[Job::new(&job, &[])], 1).unwrap_err();
        assert_eq!(
            err,
            FleetError::Exhausted {
                job: 0,
                cost: 4,
                live_arrays: 2
            }
        );
        // The failed batch executed nothing.
        assert_eq!(fleet.total_writes(0), 8);
        assert_eq!(fleet.total_writes(1), 8);
        // …but the 2 remaining writes are NOT stranded: arrays with
        // budget left stay live and serve cheaper jobs, retiring only
        // once fully spent.
        assert!(!fleet.is_retired(0) && !fleet.is_retired(1));
        assert_eq!(fleet.remaining_jobs(2), Some(2));
        let cheap = burn(2);
        fleet.run_batch(&[Job::new(&cheap, &[]); 2], 1).unwrap();
        assert_eq!(fleet.total_writes(0), 10);
        assert_eq!(fleet.total_writes(1), 10);
        assert!(fleet.is_retired(0) && fleet.is_retired(1));
        assert_eq!(fleet.remaining_jobs(1), Some(0));
    }

    #[test]
    fn zero_cost_jobs_have_unbounded_horizons() {
        let mut fleet = Fleet::new(FleetConfig::new(1).with_write_budget(4));
        assert_eq!(fleet.remaining_jobs(0), Some(u64::MAX));
        assert_eq!(fleet.first_retirement_horizon(0), Some(u64::MAX));
        // Spend the budget: the fleet retires and even write-free
        // capacity reads as zero.
        let job = burn(4);
        fleet.run_batch(&[Job::new(&job, &[])], 1).unwrap();
        assert!(fleet.is_retired(0));
        assert_eq!(fleet.remaining_jobs(0), Some(0));
        assert_eq!(fleet.first_retirement_horizon(0), Some(0));
    }

    #[test]
    fn retired_array_never_written_again() {
        let heavy = burn(6);
        let light = burn(1);
        let mut fleet = Fleet::new(FleetConfig::new(2).with_write_budget(6));
        // Array 0 takes the heavy job and is exactly at budget → retired.
        fleet.run_batch(&[Job::new(&heavy, &[])], 1).unwrap();
        assert!(fleet.is_retired(0));
        let frozen = fleet.array(0).write_counts();
        for _ in 0..6 {
            fleet.run_batch(&[Job::new(&light, &[])], 1).unwrap();
        }
        assert_eq!(fleet.array(0).write_counts(), frozen);
        assert_eq!(fleet.total_writes(1), 6);
    }

    #[test]
    fn exhausted_error_reports_job_index() {
        let job = burn(5);
        let mut fleet = Fleet::new(FleetConfig::new(1).with_write_budget(12));
        let jobs = vec![Job::new(&job, &[]); 3];
        let err = fleet.run_batch(&jobs, 1).unwrap_err();
        // Two jobs fit (10 ≤ 12); the third does not.
        assert_eq!(
            err,
            FleetError::Exhausted {
                job: 2,
                cost: 5,
                live_arrays: 1
            }
        );
        assert_eq!(
            err.to_string(),
            "fleet exhausted: none of 1 live arrays can absorb job 2 (5 writes)"
        );
        assert_eq!(err.job(), 2);
        assert_eq!(err.array(), None);
        assert_eq!(err.cell(), None);
    }

    #[test]
    fn physical_endurance_surfaces_with_job_context() {
        let job = burn(1); // one write on cell r0 per run
        let mut fleet = Fleet::new(FleetConfig::new(1).with_endurance(2));
        fleet.run_batch(&[Job::new(&job, &[]); 2], 1).unwrap();
        let err = fleet.run_batch(&[Job::new(&job, &[])], 1).unwrap_err();
        assert_eq!(err.array(), Some(0));
        assert_eq!(err.cell(), Some(CellId::new(0)));
        assert!(
            err.to_string().contains("array 0") && err.to_string().contains("r0"),
            "a fleet failure names the array and the cell: {err}"
        );
        match err {
            FleetError::Fault {
                job,
                array,
                fault: WriteFault::Worn(error),
            } => {
                assert_eq!(job, 0);
                assert_eq!(array, 0);
                assert_eq!(error.limit, 2);
            }
            other => panic!("expected endurance failure, got {other:?}"),
        }
    }

    #[test]
    fn endurance_failure_retires_array_and_reconciles_wear() {
        let job = burn(1); // one write on cell r0 per run
                           // Two arrays, each cell endures 2 writes. Least-worn alternates,
                           // so jobs 4 and 5 (the third run on each array) both fail.
        let mut fleet = Fleet::new(FleetConfig::new(2).with_endurance(2));
        let err = fleet.run_batch(&[Job::new(&job, &[]); 6], 1).unwrap_err();
        assert!(matches!(err, FleetError::Fault { job: 4, .. }), "{err:?}");
        for i in 0..2 {
            assert!(fleet.is_retired(i), "dead array {i} must retire");
            // Planned totals (3 per array) reconciled to executed wear (2).
            assert_eq!(fleet.total_writes(i), 2, "array {i}");
        }
        // A fully-dead fleet rejects further work at plan time.
        let err = fleet.run_batch(&[Job::new(&job, &[])], 1).unwrap_err();
        assert_eq!(
            err,
            FleetError::Exhausted {
                job: 0,
                cost: 1,
                live_arrays: 0
            }
        );
    }

    #[test]
    fn endurance_failure_shrinks_fleet_to_survivors() {
        /// `writes` set1 instructions, all on cell `cell`.
        fn burn_at(cell: u32, writes: usize) -> Program {
            Program {
                instructions: vec![
                    Instruction {
                        p: Operand::Const(true),
                        q: Operand::Const(false),
                        z: CellId::new(cell),
                    };
                    writes
                ],
                num_cells: cell as usize + 1,
                input_cells: vec![],
                output_cells: vec![CellId::new(cell)],
            }
        }
        let heavy = burn_at(0, 2); // wears r0 at 2 writes/run
        let light = burn_at(1, 1); // wears r1 at 1 write/run
                                   // Round-robin over 2 arrays: array 0 serves every heavy job,
                                   // array 1 every light job. Endurance 4 → r0 on array 0 dies on
                                   // the third heavy run; r1 on array 1 survives four light runs.
        let mut fleet = Fleet::new(
            FleetConfig::new(2)
                .with_policy(DispatchPolicy::RoundRobin)
                .with_endurance(4),
        );
        let jobs = Job::alternating(&heavy, &light, &[], 4);
        fleet.run_batch(&jobs, 1).unwrap(); // a0: r0=4, a1: r1=2
        let err = fleet.run_batch(&jobs, 1).unwrap_err();
        assert!(matches!(err, FleetError::Fault { array: 0, .. }), "{err:?}");
        assert!(fleet.is_retired(0));
        assert!(!fleet.is_retired(1));
        // The fleet keeps serving on the survivor instead of failing
        // forever on the dead array.
        let probe = burn_at(2, 1); // fresh cell: no wear conflict
        let survivors_serve = Job::alternating(&probe, &probe, &[], 2);
        fleet.run_batch(&survivors_serve, 1).unwrap();
        assert_eq!(fleet.jobs_on(1), 2 + 2 + 2);
    }

    #[test]
    fn stats_and_horizons() {
        let job = burn(2);
        let mut fleet = Fleet::new(
            FleetConfig::new(2)
                .with_policy(DispatchPolicy::LeastWorn)
                .with_write_budget(10),
        );
        fleet.run_batch(&[Job::new(&job, &[]); 3], 1).unwrap();
        let stats = fleet.stats();
        assert_eq!(stats.jobs, 3);
        assert_eq!(stats.retired, 0);
        assert_eq!(stats.wear.arrays, 2);
        assert_eq!(stats.wear.array_totals.max, 4);
        assert_eq!(stats.wear.array_totals.min, 2);
        // Remaining capacity: (10-4)/2 + (10-2)/2 = 3 + 4 = 7 jobs.
        assert_eq!(fleet.remaining_jobs(2), Some(7));
        assert_eq!(fleet.first_retirement_horizon(2), Some(3));
        // Unbudgeted fleets have unbounded horizons.
        let free = Fleet::new(FleetConfig::new(2));
        assert_eq!(free.remaining_jobs(2), None);
        assert_eq!(free.first_retirement_horizon(2), None);
    }

    /// A one-instruction program storing `value` into cell r0.
    fn set_prog(value: bool) -> Program {
        Program {
            instructions: vec![Instruction {
                p: Operand::Const(value),
                q: Operand::Const(!value),
                z: CellId::new(0),
            }],
            num_cells: 1,
            input_cells: vec![],
            output_cells: vec![CellId::new(0)],
        }
    }

    #[test]
    fn simd_batch_matches_scalar_batch() {
        let a = burn(2);
        let b = burn(5);
        let jobs: Vec<Job<'_>> = (0..70)
            .map(|i| Job::new(if i % 3 == 0 { &b } else { &a }, &[]))
            .collect();
        let mut scalar = Fleet::new(FleetConfig::new(3));
        let out_scalar = scalar.run_batch(&jobs, 1).unwrap();
        let mut simd = Fleet::new(FleetConfig::new(3));
        let out_simd = simd.run_batch_simd(&jobs, 1).unwrap();
        let mut simd_par = Fleet::new(FleetConfig::new(3));
        let out_par = simd_par.run_batch_simd(&jobs, 0).unwrap();
        assert_eq!(out_scalar, out_simd);
        assert_eq!(out_simd, out_par);
        for i in 0..3 {
            assert_eq!(
                scalar.array(i).write_counts(),
                simd.array(i).write_counts(),
                "array {i} wear must not depend on batching"
            );
            assert_eq!(
                simd.array(i).write_counts(),
                simd_par.array(i).write_counts(),
                "array {i} serial vs parallel"
            );
            assert_eq!(scalar.jobs_on(i), simd.jobs_on(i), "array {i} dispatch");
        }
    }

    #[test]
    fn simd_groups_cap_at_64_lanes() {
        let job = burn(1);
        let mut fleet = Fleet::new(FleetConfig::new(1));
        let jobs = vec![Job::new(&job, &[]); 130];
        let out = fleet.run_batch_simd(&jobs, 1).unwrap();
        assert_eq!(out.len(), 130);
        // 130 jobs = 64 + 64 + 2 lane groups, all wear on cell r0.
        assert_eq!(fleet.total_writes(0), 130);
        assert_eq!(fleet.array(0).write_counts()[0], 130);
    }

    #[test]
    fn simd_commit_preserves_serial_last_writer() {
        let ones = set_prog(true);
        let zeros = set_prog(false);
        // Jobs [1, 0, 1] group as ones{0, 2} and zeros{1}; ordering groups
        // by last member commits ones last, matching the serial final
        // value. A scalar fleet run agrees.
        for jobs in [
            vec![Job::new(&ones, &[]), Job::new(&zeros, &[])],
            vec![
                Job::new(&ones, &[]),
                Job::new(&zeros, &[]),
                Job::new(&ones, &[]),
            ],
        ] {
            let mut simd = Fleet::new(FleetConfig::new(1));
            simd.run_batch_simd(&jobs, 1).unwrap();
            let mut scalar = Fleet::new(FleetConfig::new(1));
            scalar.run_batch(&jobs, 1).unwrap();
            assert_eq!(
                simd.array(0).values(),
                scalar.array(0).values(),
                "{} jobs",
                jobs.len()
            );
        }
    }

    #[test]
    fn simd_endurance_failure_is_atomic_per_group() {
        let job = burn(1);
        let mut fleet = Fleet::new(FleetConfig::new(1).with_endurance(2));
        // A 3-lane group needs 3 writes on r0; 3 > 2 fails the whole word
        // write before any lane executes (conservative: never more wear
        // than the serial run), reported for the group's first job.
        let err = fleet
            .run_batch_simd(&[Job::new(&job, &[]); 3], 1)
            .unwrap_err();
        match err {
            FleetError::Fault {
                job,
                array,
                fault: WriteFault::Worn(error),
            } => {
                assert_eq!(job, 0);
                assert_eq!(array, 0);
                assert_eq!(error.limit, 2);
            }
            other => panic!("expected endurance failure, got {other:?}"),
        }
        assert!(fleet.is_retired(0));
        assert_eq!(fleet.total_writes(0), 0, "no lane executed");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut fleet = Fleet::new(FleetConfig::new(2));
        assert_eq!(fleet.run_batch(&[], 0).unwrap(), Vec::<Vec<bool>>::new());
        assert_eq!(fleet.jobs_run(), 0);
    }

    #[test]
    fn policy_parsing_and_labels() {
        assert_eq!(
            "round-robin".parse::<DispatchPolicy>().unwrap(),
            DispatchPolicy::RoundRobin
        );
        assert_eq!(
            "lw".parse::<DispatchPolicy>().unwrap(),
            DispatchPolicy::LeastWorn
        );
        assert!("fifo".parse::<DispatchPolicy>().is_err());
        assert_eq!(DispatchPolicy::LeastWorn.label(), "least-worn");
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn zero_array_fleet_rejected() {
        let _ = FleetConfig::new(0);
    }

    use rlim_rram::variability::EnduranceModel;

    /// A deterministic wear-only fault model: every cell endures exactly
    /// `limit` writes, no stuck-at faults.
    fn wear_only(limit: f64) -> FaultModel {
        FaultModel::new(EnduranceModel::new(limit, 0.0), 0.0, 11)
    }

    #[test]
    fn recovery_remaps_and_completes_where_naive_fleet_aborts() {
        let job = burn(1); // one write on r0 per run
        let jobs = vec![Job::new(&job, &[]); 10];
        let model = wear_only(4.0);

        let mut naive = Fleet::new(FleetConfig::new(1).with_faults(model));
        let err = naive.run_batch(&jobs, 1).unwrap_err();
        assert!(matches!(
            err,
            FleetError::Fault {
                job: 4,
                array: 0,
                fault: WriteFault::Worn(_)
            }
        ));

        let mut healing = Fleet::new(
            FleetConfig::new(1)
                .with_faults(model)
                .with_recovery(RecoveryConfig::new().with_spares(4)),
        );
        let out = healing.run_batch(&jobs, 1).unwrap();
        // Outputs are byte-identical to a fault-free fleet's.
        let mut clean = Fleet::new(FleetConfig::new(1));
        assert_eq!(out, clean.run_batch(&jobs, 1).unwrap());
        // r0 wore out after 4 writes (job 4 remapped to r1), r1 after 4
        // more (job 8 remapped to r2); the array stays in service.
        assert!(!healing.is_retired(0));
        assert_eq!(healing.broken_cells(0), &[CellId::new(0), CellId::new(1)]);
        let log = healing.fault_log();
        assert_eq!(log.worn(), 2);
        assert_eq!(log.remaps(), 2);
        assert_eq!(log.retirements(), 0);
        let events: Vec<String> = log.events().map(|e| e.to_string()).collect();
        assert_eq!(
            events,
            vec![
                "job 4 on array 0: cell r0 worn, remapped to r1",
                "job 8 on array 0: cell r1 worn, remapped to r2",
            ]
        );
        // Wear totals reflect the retries that actually executed.
        let executed: u64 = healing.array(0).write_counts().iter().sum();
        assert_eq!(healing.total_writes(0), executed);
    }

    #[test]
    fn watchdog_retires_arrays_and_redispatches_to_survivors() {
        let job = burn(1);
        let model = wear_only(2.0);
        // spares = 1: each array survives one remap (2 + 2 writes), then
        // the second fault retires it.
        let config = FleetConfig::new(2)
            .with_faults(model)
            .with_recovery(RecoveryConfig::new().with_spares(1));
        let mut fleet = Fleet::new(config.clone());
        // Fleet capacity is exactly 8 jobs (2 cells × 2 writes × 2 arrays).
        let out = fleet.run_batch(&[Job::new(&job, &[]); 8], 1).unwrap();
        assert_eq!(out.len(), 8);
        assert!(!fleet.is_retired(0) && !fleet.is_retired(1));
        // The next jobs fault both arrays past their spare budget: the
        // watchdog retires them and the re-dispatch finds no survivor.
        let err = fleet.run_batch(&[Job::new(&job, &[]); 2], 1).unwrap_err();
        assert_eq!(
            err,
            FleetError::Exhausted {
                job: 0,
                cost: 1,
                live_arrays: 0
            }
        );
        assert!(fleet.is_retired(0) && fleet.is_retired(1));
        assert_eq!(fleet.fault_log().retirements(), 2);
    }

    #[test]
    fn retired_arrays_jobs_redispatch_to_survivors() {
        /// `writes` set1 instructions, all on cell `cell`.
        fn burn_at(cell: u32, writes: usize) -> Program {
            Program {
                instructions: vec![
                    Instruction {
                        p: Operand::Const(true),
                        q: Operand::Const(false),
                        z: CellId::new(cell),
                    };
                    writes
                ],
                num_cells: cell as usize + 1,
                input_cells: vec![],
                output_cells: vec![CellId::new(cell)],
            }
        }
        // Round-robin sends every heavy job (2 writes on r0) to array 0
        // and every light job (1 write on r1) to array 1. With a 4-write
        // cell limit and zero spares, array 0's third heavy job trips the
        // watchdog mid-batch — and must then complete on array 1, whose
        // own r0 is untouched.
        let heavy = burn_at(0, 2);
        let light = burn_at(1, 1);
        let mut fleet = Fleet::new(
            FleetConfig::new(2)
                .with_policy(DispatchPolicy::RoundRobin)
                .with_faults(wear_only(4.0))
                .with_recovery(RecoveryConfig::new().with_spares(0)),
        );
        let jobs = Job::alternating(&heavy, &light, &[], 6);
        let out = fleet.run_batch(&jobs, 1).unwrap();
        assert_eq!(out.len(), 6);
        assert!(fleet.is_retired(0));
        assert!(!fleet.is_retired(1));
        let log = fleet.fault_log();
        assert_eq!(log.retirements(), 1);
        let event = log.events().next().expect("one event");
        assert_eq!(
            (event.job, event.array, event.cell, event.action),
            (4, 0, CellId::new(0), RecoveryAction::Retired)
        );
        // The survivor served its three light jobs plus the re-dispatch.
        assert_eq!(fleet.jobs_on(1), 4);
        // Outputs still match a fault-free fleet's, byte for byte.
        let mut clean = Fleet::new(FleetConfig::new(2).with_policy(DispatchPolicy::RoundRobin));
        assert_eq!(out, clean.run_batch(&jobs, 1).unwrap());
    }

    #[test]
    fn stuck_faults_are_detected_remapped_and_outputs_stay_correct() {
        // Alternating set1/set0 traffic on cells that all go stuck at
        // some write within their (ample) 64-write endurance: the onset
        // is sampled in `1..=limit`, the values alternate, so
        // write-verify catches the first disagreeing store; recovery
        // remaps, and the outputs still match a clean fleet.
        let ones = set_prog(true);
        let zeros = set_prog(false);
        let model = FaultModel::new(EnduranceModel::new(64.0, 0.0), 1.0, 5);
        let jobs: Vec<Job<'_>> = (0..48)
            .map(|i| Job::new(if i % 2 == 0 { &ones } else { &zeros }, &[]))
            .collect();
        let mut healing = Fleet::new(
            FleetConfig::new(1)
                .with_faults(model)
                .with_recovery(RecoveryConfig::new()),
        );
        let out = healing.run_batch(&jobs, 1).unwrap();
        let mut clean = Fleet::new(FleetConfig::new(1));
        assert_eq!(out, clean.run_batch(&jobs, 1).unwrap());
        let log = healing.fault_log();
        assert!(log.stuck() >= 1, "stuck-at faults must surface: {log:?}");
        assert_eq!(log.worn(), 0, "endurance is ample here");
        assert_eq!(log.remaps(), log.total_faults());
    }

    #[test]
    fn chaos_recovery_is_deterministic_serial_vs_parallel() {
        let heavy = burn(3);
        let light = burn(1);
        let model = FaultModel::new(EnduranceModel::new(16.0, 0.4), 0.05, 7);
        let config = || {
            FleetConfig::new(4)
                .with_faults(model)
                .with_recovery(RecoveryConfig::new())
        };
        let jobs = Job::alternating(&heavy, &light, &[], 40);
        let mut serial = Fleet::new(config());
        let out_serial = serial.run_batch(&jobs, 1).unwrap();
        let mut parallel = Fleet::new(config());
        let out_parallel = parallel.run_batch(&jobs, 0).unwrap();
        assert_eq!(out_serial, out_parallel);
        for i in 0..4 {
            assert_eq!(
                serial.array(i).write_counts(),
                parallel.array(i).write_counts(),
                "array {i} wear"
            );
            assert_eq!(
                serial.broken_cells(i),
                parallel.broken_cells(i),
                "array {i}"
            );
        }
        assert_eq!(serial.fault_log(), parallel.fault_log());
        assert!(
            serial.fault_log().total_faults() > 0,
            "the scenario must actually exercise recovery"
        );
    }

    #[test]
    fn chaos_simd_batches_fall_back_to_the_scalar_path() {
        let job = burn(1);
        let jobs = vec![Job::new(&job, &[]); 10];
        let model = wear_only(4.0);
        let config = || {
            FleetConfig::new(1)
                .with_faults(model)
                .with_recovery(RecoveryConfig::new().with_spares(4))
        };
        let mut simd = Fleet::new(config());
        let out_simd = simd.run_batch_simd(&jobs, 1).unwrap();
        let mut scalar = Fleet::new(config());
        assert_eq!(out_simd, scalar.run_batch(&jobs, 1).unwrap());
        assert_eq!(simd.fault_log(), scalar.fault_log());
        assert_eq!(simd.array(0).write_counts(), scalar.array(0).write_counts());
    }
}
