//! A fleet of PLiM crossbars with endurance-aware dispatch.
//!
//! The DATE 2017 paper balances write traffic *inside* one crossbar; this
//! module lifts the same two allocation ideas to **array granularity** so
//! a multi-crossbar system can serve a stream of compiled programs:
//!
//! * [`DispatchPolicy::LeastWorn`] mirrors the paper's *minimum write
//!   count strategy*: each job goes to the live array with the fewest
//!   accumulated writes, so heterogeneous programs cannot concentrate
//!   wear on one array.
//! * [`FleetConfig::with_write_budget`] mirrors the *maximum write count
//!   strategy*: arrays whose remaining budget cannot fit a job are
//!   skipped for it (never stranding budget a cheaper later job could
//!   still use), and an array whose budget is fully consumed — it cannot
//!   fit even a single write, exactly the paper's cell-retirement rule —
//!   is **retired**: it never executes another write, and the remaining
//!   arrays take over.
//! * [`DispatchPolicy::RoundRobin`] is the oblivious baseline the
//!   evaluation compares against.
//!
//! ## Determinism
//!
//! Dispatch is planned serially before anything executes: a PLiM program's
//! write cost is static (every execution writes the same cells the same
//! number of times), so the plan depends only on the job sequence and the
//! fleet's accumulated wear — never on thread scheduling. Execution then
//! runs each array's job list in plan order, arrays in parallel on a
//! scoped worker pool following the workspace convention (`threads == 0`
//! means one worker per core, `1` forces serial); arrays are disjoint, so
//! serial and parallel runs are byte-identical.
//!
//! ## Example
//!
//! ```
//! use rlim_plim::{DispatchPolicy, Fleet, FleetConfig, Instruction, Job, Operand, Program};
//! use rlim_rram::CellId;
//!
//! // set1 r0 — a one-instruction program costing one write per run.
//! let program = Program {
//!     instructions: vec![Instruction {
//!         p: Operand::Const(true),
//!         q: Operand::Const(false),
//!         z: CellId::new(0),
//!     }],
//!     num_cells: 1,
//!     input_cells: vec![],
//!     output_cells: vec![CellId::new(0)],
//! };
//! let mut fleet = Fleet::new(
//!     FleetConfig::new(2).with_policy(DispatchPolicy::LeastWorn),
//! );
//! let jobs = vec![Job::new(&program, &[]); 4];
//! let outputs = fleet.run_batch(&jobs, 1).unwrap();
//! assert_eq!(outputs.len(), 4);
//! // Four one-write jobs over two arrays: perfectly balanced.
//! assert_eq!(fleet.total_writes(0), 2);
//! assert_eq!(fleet.total_writes(1), 2);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rlim_rram::{Crossbar, EnduranceError, FleetWriteStats, WideCrossbar};

use crate::isa::Program;
use crate::machine::Machine;
use crate::wide::WideMachine;

/// How the dispatcher chooses an array for the next job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatchPolicy {
    /// Rotate through live arrays regardless of wear — the oblivious
    /// baseline. Arrays that cannot fit the job are skipped.
    RoundRobin,
    /// The paper's minimum write count strategy at array granularity:
    /// send the job to the live, fitting array with the fewest total
    /// writes (ties broken by lowest array index).
    #[default]
    LeastWorn,
}

impl DispatchPolicy {
    /// Short label used in tables and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastWorn => "least-worn",
        }
    }
}

impl std::str::FromStr for DispatchPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" | "rr" => Ok(DispatchPolicy::RoundRobin),
            "least-worn" | "lw" => Ok(DispatchPolicy::LeastWorn),
            other => Err(format!(
                "unknown dispatch policy `{other}` (round-robin | least-worn)"
            )),
        }
    }
}

/// Configuration of a [`Fleet`].
///
/// # Examples
///
/// ```
/// use rlim_plim::{DispatchPolicy, FleetConfig};
///
/// let config = FleetConfig::new(4)
///     .with_policy(DispatchPolicy::RoundRobin)
///     .with_write_budget(10_000);
/// assert_eq!(config.arrays, 4);
/// assert_eq!(config.write_budget, Some(10_000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of crossbar arrays.
    pub arrays: usize,
    /// Dispatch policy.
    pub policy: DispatchPolicy,
    /// Per-array total-write budget `W`: arrays that cannot fit a job
    /// within `W` total writes are skipped for it, and an array whose
    /// budget is fully consumed is retired — the maximum write count
    /// strategy lifted to arrays.
    pub write_budget: Option<u64>,
    /// Physical per-cell endurance limit of every array (writes fail with
    /// [`EnduranceError`] beyond it), as in [`Machine::with_endurance`].
    pub endurance: Option<u64>,
}

impl FleetConfig {
    /// A fleet of `arrays` crossbars with least-worn dispatch, no write
    /// budget and no physical endurance limit.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn new(arrays: usize) -> Self {
        assert!(arrays > 0, "a fleet needs at least one array");
        FleetConfig {
            arrays,
            policy: DispatchPolicy::default(),
            write_budget: None,
            endurance: None,
        }
    }

    /// Sets the dispatch policy.
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-array total-write budget `W`.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn with_write_budget(mut self, budget: u64) -> Self {
        assert!(budget > 0, "write budget must be positive");
        self.write_budget = Some(budget);
        self
    }

    /// Sets the physical per-cell endurance limit.
    pub fn with_endurance(mut self, limit: u64) -> Self {
        self.endurance = Some(limit);
        self
    }
}

/// One unit of fleet work: a compiled program plus its input vector.
#[derive(Debug, Clone, Copy)]
pub struct Job<'a> {
    /// The compiled PLiM program to execute.
    pub program: &'a Program,
    /// Primary-input values, in the program's PI order.
    pub inputs: &'a [bool],
}

impl<'a> Job<'a> {
    /// Bundles a program with its inputs.
    pub fn new(program: &'a Program, inputs: &'a [bool]) -> Self {
        Job { program, inputs }
    }

    /// The job's static write cost: one write per RM3 instruction.
    pub fn cost(&self) -> u64 {
        self.program.total_writes()
    }

    /// The standard heterogeneous evaluation stream: `count` jobs
    /// alternating `heavy` and `light` (heavy first), all sharing one
    /// input vector. Periodic traffic like this is what separates
    /// wear-aware dispatch from oblivious striping; the CLI, the bench
    /// runner and the test-suite use it directly, and the `fleet` eval
    /// sweep builds the same alternation with per-job random inputs.
    pub fn alternating(
        heavy: &'a Program,
        light: &'a Program,
        inputs: &'a [bool],
        count: usize,
    ) -> Vec<Job<'a>> {
        (0..count)
            .map(|i| Job::new(if i % 2 == 0 { heavy } else { light }, inputs))
            .collect()
    }
}

/// A fleet batch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// No live array could absorb job `job` within its write budget; wear
    /// from jobs before `job` in the batch was **not** applied (dispatch
    /// is planned before anything executes).
    Exhausted {
        /// Index of the unplaceable job in the batch.
        job: usize,
    },
    /// A physical endurance limit was hit while executing job `job`.
    /// Writes performed before the failure (on this and other arrays)
    /// persist, and the failed array is retired.
    Endurance {
        /// Index of the failing job in the batch.
        job: usize,
        /// The array the job was dispatched to.
        array: usize,
        /// The underlying cell failure.
        error: EnduranceError,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Exhausted { job } => {
                write!(f, "fleet exhausted: no array can absorb job {job}")
            }
            FleetError::Endurance { job, array, error } => {
                write!(f, "job {job} on array {array}: {error}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// One crossbar of the fleet plus its dispatch bookkeeping.
#[derive(Debug, Clone)]
struct Slot {
    machine: Machine,
    /// Total writes accumulated (plan-time mirror of the machine's wear).
    total: u64,
    /// Jobs ever dispatched to this array.
    jobs: u64,
    retired: bool,
}

/// One array's dispatch bookkeeping, as reported by
/// [`Fleet::array_stats`]: the per-array rows behind the pooled
/// [`FleetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayStats {
    /// Jobs ever dispatched to this array.
    pub jobs: u64,
    /// Total writes executed on this array.
    pub writes: u64,
    /// Whether the array has been retired (budget spent or endurance
    /// failure).
    pub retired: bool,
}

/// Fleet-level wear summary returned by [`Fleet::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Write-traffic distributions per array and pooled per cell.
    pub wear: FleetWriteStats,
    /// Number of retired arrays.
    pub retired: usize,
    /// Jobs dispatched since construction.
    pub jobs: u64,
}

/// A fleet of independent PLiM crossbars behind one dispatcher.
///
/// Construct with [`Fleet::new`], feed batches of [`Job`]s through
/// [`Fleet::run_batch`], and read wear back with [`Fleet::stats`]. Arrays
/// persist across batches, so wear (and retirement) accumulates exactly as
/// in the single-machine lifetime experiments.
#[derive(Debug, Clone)]
pub struct Fleet {
    slots: Vec<Slot>,
    policy: DispatchPolicy,
    write_budget: Option<u64>,
    /// Round-robin scan position.
    cursor: usize,
    jobs_run: u64,
}

impl Fleet {
    /// Builds the fleet: `config.arrays` empty crossbars with zero wear.
    pub fn new(config: FleetConfig) -> Self {
        let slots = (0..config.arrays)
            .map(|_| Slot {
                machine: Machine::with_array(match config.endurance {
                    Some(limit) => Crossbar::with_endurance(limit),
                    None => Crossbar::new(),
                }),
                total: 0,
                jobs: 0,
                retired: false,
            })
            .collect();
        Fleet {
            slots,
            policy: config.policy,
            write_budget: config.write_budget,
            cursor: 0,
            jobs_run: 0,
        }
    }

    /// Number of arrays (live and retired).
    pub fn num_arrays(&self) -> usize {
        self.slots.len()
    }

    /// The dispatch policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The per-array write budget, if any.
    pub fn write_budget(&self) -> Option<u64> {
        self.write_budget
    }

    /// Whether array `index` has been retired — by exhausting its write
    /// budget or by a physical endurance failure. A retired array never
    /// executes another write.
    pub fn is_retired(&self, index: usize) -> bool {
        self.slots[index].retired
    }

    /// The crossbar of array `index` (wear counters, stored values).
    pub fn array(&self, index: usize) -> &Crossbar {
        self.slots[index].machine.array()
    }

    /// Total writes executed on array `index`.
    pub fn total_writes(&self, index: usize) -> u64 {
        self.slots[index].total
    }

    /// Jobs dispatched to array `index` since construction (a job whose
    /// array failed mid-batch still counts as dispatched).
    pub fn jobs_on(&self, index: usize) -> u64 {
        self.slots[index].jobs
    }

    /// Jobs dispatched fleet-wide since construction.
    pub fn jobs_run(&self) -> u64 {
        self.jobs_run
    }

    /// Per-array dispatch bookkeeping in array order: jobs, total writes
    /// and retirement, the rows a service report renders per array.
    pub fn array_stats(&self) -> Vec<ArrayStats> {
        self.slots
            .iter()
            .map(|s| ArrayStats {
                jobs: s.jobs,
                writes: s.total,
                retired: s.retired,
            })
            .collect()
    }

    /// Fleet-level wear statistics: per-array totals/peaks and the pooled
    /// per-cell distribution, plus retirement progress.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            wear: FleetWriteStats::from_arrays(
                self.slots.iter().map(|s| s.machine.array().write_counts()),
            ),
            retired: self.slots.iter().filter(|s| s.retired).count(),
            jobs: self.jobs_run,
        }
    }

    /// How many more jobs of write cost `cost` the fleet can absorb before
    /// every array is exhausted: `Σᵢ ⌊remainingᵢ / cost⌋` over live
    /// arrays. `None` when no write budget is configured (unbounded);
    /// `Some(u64::MAX)` for write-free jobs (`cost == 0`) while any array
    /// is live, since such jobs consume no budget.
    pub fn remaining_jobs(&self, cost: u64) -> Option<u64> {
        let budget = self.write_budget?;
        if cost == 0 {
            let any_live = self.slots.iter().any(|s| !s.retired);
            return Some(if any_live { u64::MAX } else { 0 });
        }
        Some(
            self.slots
                .iter()
                .filter(|s| !s.retired)
                .map(|s| budget.saturating_sub(s.total) / cost)
                .sum(),
        )
    }

    /// The first-retirement horizon: jobs of write cost `cost` the
    /// most-worn live array can still absorb — the earliest point at which
    /// the fleet can lose an array. `None` when no write budget is
    /// configured; `Some(0)` when every array is retired;
    /// `Some(u64::MAX)` for write-free jobs on a live fleet.
    pub fn first_retirement_horizon(&self, cost: u64) -> Option<u64> {
        let budget = self.write_budget?;
        if cost == 0 {
            let any_live = self.slots.iter().any(|s| !s.retired);
            return Some(if any_live { u64::MAX } else { 0 });
        }
        Some(
            self.slots
                .iter()
                .filter(|s| !s.retired)
                .map(|s| budget.saturating_sub(s.total) / cost)
                .min()
                .unwrap_or(0),
        )
    }

    /// Dispatches and executes a batch of jobs, returning each job's
    /// primary outputs in batch order.
    ///
    /// Dispatch is planned serially first (see the module docs), then each
    /// array executes its assigned jobs in plan order, arrays in parallel
    /// over `threads` scoped workers (`0` = one per available core, `1` =
    /// forced serial). Serial and parallel runs produce identical outputs
    /// and identical wear.
    ///
    /// # Errors
    ///
    /// * [`FleetError::Exhausted`] if some job cannot be placed within the
    ///   write budget — detected at plan time, before any write executes.
    /// * [`FleetError::Endurance`] if a physical endurance limit fails a
    ///   write at run time. Earlier writes persist, the failed array is
    ///   **retired** (later batches go to the survivors), and its wear
    ///   bookkeeping is reconciled to the writes that actually executed.
    ///   Outputs of jobs that did complete in the failed batch are not
    ///   returned, so callers operating close to an endurance limit
    ///   should prefer small batches (the lifetime experiments submit one
    ///   job at a time) to avoid re-executing — and re-wearing — work.
    ///
    /// # Panics
    ///
    /// Panics if a job's input vector does not match its program's
    /// interface.
    pub fn run_batch(
        &mut self,
        jobs: &[Job<'_>],
        threads: usize,
    ) -> Result<Vec<Vec<bool>>, FleetError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let (assignment, per_array) = self.prepare_batch(jobs)?;
        let results: Vec<ResultSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        self.execute_arrays(&per_array, threads, |machine, list| {
            for &j in list {
                let outcome = machine.run(jobs[j].program, jobs[j].inputs);
                let failed = outcome.is_err();
                *results[j].lock().expect("result lock") = Some(outcome);
                if failed {
                    return; // this array is dead; its later jobs never ran
                }
            }
        });
        self.collect_results(&assignment, results)
    }

    /// [`Fleet::run_batch`] with the batch packed into SIMD lanes: jobs
    /// dispatched to the same array that share a program are executed as
    /// one word-level [`WideMachine`] pass of up to 64 lanes per
    /// instruction, instead of one scalar run per job.
    ///
    /// Dispatch, job outputs and wear are unchanged: the plan is the one
    /// [`Fleet::run_batch`] would produce, word writes charge one logical
    /// write per lane so every array's per-cell write counts (and thus all
    /// [`FleetStats`]) equal the unbatched run's, and serial and parallel
    /// invocations stay byte-identical. Lane groups commit in order of
    /// their last dispatched job, so each cell's final stored value is the
    /// serial last writer's. Two observable deviations, both outside the
    /// endurance evaluation: per-cell *switch* counts may differ (a word
    /// store cannot observe per-lane flips), and an endurance failure is
    /// reported for the first job of the failing lane group — word writes
    /// fail atomically, never exceeding the serial run's wear.
    ///
    /// Programs are assumed state-insensitive — every work cell is
    /// established (`set0`/`set1`) before it is read, which `rlim-compiler`
    /// output guarantees and the differential suite asserts. A hand-written
    /// program that reads a cell it never established may observe different
    /// garbage lane values than a scalar run.
    ///
    /// # Errors
    ///
    /// As [`Fleet::run_batch`].
    ///
    /// # Panics
    ///
    /// Panics if a job's input vector does not match its program's
    /// interface.
    pub fn run_batch_simd(
        &mut self,
        jobs: &[Job<'_>],
        threads: usize,
    ) -> Result<Vec<Vec<bool>>, FleetError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let (assignment, per_array) = self.prepare_batch(jobs)?;
        let results: Vec<ResultSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        self.execute_arrays(&per_array, threads, |machine, list| {
            for group in lane_groups(jobs, list) {
                let lanes = group.len();
                let program = jobs[group[0]].program;
                let lane_inputs: Vec<&[bool]> = group.iter().map(|&j| jobs[j].inputs).collect();
                let overlay = WideCrossbar::from_scalar(machine.array());
                let mut wide = WideMachine::with_array(overlay, lanes);
                let outcome = wide.run(program, &lane_inputs);
                // Commit even on failure: wear performed before the failing
                // word write persists, as in the scalar path.
                wide.array().commit_into(machine.array_mut(), lanes - 1);
                match outcome {
                    Ok(lane_outputs) => {
                        for (&j, out) in group.iter().zip(lane_outputs) {
                            *results[j].lock().expect("result lock") = Some(Ok(out));
                        }
                    }
                    Err(error) => {
                        *results[group[0]].lock().expect("result lock") = Some(Err(error));
                        return; // this array is dead; later groups never ran
                    }
                }
            }
        });
        self.collect_results(&assignment, results)
    }

    /// Plans a batch and commits the plan: wear totals, job counts,
    /// retirement and the round-robin cursor. Returns the job → array
    /// assignment and each array's job list (in dispatch order), with
    /// every involved crossbar grown to its largest program.
    ///
    /// Planning is serial, deterministic and transactional — a batch that
    /// exhausts the fleet leaves all bookkeeping untouched.
    fn prepare_batch(
        &mut self,
        jobs: &[Job<'_>],
    ) -> Result<(Vec<usize>, Vec<Vec<usize>>), FleetError> {
        let costs: Vec<u64> = jobs.iter().map(Job::cost).collect();
        let mut plan = Planner {
            totals: self.slots.iter().map(|s| s.total).collect(),
            job_counts: self.slots.iter().map(|s| s.jobs).collect(),
            retired: self.slots.iter().map(|s| s.retired).collect(),
            cursor: self.cursor,
            policy: self.policy,
            write_budget: self.write_budget,
        };
        plan.retire_spent();
        let mut assignment = Vec::with_capacity(jobs.len());
        for (j, &cost) in costs.iter().enumerate() {
            let slot = plan.place(cost).ok_or(FleetError::Exhausted { job: j })?;
            plan.totals[slot] += cost;
            plan.job_counts[slot] += 1;
            assignment.push(slot);
            plan.retire_spent();
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.total = plan.totals[i];
            slot.jobs = plan.job_counts[i];
            slot.retired = plan.retired[i];
        }
        self.cursor = plan.cursor;
        self.jobs_run += jobs.len() as u64;

        let mut per_array: Vec<Vec<usize>> = vec![Vec::new(); self.slots.len()];
        for (j, &slot) in assignment.iter().enumerate() {
            per_array[slot].push(j);
        }
        for (slot, list) in self.slots.iter_mut().zip(&per_array) {
            let cells = list.iter().map(|&j| jobs[j].program.num_cells).max();
            if let Some(cells) = cells {
                slot.machine.ensure_cells(cells);
            }
        }
        Ok((assignment, per_array))
    }

    /// Runs `run_task` once per non-empty array job list, arrays in
    /// parallel over `threads` scoped workers (`0` = one per available
    /// core, `1` = forced serial). Arrays are disjoint, so serial and
    /// parallel schedules produce identical state.
    fn execute_arrays<F>(&mut self, per_array: &[Vec<usize>], threads: usize, run_task: F)
    where
        F: Fn(&mut Machine, &[usize]) + Sync,
    {
        type TaskSlot<'m> = Mutex<Option<(&'m mut Machine, &'m [usize])>>;
        let tasks: Vec<TaskSlot<'_>> = self
            .slots
            .iter_mut()
            .zip(per_array)
            .filter(|(_, list)| !list.is_empty())
            .map(|(slot, list)| Mutex::new(Some((&mut slot.machine, list.as_slice()))))
            .collect();
        let workers = resolve_threads(threads, tasks.len());
        if workers <= 1 {
            for task in &tasks {
                let (machine, list) = task.lock().expect("task lock").take().expect("task set");
                run_task(machine, list);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            return;
                        }
                        let (machine, list) = tasks[i]
                            .lock()
                            .expect("task lock")
                            .take()
                            .expect("task set");
                        run_task(machine, list);
                    });
                }
            });
        }
    }

    /// Aggregates per-job outcomes in batch order, retiring arrays that
    /// failed on endurance and reconciling their planned wear to the
    /// writes that actually executed.
    fn collect_results(
        &mut self,
        assignment: &[usize],
        results: Vec<ResultSlot>,
    ) -> Result<Vec<Vec<bool>>, FleetError> {
        let mut outputs = Vec::with_capacity(results.len());
        let mut first_error: Option<FleetError> = None;
        for (j, cell) in results.into_iter().enumerate() {
            match cell.into_inner().expect("no poisoned lock") {
                Some(Ok(out)) => outputs.push(out),
                Some(Err(error)) => {
                    // A dead cell is permanent: retire the array so later
                    // batches go to the survivors, and replace its planned
                    // wear with the writes that actually executed.
                    let array = assignment[j];
                    let slot = &mut self.slots[array];
                    slot.retired = true;
                    slot.total = slot.machine.array().write_counts().iter().sum();
                    if first_error.is_none() {
                        first_error = Some(FleetError::Endurance {
                            job: j,
                            array,
                            error,
                        });
                    }
                }
                // Jobs queued behind a failed one on the same array never
                // ran; the earliest failing job is the error reported.
                None => {}
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(outputs),
        }
    }
}

/// Per-job outcome slot shared between the planner thread and the array
/// workers.
type ResultSlot = Mutex<Option<Result<Vec<bool>, EnduranceError>>>;

/// Packs one array's planned job list into SIMD lane groups: jobs sharing
/// a program (by reference identity), up to [`WideCrossbar::LANES`] per
/// group, in dispatch order within each group.
///
/// Groups are returned ordered by their *last* member's batch index, so
/// that the group committing last on any cell contains the serial last
/// writer of that cell: a program always writes the same cell set, and a
/// cell a group's program never writes commits as a no-op (it still holds
/// the snapshot of the previous commit).
fn lane_groups(jobs: &[Job<'_>], list: &[usize]) -> Vec<Vec<usize>> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for &j in list {
        let key = std::ptr::from_ref(jobs[j].program) as usize;
        // Only the newest group of a program can be open (earlier ones
        // were closed at 64 lanes), so scanning from the back finds it.
        match groups
            .iter_mut()
            .rev()
            .find(|(k, g)| *k == key && g.len() < WideCrossbar::LANES)
        {
            Some((_, group)) => group.push(j),
            None => groups.push((key, vec![j])),
        }
    }
    groups.sort_by_key(|(_, g)| *g.last().expect("groups are non-empty"));
    groups.into_iter().map(|(_, g)| g).collect()
}

/// Scratch dispatch state: a copy of the fleet's wear bookkeeping that a
/// batch plan mutates, committed back only when every job places.
struct Planner {
    totals: Vec<u64>,
    job_counts: Vec<u64>,
    retired: Vec<bool>,
    cursor: usize,
    policy: DispatchPolicy,
    write_budget: Option<u64>,
}

impl Planner {
    /// Whether array `slot` can absorb `cost` more writes.
    fn fits(&self, slot: usize, cost: u64) -> bool {
        match self.write_budget {
            None => true,
            Some(w) => self.totals[slot] + cost <= w,
        }
    }

    /// Chooses a live, fitting array for a job of write cost `cost`, or
    /// `None` when the fleet is exhausted for this cost.
    fn place(&mut self, cost: u64) -> Option<usize> {
        let n = self.totals.len();
        match self.policy {
            DispatchPolicy::RoundRobin => {
                for step in 0..n {
                    let i = (self.cursor + step) % n;
                    if !self.retired[i] && self.fits(i, cost) {
                        self.cursor = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
            DispatchPolicy::LeastWorn => (0..n)
                .filter(|&i| !self.retired[i] && self.fits(i, cost))
                .min_by_key(|&i| (self.totals[i], i)),
        }
    }

    /// Retires every live array whose budget is fully consumed (it cannot
    /// fit even a single write) — the array-level analogue of dropping
    /// at-limit cells from the compile-time free pool. Arrays with budget
    /// left are never retired here, only skipped by [`Planner::place`]
    /// for jobs they cannot fit, so remaining capacity stays reachable
    /// for cheaper later jobs.
    fn retire_spent(&mut self) {
        let Some(budget) = self.write_budget else {
            return;
        };
        for (i, retired) in self.retired.iter_mut().enumerate() {
            if !*retired && self.totals[i] >= budget {
                *retired = true;
            }
        }
    }
}

/// Worker-count resolution following `rlim-testkit`'s convention (`0` =
/// one per available core, never more workers than tasks). Local copy:
/// `rlim-plim` sits below the testkit in the crate graph.
fn resolve_threads(requested: usize, tasks: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        requested
    };
    t.clamp(1, tasks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instruction, Operand};
    use rlim_rram::CellId;

    /// A program of `writes` set1 instructions on distinct cells.
    fn burn(writes: usize) -> Program {
        Program {
            instructions: (0..writes)
                .map(|i| Instruction {
                    p: Operand::Const(true),
                    q: Operand::Const(false),
                    z: CellId::new(i as u32),
                })
                .collect(),
            num_cells: writes.max(1),
            input_cells: vec![],
            output_cells: vec![CellId::new(0)],
        }
    }

    #[test]
    fn round_robin_rotates() {
        let heavy = burn(4);
        let mut fleet = Fleet::new(FleetConfig::new(3).with_policy(DispatchPolicy::RoundRobin));
        let jobs = vec![Job::new(&heavy, &[]); 5];
        fleet.run_batch(&jobs, 1).unwrap();
        assert_eq!(
            (0..3).map(|i| fleet.jobs_on(i)).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
    }

    #[test]
    fn least_worn_balances_heterogeneous_costs() {
        let heavy = burn(10);
        let light = burn(1);
        let mut fleet = Fleet::new(FleetConfig::new(2).with_policy(DispatchPolicy::LeastWorn));
        // heavy → array 0; the next ten light jobs must all avoid it.
        let mut jobs = vec![Job::new(&heavy, &[])];
        jobs.extend(std::iter::repeat_n(Job::new(&light, &[]), 10));
        fleet.run_batch(&jobs, 1).unwrap();
        assert_eq!(fleet.total_writes(0), 10);
        assert_eq!(fleet.total_writes(1), 10);
    }

    #[test]
    fn plan_totals_match_executed_wear() {
        let a = burn(3);
        let b = burn(7);
        let mut fleet = Fleet::new(FleetConfig::new(3));
        let jobs = [
            Job::new(&a, &[]),
            Job::new(&b, &[]),
            Job::new(&a, &[]),
            Job::new(&b, &[]),
        ];
        fleet.run_batch(&jobs, 0).unwrap();
        for i in 0..3 {
            let executed: u64 = fleet.array(i).write_counts().iter().sum();
            assert_eq!(fleet.total_writes(i), executed, "array {i}");
        }
        assert_eq!(fleet.jobs_run(), 4);
    }

    #[test]
    fn serial_and_parallel_identical() {
        let a = burn(2);
        let b = burn(5);
        let jobs: Vec<Job<'_>> = (0..20)
            .map(|i| Job::new(if i % 3 == 0 { &b } else { &a }, &[]))
            .collect();
        let mut serial = Fleet::new(FleetConfig::new(4));
        let out_serial = serial.run_batch(&jobs, 1).unwrap();
        let mut parallel = Fleet::new(FleetConfig::new(4));
        let out_parallel = parallel.run_batch(&jobs, 0).unwrap();
        assert_eq!(out_serial, out_parallel);
        for i in 0..4 {
            assert_eq!(
                serial.array(i).write_counts(),
                parallel.array(i).write_counts(),
                "array {i}"
            );
        }
    }

    #[test]
    fn budget_exhausts_without_stranding_capacity() {
        let job = burn(4);
        // W = 10: each array absorbs 2 cost-4 jobs (8 writes); remaining
        // budget 2 cannot fit another cost-4 job…
        let mut fleet = Fleet::new(FleetConfig::new(2).with_write_budget(10));
        let jobs = vec![Job::new(&job, &[]); 4];
        fleet.run_batch(&jobs, 1).unwrap();
        assert_eq!(fleet.remaining_jobs(4), Some(0));
        assert_eq!(fleet.first_retirement_horizon(4), Some(0));
        let err = fleet.run_batch(&[Job::new(&job, &[])], 1).unwrap_err();
        assert_eq!(err, FleetError::Exhausted { job: 0 });
        // The failed batch executed nothing.
        assert_eq!(fleet.total_writes(0), 8);
        assert_eq!(fleet.total_writes(1), 8);
        // …but the 2 remaining writes are NOT stranded: arrays with
        // budget left stay live and serve cheaper jobs, retiring only
        // once fully spent.
        assert!(!fleet.is_retired(0) && !fleet.is_retired(1));
        assert_eq!(fleet.remaining_jobs(2), Some(2));
        let cheap = burn(2);
        fleet.run_batch(&[Job::new(&cheap, &[]); 2], 1).unwrap();
        assert_eq!(fleet.total_writes(0), 10);
        assert_eq!(fleet.total_writes(1), 10);
        assert!(fleet.is_retired(0) && fleet.is_retired(1));
        assert_eq!(fleet.remaining_jobs(1), Some(0));
    }

    #[test]
    fn zero_cost_jobs_have_unbounded_horizons() {
        let mut fleet = Fleet::new(FleetConfig::new(1).with_write_budget(4));
        assert_eq!(fleet.remaining_jobs(0), Some(u64::MAX));
        assert_eq!(fleet.first_retirement_horizon(0), Some(u64::MAX));
        // Spend the budget: the fleet retires and even write-free
        // capacity reads as zero.
        let job = burn(4);
        fleet.run_batch(&[Job::new(&job, &[])], 1).unwrap();
        assert!(fleet.is_retired(0));
        assert_eq!(fleet.remaining_jobs(0), Some(0));
        assert_eq!(fleet.first_retirement_horizon(0), Some(0));
    }

    #[test]
    fn retired_array_never_written_again() {
        let heavy = burn(6);
        let light = burn(1);
        let mut fleet = Fleet::new(FleetConfig::new(2).with_write_budget(6));
        // Array 0 takes the heavy job and is exactly at budget → retired.
        fleet.run_batch(&[Job::new(&heavy, &[])], 1).unwrap();
        assert!(fleet.is_retired(0));
        let frozen = fleet.array(0).write_counts();
        for _ in 0..6 {
            fleet.run_batch(&[Job::new(&light, &[])], 1).unwrap();
        }
        assert_eq!(fleet.array(0).write_counts(), frozen);
        assert_eq!(fleet.total_writes(1), 6);
    }

    #[test]
    fn exhausted_error_reports_job_index() {
        let job = burn(5);
        let mut fleet = Fleet::new(FleetConfig::new(1).with_write_budget(12));
        let jobs = vec![Job::new(&job, &[]); 3];
        let err = fleet.run_batch(&jobs, 1).unwrap_err();
        // Two jobs fit (10 ≤ 12); the third does not.
        assert_eq!(err, FleetError::Exhausted { job: 2 });
        assert_eq!(
            err.to_string(),
            "fleet exhausted: no array can absorb job 2"
        );
    }

    #[test]
    fn physical_endurance_surfaces_with_job_context() {
        let job = burn(1); // one write on cell r0 per run
        let mut fleet = Fleet::new(FleetConfig::new(1).with_endurance(2));
        fleet.run_batch(&[Job::new(&job, &[]); 2], 1).unwrap();
        let err = fleet.run_batch(&[Job::new(&job, &[])], 1).unwrap_err();
        match err {
            FleetError::Endurance { job, array, error } => {
                assert_eq!(job, 0);
                assert_eq!(array, 0);
                assert_eq!(error.limit, 2);
            }
            other => panic!("expected endurance failure, got {other:?}"),
        }
    }

    #[test]
    fn endurance_failure_retires_array_and_reconciles_wear() {
        let job = burn(1); // one write on cell r0 per run
                           // Two arrays, each cell endures 2 writes. Least-worn alternates,
                           // so jobs 4 and 5 (the third run on each array) both fail.
        let mut fleet = Fleet::new(FleetConfig::new(2).with_endurance(2));
        let err = fleet.run_batch(&[Job::new(&job, &[]); 6], 1).unwrap_err();
        assert!(
            matches!(err, FleetError::Endurance { job: 4, .. }),
            "{err:?}"
        );
        for i in 0..2 {
            assert!(fleet.is_retired(i), "dead array {i} must retire");
            // Planned totals (3 per array) reconciled to executed wear (2).
            assert_eq!(fleet.total_writes(i), 2, "array {i}");
        }
        // A fully-dead fleet rejects further work at plan time.
        let err = fleet.run_batch(&[Job::new(&job, &[])], 1).unwrap_err();
        assert_eq!(err, FleetError::Exhausted { job: 0 });
    }

    #[test]
    fn endurance_failure_shrinks_fleet_to_survivors() {
        /// `writes` set1 instructions, all on cell `cell`.
        fn burn_at(cell: u32, writes: usize) -> Program {
            Program {
                instructions: vec![
                    Instruction {
                        p: Operand::Const(true),
                        q: Operand::Const(false),
                        z: CellId::new(cell),
                    };
                    writes
                ],
                num_cells: cell as usize + 1,
                input_cells: vec![],
                output_cells: vec![CellId::new(cell)],
            }
        }
        let heavy = burn_at(0, 2); // wears r0 at 2 writes/run
        let light = burn_at(1, 1); // wears r1 at 1 write/run
                                   // Round-robin over 2 arrays: array 0 serves every heavy job,
                                   // array 1 every light job. Endurance 4 → r0 on array 0 dies on
                                   // the third heavy run; r1 on array 1 survives four light runs.
        let mut fleet = Fleet::new(
            FleetConfig::new(2)
                .with_policy(DispatchPolicy::RoundRobin)
                .with_endurance(4),
        );
        let jobs = Job::alternating(&heavy, &light, &[], 4);
        fleet.run_batch(&jobs, 1).unwrap(); // a0: r0=4, a1: r1=2
        let err = fleet.run_batch(&jobs, 1).unwrap_err();
        assert!(
            matches!(err, FleetError::Endurance { array: 0, .. }),
            "{err:?}"
        );
        assert!(fleet.is_retired(0));
        assert!(!fleet.is_retired(1));
        // The fleet keeps serving on the survivor instead of failing
        // forever on the dead array.
        let probe = burn_at(2, 1); // fresh cell: no wear conflict
        let survivors_serve = Job::alternating(&probe, &probe, &[], 2);
        fleet.run_batch(&survivors_serve, 1).unwrap();
        assert_eq!(fleet.jobs_on(1), 2 + 2 + 2);
    }

    #[test]
    fn stats_and_horizons() {
        let job = burn(2);
        let mut fleet = Fleet::new(
            FleetConfig::new(2)
                .with_policy(DispatchPolicy::LeastWorn)
                .with_write_budget(10),
        );
        fleet.run_batch(&[Job::new(&job, &[]); 3], 1).unwrap();
        let stats = fleet.stats();
        assert_eq!(stats.jobs, 3);
        assert_eq!(stats.retired, 0);
        assert_eq!(stats.wear.arrays, 2);
        assert_eq!(stats.wear.array_totals.max, 4);
        assert_eq!(stats.wear.array_totals.min, 2);
        // Remaining capacity: (10-4)/2 + (10-2)/2 = 3 + 4 = 7 jobs.
        assert_eq!(fleet.remaining_jobs(2), Some(7));
        assert_eq!(fleet.first_retirement_horizon(2), Some(3));
        // Unbudgeted fleets have unbounded horizons.
        let free = Fleet::new(FleetConfig::new(2));
        assert_eq!(free.remaining_jobs(2), None);
        assert_eq!(free.first_retirement_horizon(2), None);
    }

    /// A one-instruction program storing `value` into cell r0.
    fn set_prog(value: bool) -> Program {
        Program {
            instructions: vec![Instruction {
                p: Operand::Const(value),
                q: Operand::Const(!value),
                z: CellId::new(0),
            }],
            num_cells: 1,
            input_cells: vec![],
            output_cells: vec![CellId::new(0)],
        }
    }

    #[test]
    fn simd_batch_matches_scalar_batch() {
        let a = burn(2);
        let b = burn(5);
        let jobs: Vec<Job<'_>> = (0..70)
            .map(|i| Job::new(if i % 3 == 0 { &b } else { &a }, &[]))
            .collect();
        let mut scalar = Fleet::new(FleetConfig::new(3));
        let out_scalar = scalar.run_batch(&jobs, 1).unwrap();
        let mut simd = Fleet::new(FleetConfig::new(3));
        let out_simd = simd.run_batch_simd(&jobs, 1).unwrap();
        let mut simd_par = Fleet::new(FleetConfig::new(3));
        let out_par = simd_par.run_batch_simd(&jobs, 0).unwrap();
        assert_eq!(out_scalar, out_simd);
        assert_eq!(out_simd, out_par);
        for i in 0..3 {
            assert_eq!(
                scalar.array(i).write_counts(),
                simd.array(i).write_counts(),
                "array {i} wear must not depend on batching"
            );
            assert_eq!(
                simd.array(i).write_counts(),
                simd_par.array(i).write_counts(),
                "array {i} serial vs parallel"
            );
            assert_eq!(scalar.jobs_on(i), simd.jobs_on(i), "array {i} dispatch");
        }
    }

    #[test]
    fn simd_groups_cap_at_64_lanes() {
        let job = burn(1);
        let mut fleet = Fleet::new(FleetConfig::new(1));
        let jobs = vec![Job::new(&job, &[]); 130];
        let out = fleet.run_batch_simd(&jobs, 1).unwrap();
        assert_eq!(out.len(), 130);
        // 130 jobs = 64 + 64 + 2 lane groups, all wear on cell r0.
        assert_eq!(fleet.total_writes(0), 130);
        assert_eq!(fleet.array(0).write_counts()[0], 130);
    }

    #[test]
    fn simd_commit_preserves_serial_last_writer() {
        let ones = set_prog(true);
        let zeros = set_prog(false);
        // Jobs [1, 0, 1] group as ones{0, 2} and zeros{1}; ordering groups
        // by last member commits ones last, matching the serial final
        // value. A scalar fleet run agrees.
        for jobs in [
            vec![Job::new(&ones, &[]), Job::new(&zeros, &[])],
            vec![
                Job::new(&ones, &[]),
                Job::new(&zeros, &[]),
                Job::new(&ones, &[]),
            ],
        ] {
            let mut simd = Fleet::new(FleetConfig::new(1));
            simd.run_batch_simd(&jobs, 1).unwrap();
            let mut scalar = Fleet::new(FleetConfig::new(1));
            scalar.run_batch(&jobs, 1).unwrap();
            assert_eq!(
                simd.array(0).values(),
                scalar.array(0).values(),
                "{} jobs",
                jobs.len()
            );
        }
    }

    #[test]
    fn simd_endurance_failure_is_atomic_per_group() {
        let job = burn(1);
        let mut fleet = Fleet::new(FleetConfig::new(1).with_endurance(2));
        // A 3-lane group needs 3 writes on r0; 3 > 2 fails the whole word
        // write before any lane executes (conservative: never more wear
        // than the serial run), reported for the group's first job.
        let err = fleet
            .run_batch_simd(&[Job::new(&job, &[]); 3], 1)
            .unwrap_err();
        match err {
            FleetError::Endurance { job, array, error } => {
                assert_eq!(job, 0);
                assert_eq!(array, 0);
                assert_eq!(error.limit, 2);
            }
            other => panic!("expected endurance failure, got {other:?}"),
        }
        assert!(fleet.is_retired(0));
        assert_eq!(fleet.total_writes(0), 0, "no lane executed");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut fleet = Fleet::new(FleetConfig::new(2));
        assert_eq!(fleet.run_batch(&[], 0).unwrap(), Vec::<Vec<bool>>::new());
        assert_eq!(fleet.jobs_run(), 0);
    }

    #[test]
    fn policy_parsing_and_labels() {
        assert_eq!(
            "round-robin".parse::<DispatchPolicy>().unwrap(),
            DispatchPolicy::RoundRobin
        );
        assert_eq!(
            "lw".parse::<DispatchPolicy>().unwrap(),
            DispatchPolicy::LeastWorn
        );
        assert!("fifo".parse::<DispatchPolicy>().is_err());
        assert_eq!(DispatchPolicy::LeastWorn.label(), "least-worn");
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn zero_array_fleet_rejected() {
        let _ = FleetConfig::new(0);
    }
}
