//! Textual PLiM assembly: a stable, human-editable serialisation of
//! [`Program`] with a full parse/print round trip.
//!
//! ```text
//! ; anything after a semicolon is a comment
//! .cells 6
//! .inputs r0 r1 r2
//! .outputs r4 r5
//! RM3 r0 1 r4        ; Z ← ⟨P, Q̄, Z⟩ — operands are cells (rN) or 0/1
//! RM3 0 r1 r5
//! ```
//!
//! The format exists so compiled programs can be stored, diffed and fed
//! back to the [`Machine`](crate::Machine) without the compiler — the
//! artefact a real PLiM toolchain would hand to its loader.

use std::fmt::Write as _;
use std::str::FromStr;

use rlim_rram::CellId;

use crate::isa::{Instruction, Operand, Program};

/// Serialises a program to PLiM assembly text.
///
/// # Examples
///
/// ```
/// use rlim_plim::{asm, Instruction, Operand, Program};
/// use rlim_rram::CellId;
///
/// let program = Program {
///     instructions: vec![Instruction {
///         p: Operand::Cell(CellId::new(0)),
///         q: Operand::Const(false),
///         z: CellId::new(1),
///     }],
///     num_cells: 2,
///     input_cells: vec![CellId::new(0)],
///     output_cells: vec![CellId::new(1)],
/// };
/// let text = asm::to_text(&program);
/// let parsed = asm::parse_text(&text)?;
/// assert_eq!(parsed, program);
/// # Ok::<(), asm::ParseAsmError>(())
/// ```
pub fn to_text(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".cells {}", program.num_cells);
    let _ = write!(out, ".inputs");
    for c in &program.input_cells {
        let _ = write!(out, " r{}", c.index());
    }
    out.push('\n');
    let _ = write!(out, ".outputs");
    for c in &program.output_cells {
        let _ = write!(out, " r{}", c.index());
    }
    out.push('\n');
    for inst in &program.instructions {
        let _ = writeln!(
            out,
            "RM3 {} {} r{}",
            operand_text(inst.p),
            operand_text(inst.q),
            inst.z.index()
        );
    }
    out
}

fn operand_text(op: Operand) -> String {
    match op {
        Operand::Const(false) => "0".into(),
        Operand::Const(true) => "1".into(),
        Operand::Cell(c) => format!("r{}", c.index()),
    }
}

/// Error from [`parse_text`], with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number of the offending text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

/// Parses PLiM assembly text back into a [`Program`].
///
/// Accepts blank lines and `;` comments. Directives may appear in any
/// order but at most once; instructions keep their textual order.
///
/// # Errors
///
/// Returns a [`ParseAsmError`] pointing at the first malformed line,
/// duplicate directive, or missing `.cells` header. Cell ranges are *not*
/// checked here — use [`Program::validate`] on the result.
pub fn parse_text(text: &str) -> Result<Program, ParseAsmError> {
    let mut num_cells: Option<usize> = None;
    let mut input_cells: Option<Vec<CellId>> = None;
    let mut output_cells: Option<Vec<CellId>> = None;
    let mut instructions = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let err = |message: String| ParseAsmError {
            line: line_no,
            message,
        };
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("non-empty line has a token");
        match head {
            ".cells" => {
                if num_cells.is_some() {
                    return Err(err("duplicate .cells directive".into()));
                }
                let value = tokens
                    .next()
                    .ok_or_else(|| err(".cells needs a count".into()))?;
                let count =
                    usize::from_str(value).map_err(|_| err(format!("bad cell count `{value}`")))?;
                if tokens.next().is_some() {
                    return Err(err("trailing tokens after .cells".into()));
                }
                num_cells = Some(count);
            }
            ".inputs" | ".outputs" => {
                let slot = if head == ".inputs" {
                    &mut input_cells
                } else {
                    &mut output_cells
                };
                if slot.is_some() {
                    return Err(err(format!("duplicate {head} directive")));
                }
                let cells = tokens
                    .map(|t| parse_cell(t).map_err(&err))
                    .collect::<Result<Vec<CellId>, _>>()?;
                *slot = Some(cells);
            }
            "RM3" => {
                let mut operand = |role: &str| {
                    tokens
                        .next()
                        .ok_or_else(|| err(format!("RM3 missing {role} operand")))
                };
                let p = parse_operand(operand("P")?).map_err(&err)?;
                let q = parse_operand(operand("Q")?).map_err(&err)?;
                let z = parse_cell(operand("Z")?).map_err(&err)?;
                if tokens.next().is_some() {
                    return Err(err("trailing tokens after RM3".into()));
                }
                instructions.push(Instruction { p, q, z });
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }

    Ok(Program {
        instructions,
        num_cells: num_cells.ok_or(ParseAsmError {
            line: text.lines().count().max(1),
            message: "missing .cells directive".into(),
        })?,
        input_cells: input_cells.unwrap_or_default(),
        output_cells: output_cells.unwrap_or_default(),
    })
}

fn parse_cell(token: &str) -> Result<CellId, String> {
    let digits = token
        .strip_prefix('r')
        .ok_or_else(|| format!("expected cell `rN`, got `{token}`"))?;
    let index = u32::from_str(digits).map_err(|_| format!("bad cell index `{token}`"))?;
    Ok(CellId::new(index))
}

fn parse_operand(token: &str) -> Result<Operand, String> {
    match token {
        "0" => Ok(Operand::Const(false)),
        "1" => Ok(Operand::Const(true)),
        _ => parse_cell(token).map(Operand::Cell),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program {
            instructions: vec![
                Instruction {
                    p: Operand::Const(true),
                    q: Operand::Const(false),
                    z: CellId::new(3),
                },
                Instruction {
                    p: Operand::Cell(CellId::new(0)),
                    q: Operand::Cell(CellId::new(1)),
                    z: CellId::new(3),
                },
            ],
            num_cells: 4,
            input_cells: vec![CellId::new(0), CellId::new(1), CellId::new(2)],
            output_cells: vec![CellId::new(3)],
        }
    }

    #[test]
    fn round_trip() {
        let program = sample();
        let text = to_text(&program);
        let parsed = parse_text(&text).expect("parses");
        assert_eq!(parsed, program);
        assert_eq!(parsed.validate(), Ok(()));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n; header comment\n.cells 2\n.inputs r0\n.outputs r1\n\nRM3 r0 0 r1 ; trailing comment\n";
        let program = parse_text(text).expect("parses");
        assert_eq!(program.num_cells, 2);
        assert_eq!(program.instructions.len(), 1);
    }

    #[test]
    fn directives_in_any_order() {
        let text = ".outputs r1\nRM3 r0 0 r1\n.inputs r0\n.cells 2\n";
        let program = parse_text(text).expect("parses");
        assert_eq!(program.input_cells, vec![CellId::new(0)]);
        // Instruction order is preserved regardless of directive placement.
        assert_eq!(program.instructions.len(), 1);
    }

    #[test]
    fn missing_cells_directive_is_an_error() {
        let e = parse_text(".inputs r0\n").expect_err("no .cells");
        assert!(e.message.contains(".cells"), "{e}");
    }

    #[test]
    fn duplicate_directive_is_an_error() {
        let e = parse_text(".cells 1\n.cells 2\n").expect_err("duplicate");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn malformed_operand_reports_line() {
        let e = parse_text(".cells 2\nRM3 x0 0 r1\n").expect_err("bad operand");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("x0"), "{e}");
    }

    #[test]
    fn missing_operand_reports_role() {
        let e = parse_text(".cells 2\nRM3 r0 0\n").expect_err("missing Z");
        assert!(e.message.contains('Z'), "{e}");
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = parse_text(".cells 1\nNOP\n").expect_err("unknown");
        assert!(e.message.contains("NOP"), "{e}");
    }

    #[test]
    fn parsed_program_executes() {
        use crate::machine::Machine;
        // out ← ⟨a, b̄, 0-initialised cell⟩ with a=1, b=0 → ⟨1,1,0⟩ = 1.
        let text = ".cells 3\n.inputs r0 r1\n.outputs r2\nRM3 0 1 r2\nRM3 r0 r1 r2\n";
        let program = parse_text(text).expect("parses");
        let mut machine = Machine::for_program(&program);
        let out = machine.run(&program, &[true, false]).expect("runs");
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn error_display_includes_line() {
        let e = ParseAsmError {
            line: 7,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "line 7: boom");
    }
}
