//! The PLiM machine: a controller FSM executing RM3 programs on a crossbar.
//!
//! The real PLiM controller is a wrapper around the RRAM array's read/write
//! peripheral circuitry: it fetches an instruction, reads operands `P` and
//! `Q` (memory or constants), and performs the majority write on `Z` in the
//! same array. This model reproduces that behaviour cycle by cycle —
//! every instruction is exactly one destination write, performed as a
//! write-verify cycle — and surfaces endurance exhaustion and stuck-at
//! faults as [`WriteFault`] errors, enabling lifetime and chaos
//! experiments.

use rlim_rram::{Crossbar, FaultModel, WriteFault};

use crate::isa::{Instruction, Operand, Program};

/// Bitwise majority of three booleans.
#[inline]
fn maj(a: bool, b: bool, c: bool) -> bool {
    (a && b) || (c && (a || b))
}

/// A PLiM machine owning a crossbar array.
///
/// The array persists across runs so wear accumulates, which is what the
/// lifetime experiments need; use [`Machine::for_program`] to start fresh.
///
/// # Examples
///
/// ```
/// use rlim_plim::{Instruction, Machine, Operand, Program};
/// use rlim_rram::CellId;
///
/// // One instruction: set1 on cell r0 (RM3(1, 0, z) = ⟨1, 1, z⟩ = 1).
/// let program = Program {
///     instructions: vec![Instruction {
///         p: Operand::Const(true),
///         q: Operand::Const(false),
///         z: CellId::new(0),
///     }],
///     num_cells: 1,
///     input_cells: vec![],
///     output_cells: vec![CellId::new(0)],
/// };
/// let mut machine = Machine::for_program(&program);
/// assert_eq!(machine.run(&program, &[]).unwrap(), vec![true]);
/// machine.run(&program, &[]).unwrap(); // wear accumulates across runs
/// assert_eq!(machine.array().writes(CellId::new(0)), 2);
/// assert_eq!(machine.cycles(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    array: Crossbar,
    cycles: u64,
}

impl Machine {
    /// A machine whose array is sized for `program`, without an endurance
    /// limit. All cells start at logic 0 with zero wear.
    pub fn for_program(program: &Program) -> Self {
        let mut array = Crossbar::new();
        array.grow_to(program.num_cells);
        Machine { array, cycles: 0 }
    }

    /// Like [`Machine::for_program`] but cells fail after `limit` writes.
    pub fn with_endurance(program: &Program, limit: u64) -> Self {
        let mut array = Crossbar::with_endurance(limit);
        array.grow_to(program.num_cells);
        Machine { array, cycles: 0 }
    }

    /// Like [`Machine::for_program`] but under fault injection: per-cell
    /// endurance limits and latent stuck-at faults sampled from `model`.
    pub fn with_faults(program: &Program, model: FaultModel) -> Self {
        let mut array = Crossbar::with_faults(model);
        array.grow_to(program.num_cells);
        Machine { array, cycles: 0 }
    }

    /// A machine executing on a caller-provided array — the entry point for
    /// long-lived arrays whose wear spans many programs (see
    /// [`Fleet`](crate::Fleet)). The array is grown on demand by
    /// [`Machine::ensure_cells`]; existing wear and values are preserved.
    pub fn with_array(array: Crossbar) -> Self {
        Machine { array, cycles: 0 }
    }

    /// Grows the array to at least `num_cells` cells (new cells preloaded
    /// with logic 0, zero wear). Never shrinks.
    pub fn ensure_cells(&mut self, num_cells: usize) {
        self.array.grow_to(num_cells);
    }

    /// The underlying crossbar (wear counters, stored values).
    pub fn array(&self) -> &Crossbar {
        &self.array
    }

    /// Mutable access for the fleet's SIMD path, which commits word-level
    /// overlays back into the machine's array. Not public: all other wear
    /// mutation flows through [`Machine::step`].
    pub(crate) fn array_mut(&mut self) -> &mut Crossbar {
        &mut self.array
    }

    /// Total RM3 instructions executed since construction.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Preloads the primary inputs (wear-free, models the RAM load phase),
    /// verifying each cell by readback so stuck input cells surface
    /// instead of silently corrupting the computation.
    ///
    /// # Errors
    ///
    /// Returns [`WriteFault::Stuck`] for the first input cell whose
    /// readback disagrees with the loaded value.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != program.input_cells.len()`.
    pub fn load_inputs(&mut self, program: &Program, inputs: &[bool]) -> Result<(), WriteFault> {
        assert_eq!(
            inputs.len(),
            program.input_cells.len(),
            "input value count must match the program's input cells"
        );
        for (&cell, &value) in program.input_cells.iter().zip(inputs) {
            self.array.preload_verified(cell, value)?;
        }
        Ok(())
    }

    /// Executes a single RM3 instruction as a write-verify cycle.
    ///
    /// # Errors
    ///
    /// Returns [`WriteFault::Worn`] if the destination cell is worn out
    /// (machine state unchanged), or [`WriteFault::Stuck`] when the
    /// readback disagrees with the majority result (the pulse was
    /// absorbed, so wear advanced).
    pub fn step(&mut self, inst: &Instruction) -> Result<(), WriteFault> {
        let p = self.operand_value(inst.p);
        let q = self.operand_value(inst.q);
        let z = self.array.read(inst.z);
        let result = maj(p, !q, z);
        self.array.write_verified(inst.z, result)?;
        self.cycles += 1;
        Ok(())
    }

    /// Executes all instructions of `program` in order.
    ///
    /// # Errors
    ///
    /// Stops at the first write fault and returns it.
    pub fn execute(&mut self, program: &Program) -> Result<(), WriteFault> {
        for inst in &program.instructions {
            self.step(inst)?;
        }
        Ok(())
    }

    /// Reads the primary outputs.
    pub fn outputs(&self, program: &Program) -> Vec<bool> {
        program
            .output_cells
            .iter()
            .map(|&c| self.array.read(c))
            .collect()
    }

    /// Convenience: load inputs, execute, read outputs.
    ///
    /// # Errors
    ///
    /// Propagates the first write fault.
    pub fn run(&mut self, program: &Program, inputs: &[bool]) -> Result<Vec<bool>, WriteFault> {
        self.load_inputs(program, inputs)?;
        self.execute(program)?;
        Ok(self.outputs(program))
    }

    fn operand_value(&self, op: Operand) -> bool {
        match op {
            Operand::Const(b) => b,
            Operand::Cell(c) => self.array.read(c),
        }
    }
}

/// Executes `program` once on a fresh array and returns `(outputs, per-cell
/// write counts)`. The standard entry point for one-shot evaluation.
pub fn run_once(program: &Program, inputs: &[bool]) -> (Vec<bool>, Vec<u64>) {
    let mut machine = Machine::for_program(program);
    let outputs = machine
        .run(program, inputs)
        .expect("no endurance limit configured");
    (outputs, machine.array().write_counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlim_rram::CellId;

    fn cell(i: u32) -> CellId {
        CellId::new(i)
    }

    /// z starts 0; RM3(p=a, q=1, z) computes ⟨a, 0, z⟩ = a ∧ z; with z
    /// preloaded by a previous set we can build AND/OR; here we check the
    /// primitive recipes used by the compiler.
    #[test]
    fn rm3_primitive_semantics() {
        let program = Program {
            instructions: vec![],
            num_cells: 2,
            input_cells: vec![cell(0)],
            output_cells: vec![cell(1)],
        };
        let mut m = Machine::for_program(&program);
        // set1: RM3(1, 0, z) = ⟨1, 1, z⟩ = 1
        m.step(&Instruction {
            p: Operand::Const(true),
            q: Operand::Const(false),
            z: cell(1),
        })
        .unwrap();
        assert!(m.array().read(cell(1)));
        // set0: RM3(0, 1, z) = ⟨0, 0, z⟩ = 0
        m.step(&Instruction {
            p: Operand::Const(false),
            q: Operand::Const(true),
            z: cell(1),
        })
        .unwrap();
        assert!(!m.array().read(cell(1)));
        // load: with z = 0, RM3(v, 0, z) = ⟨v, 1, 0⟩ = v
        m.load_inputs(&program, &[true]).unwrap();
        m.step(&Instruction {
            p: Operand::Cell(cell(0)),
            q: Operand::Const(false),
            z: cell(1),
        })
        .unwrap();
        assert!(m.array().read(cell(1)));
        assert_eq!(m.cycles(), 3);
    }

    #[test]
    fn load_complement_recipe() {
        // set1 z; RM3(0, src, z) = ⟨0, !src, 1⟩ = !src
        let program = Program {
            instructions: vec![
                Instruction {
                    p: Operand::Const(true),
                    q: Operand::Const(false),
                    z: cell(1),
                },
                Instruction {
                    p: Operand::Const(false),
                    q: Operand::Cell(cell(0)),
                    z: cell(1),
                },
            ],
            num_cells: 2,
            input_cells: vec![cell(0)],
            output_cells: vec![cell(1)],
        };
        for v in [false, true] {
            let mut m = Machine::for_program(&program);
            let out = m.run(&program, &[v]).unwrap();
            assert_eq!(out, vec![!v]);
        }
    }

    #[test]
    fn rm3_truth_table() {
        // Exhaustive over p, q, z: result = maj(p, !q, z).
        for bits in 0..8u32 {
            let (p, q, z0) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            let program = Program {
                instructions: vec![Instruction {
                    p: Operand::Const(p),
                    q: Operand::Const(q),
                    z: cell(0),
                }],
                num_cells: 1,
                input_cells: vec![],
                output_cells: vec![cell(0)],
            };
            let mut m = Machine::for_program(&program);
            m.array.preload(cell(0), z0);
            m.execute(&program).unwrap();
            let expect = maj(p, !q, z0);
            assert_eq!(m.outputs(&program), vec![expect], "p={p} q={q} z={z0}");
        }
    }

    #[test]
    fn wear_accumulates_across_runs() {
        let program = Program {
            instructions: vec![Instruction {
                p: Operand::Const(true),
                q: Operand::Const(false),
                z: cell(0),
            }],
            num_cells: 1,
            input_cells: vec![],
            output_cells: vec![cell(0)],
        };
        let mut m = Machine::for_program(&program);
        for _ in 0..5 {
            m.run(&program, &[]).unwrap();
        }
        assert_eq!(m.array().writes(cell(0)), 5);
        assert_eq!(m.cycles(), 5);
    }

    #[test]
    fn endurance_failure_surfaces() {
        let program = Program {
            instructions: vec![Instruction {
                p: Operand::Const(true),
                q: Operand::Const(false),
                z: cell(0),
            }],
            num_cells: 1,
            input_cells: vec![],
            output_cells: vec![cell(0)],
        };
        let mut m = Machine::with_endurance(&program, 3);
        for _ in 0..3 {
            m.run(&program, &[]).unwrap();
        }
        let err = m.run(&program, &[]).unwrap_err();
        assert_eq!(err.cell(), cell(0));
        match err {
            WriteFault::Worn(e) => assert_eq!(e.limit, 3),
            WriteFault::Stuck(_) => panic!("a uniform limit cannot stick"),
        }
    }

    /// Under a fault model, the machine's write-verify cycle surfaces a
    /// stuck destination as `WriteFault::Stuck`, and a stuck *input* cell
    /// surfaces at load time.
    #[test]
    fn stuck_fault_surfaces_with_faulty_cells() {
        use rlim_rram::variability::EnduranceModel;
        let program = Program {
            instructions: vec![
                Instruction {
                    p: Operand::Const(true),
                    q: Operand::Const(false),
                    z: cell(1),
                },
                Instruction {
                    p: Operand::Const(false),
                    q: Operand::Const(true),
                    z: cell(1),
                },
            ],
            num_cells: 2,
            input_cells: vec![cell(0)],
            output_cells: vec![cell(1)],
        };
        // Every cell stuck, generous endurance: the set1/set0 alternation
        // must eventually disagree with the frozen value.
        let model = FaultModel::new(EnduranceModel::new(1e6, 0.0), 1.0, 3);
        let mut m = Machine::with_faults(&program, model);
        let fault = loop {
            match m.run(&program, &[false]) {
                Ok(_) => continue,
                Err(f) => break f,
            }
        };
        assert!(matches!(fault, WriteFault::Stuck(_)), "{fault:?}");
        // An input cell frozen at 1 rejects a load of 0.
        let stuck_inputs = {
            let mut probe = Machine::with_faults(&program, model);
            // Wear the input cell past its onset via direct writes.
            let onset = model.profile(0).stuck.unwrap().onset;
            for _ in 0..onset {
                probe
                    .array_mut()
                    .write(cell(0), model.profile(0).stuck.unwrap().value)
                    .unwrap();
            }
            probe.load_inputs(&program, &[!model.profile(0).stuck.unwrap().value])
        };
        assert!(matches!(stuck_inputs, Err(WriteFault::Stuck(_))));
    }

    #[test]
    fn run_once_reports_write_counts() {
        let program = Program {
            instructions: vec![
                Instruction {
                    p: Operand::Const(true),
                    q: Operand::Const(false),
                    z: cell(1),
                },
                Instruction {
                    p: Operand::Const(true),
                    q: Operand::Const(false),
                    z: cell(1),
                },
            ],
            num_cells: 2,
            input_cells: vec![cell(0)],
            output_cells: vec![cell(1)],
        };
        let (out, counts) = run_once(&program, &[false]);
        assert_eq!(out, vec![true]);
        assert_eq!(counts, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "input value count")]
    fn load_inputs_checks_arity() {
        let program = Program {
            instructions: vec![],
            num_cells: 1,
            input_cells: vec![cell(0)],
            output_cells: vec![],
        };
        let mut m = Machine::for_program(&program);
        let _ = m.load_inputs(&program, &[]);
    }
}
