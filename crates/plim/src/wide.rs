//! The word-level PLiM machine: RM3 programs over 64 lanes at once.
//!
//! One scalar RM3 step computes `Z ← maj(P, Q̄, Z)` for a single input
//! vector; a [`WideMachine`] step computes the same majority **bitwise on
//! `u64` words**, so each instruction advances up to 64 independent
//! executions (lanes) of the program. Lane `k` of every cell word belongs
//! to input vector `k`; lanes never interact, because the bitwise majority
//!
//! ```text
//! maj(p, !q, z) = (p & !q) | (z & (p | !q))
//! ```
//!
//! is computed lane-wise, and constants broadcast to all lanes.
//!
//! ## Wear accounting invariant
//!
//! Every word write is charged one *logical* write per active lane (see
//! [`WideCrossbar::write_word`]), so after running `L` lanes the per-cell
//! write counts equal `L ×` the scalar per-run counts — exactly what `L`
//! sequential [`Machine`](crate::Machine) runs would accumulate. The
//! endurance numbers of the DATE 2017 evaluation are therefore identical
//! under scalar and word-level execution; the differential suite in
//! `rlim-testkit` asserts this per cell on every benchmark.
//!
//! ## When the scalar machine is still authoritative
//!
//! The scalar [`Machine`](crate::Machine) remains the reference model for
//! per-cell *switch* counts (value flips are per-lane effects a word store
//! cannot observe), for cycle-accurate endurance failure points (a word
//! write fails atomically before any lane executes, where the lane-serial
//! run would perform the below-limit lanes first), and for the hosted
//! [`Controller`](crate::Controller) FSM. Everything measured by the
//! paper's tables — values, per-cell write counts, lifetime projections —
//! is lane-exact here.

use rlim_rram::{EnduranceError, WideCrossbar};

use crate::isa::{Instruction, Operand, Program};

/// A PLiM machine executing RM3 programs bit-parallel over `1..=64` lanes.
///
/// # Examples
///
/// ```
/// use rlim_plim::{Instruction, Operand, Program, WideMachine};
/// use rlim_rram::CellId;
///
/// // set1 r0: every lane computes constant true.
/// let program = Program {
///     instructions: vec![Instruction {
///         p: Operand::Const(true),
///         q: Operand::Const(false),
///         z: CellId::new(0),
///     }],
///     num_cells: 1,
///     input_cells: vec![],
///     output_cells: vec![CellId::new(0)],
/// };
/// let mut machine = WideMachine::for_program(&program, 3);
/// let outputs = machine.run(&program, &[&[], &[], &[]]).unwrap();
/// assert_eq!(outputs, vec![vec![true]; 3]);
/// // One instruction × 3 active lanes = 3 logical writes on r0.
/// assert_eq!(machine.array().writes(CellId::new(0)), 3);
/// ```
#[derive(Debug, Clone)]
pub struct WideMachine {
    array: WideCrossbar,
    lanes: usize,
    cycles: u64,
}

impl WideMachine {
    /// A machine sized for `program`, running `lanes` active lanes, with
    /// no endurance limit. All cells start at logic 0 with zero wear.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not in `1..=64`.
    pub fn for_program(program: &Program, lanes: usize) -> Self {
        let mut array = WideCrossbar::new();
        array.grow_to(program.num_cells);
        WideMachine::with_array(array, lanes)
    }

    /// A machine executing `lanes` active lanes on a caller-provided
    /// word-level array — the entry point for overlays snapshotted from a
    /// long-lived scalar array ([`WideCrossbar::from_scalar`]).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not in `1..=64`.
    pub fn with_array(array: WideCrossbar, lanes: usize) -> Self {
        assert!(
            (1..=WideCrossbar::LANES).contains(&lanes),
            "active lane count must be in 1..=64"
        );
        WideMachine {
            array,
            lanes,
            cycles: 0,
        }
    }

    /// Number of active lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The underlying word-level array (logical wear, stored words).
    pub fn array(&self) -> &WideCrossbar {
        &self.array
    }

    /// Grows the array to at least `num_cells` cells. Never shrinks.
    pub fn ensure_cells(&mut self, num_cells: usize) {
        self.array.grow_to(num_cells);
    }

    /// Total RM3 instructions executed since construction (each advances
    /// all active lanes at once).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Preloads the primary inputs of every lane (wear-free): lane `k`
    /// receives `lane_inputs[k]`, in the program's PI order. Inactive high
    /// lanes are preloaded with 0.
    ///
    /// # Panics
    ///
    /// Panics if `lane_inputs.len()` differs from the active lane count,
    /// or any lane's vector does not match the program's input arity.
    pub fn load_inputs(&mut self, program: &Program, lane_inputs: &[&[bool]]) {
        assert_eq!(
            lane_inputs.len(),
            self.lanes,
            "one input vector per active lane"
        );
        for (i, &cell) in program.input_cells.iter().enumerate() {
            let mut word = 0u64;
            for (k, inputs) in lane_inputs.iter().enumerate() {
                assert_eq!(
                    inputs.len(),
                    program.input_cells.len(),
                    "input value count must match the program's input cells"
                );
                word |= u64::from(inputs[i]) << k;
            }
            self.array.preload_word(cell, word);
        }
    }

    /// Executes a single RM3 instruction on all active lanes.
    ///
    /// # Errors
    ///
    /// Returns [`EnduranceError`] if the destination cell cannot absorb
    /// one logical write per active lane; the machine state is unchanged
    /// in that case.
    pub fn step(&mut self, inst: &Instruction) -> Result<(), EnduranceError> {
        let p = self.operand_word(inst.p);
        let q = self.operand_word(inst.q);
        let z = self.array.read_word(inst.z);
        // maj(p, !q, z), bitwise over the lanes.
        let result = (p & !q) | (z & (p | !q));
        self.array.write_word(inst.z, result, self.lanes)?;
        self.cycles += 1;
        Ok(())
    }

    /// Executes all instructions of `program` in order.
    ///
    /// # Errors
    ///
    /// Stops at the first endurance failure and returns it.
    pub fn execute(&mut self, program: &Program) -> Result<(), EnduranceError> {
        for inst in &program.instructions {
            self.step(inst)?;
        }
        Ok(())
    }

    /// Reads the primary outputs of every active lane, in lane order.
    pub fn outputs(&self, program: &Program) -> Vec<Vec<bool>> {
        (0..self.lanes)
            .map(|k| {
                program
                    .output_cells
                    .iter()
                    .map(|&c| (self.array.read_word(c) >> k) & 1 == 1)
                    .collect()
            })
            .collect()
    }

    /// Convenience: load every lane's inputs, execute, read every lane's
    /// outputs.
    ///
    /// # Errors
    ///
    /// Propagates the first endurance failure.
    pub fn run(
        &mut self,
        program: &Program,
        lane_inputs: &[&[bool]],
    ) -> Result<Vec<Vec<bool>>, EnduranceError> {
        self.load_inputs(program, lane_inputs);
        self.execute(program)?;
        Ok(self.outputs(program))
    }

    fn operand_word(&self, op: Operand) -> u64 {
        match op {
            Operand::Const(true) => u64::MAX,
            Operand::Const(false) => 0,
            Operand::Cell(c) => self.array.read_word(c),
        }
    }
}

/// Executes `program` once per lane on a fresh word-level array and
/// returns `(per-lane outputs, per-cell logical write counts)` — the
/// bit-parallel analogue of [`run_once`](crate::run_once), which it must
/// agree with lane by lane (the testkit's differential harness proves
/// both the outputs and the write counts).
///
/// # Panics
///
/// Panics if `lane_inputs` is empty or longer than 64 lanes.
pub fn run_once_wide(program: &Program, lane_inputs: &[&[bool]]) -> (Vec<Vec<bool>>, Vec<u64>) {
    let mut machine = WideMachine::for_program(program, lane_inputs.len());
    let outputs = machine
        .run(program, lane_inputs)
        .expect("no endurance limit configured");
    (outputs, machine.array().write_counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_once;
    use rlim_rram::CellId;

    fn cell(i: u32) -> CellId {
        CellId::new(i)
    }

    /// A complement gate: set1 z; z ← ⟨0, src, z⟩ = !src.
    fn not_gate() -> Program {
        Program {
            instructions: vec![
                Instruction {
                    p: Operand::Const(true),
                    q: Operand::Const(false),
                    z: cell(1),
                },
                Instruction {
                    p: Operand::Const(false),
                    q: Operand::Cell(cell(0)),
                    z: cell(1),
                },
            ],
            num_cells: 2,
            input_cells: vec![cell(0)],
            output_cells: vec![cell(1)],
        }
    }

    #[test]
    fn lanes_are_independent_copies_of_the_scalar_run() {
        let program = not_gate();
        let lane_inputs: Vec<Vec<bool>> = vec![vec![false], vec![true], vec![false], vec![true]];
        let lanes: Vec<&[bool]> = lane_inputs.iter().map(Vec::as_slice).collect();
        let (outputs, counts) = run_once_wide(&program, &lanes);
        for (k, inputs) in lanes.iter().enumerate() {
            let (scalar_out, scalar_counts) = run_once(&program, inputs);
            assert_eq!(outputs[k], scalar_out, "lane {k}");
            // Wear invariant: wide counts are the lane count times the
            // per-run scalar counts.
            let scaled: Vec<u64> = scalar_counts.iter().map(|&c| c * 4).collect();
            assert_eq!(counts, scaled, "lane {k}");
        }
    }

    #[test]
    fn word_majority_matches_scalar_truth_table() {
        // One instruction z ← ⟨p, q̄, z⟩ per (p, q) constant pair, with z
        // preloaded per lane: lanes 0..8 enumerate the z bit alongside the
        // constants, covering the full RM3 truth table word-wise.
        for bits in 0..4u32 {
            let (p, q) = (bits & 1 == 1, bits & 2 == 2);
            let program = Program {
                instructions: vec![Instruction {
                    p: Operand::Const(p),
                    q: Operand::Const(q),
                    z: cell(0),
                }],
                num_cells: 1,
                input_cells: vec![],
                output_cells: vec![cell(0)],
            };
            let mut m = WideMachine::for_program(&program, 2);
            m.array.preload_word(cell(0), 0b10); // lane 0: z=0, lane 1: z=1
            m.execute(&program).unwrap();
            let expect = |z: bool| (p && !q) || (z && (p || !q));
            assert_eq!(
                m.outputs(&program),
                vec![vec![expect(false)], vec![expect(true)]],
                "p={p} q={q}"
            );
        }
    }

    #[test]
    fn cycles_count_instructions_not_lanes() {
        let program = not_gate();
        let mut m = WideMachine::for_program(&program, 64);
        let lanes: Vec<&[bool]> = vec![&[true]; 64];
        m.run(&program, &lanes).unwrap();
        assert_eq!(m.cycles(), 2);
        assert_eq!(m.lanes(), 64);
        // 2 instructions × 64 lanes of logical wear on the work cell.
        assert_eq!(m.array().writes(cell(1)), 128);
    }

    #[test]
    fn endurance_failure_is_atomic_per_word() {
        let program = not_gate(); // two writes on cell r1 per lane
        let mut array = WideCrossbar::with_endurance(5);
        array.grow_to(2);
        let mut m = WideMachine::with_array(array, 4);
        // First instruction: 4 logical writes fit (4 ≤ 5); second: 8 > 5.
        let lanes: Vec<&[bool]> = vec![&[false]; 4];
        let err = m.run(&program, &lanes).unwrap_err();
        assert_eq!(err.cell, cell(1));
        assert_eq!(err.limit, 5);
        assert_eq!(m.array().writes(cell(1)), 4);
        assert_eq!(m.cycles(), 1);
    }

    #[test]
    #[should_panic(expected = "one input vector per active lane")]
    fn lane_count_mismatch_panics() {
        let program = not_gate();
        let mut m = WideMachine::for_program(&program, 2);
        let _ = m.run(&program, &[&[true]]);
    }

    #[test]
    #[should_panic(expected = "active lane count")]
    fn zero_lanes_rejected() {
        let program = not_gate();
        let _ = WideMachine::for_program(&program, 0);
    }
}
