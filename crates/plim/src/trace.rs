//! Execution tracing: per-instruction records of what the machine did to
//! the array — the observability layer a hardware PLiM controller's debug
//! port would provide.
//!
//! A [`Trace`] records, for every executed instruction, the destination
//! cell, the value it held before and after, and whether the write
//! actually switched the device. Traces answer questions the aggregate
//! write counters cannot: *when* did the hot cell take its writes, and
//! which instructions were redundant (non-switching) pulses?

use rlim_rram::{CellId, WriteFault};

use crate::isa::Program;
use crate::machine::Machine;

/// One executed instruction's effect on the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Index of the instruction in the program.
    pub pc: usize,
    /// The destination cell that was written.
    pub destination: CellId,
    /// Value stored before the write.
    pub before: bool,
    /// Value stored after the write.
    pub after: bool,
}

impl TraceRecord {
    /// Whether this write flipped the device state.
    pub fn switched(self) -> bool {
        self.before != self.after
    }
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Records in execution order, one per instruction.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of executed instructions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was executed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of writes that actually switched a device.
    pub fn switching_writes(&self) -> usize {
        self.records.iter().filter(|r| r.switched()).count()
    }

    /// Instruction indices that wrote `cell`, in execution order — the
    /// cell's wear timeline.
    pub fn writes_to(&self, cell: CellId) -> Vec<usize> {
        self.records
            .iter()
            .filter(|r| r.destination == cell)
            .map(|r| r.pc)
            .collect()
    }

    /// The longest run of consecutive instructions writing one cell — the
    /// paper's Fig. 1 pathology (the same destination rewritten
    /// back-to-back) made measurable.
    pub fn longest_same_cell_run(&self) -> usize {
        let mut best = 0usize;
        let mut run = 0usize;
        let mut last: Option<CellId> = None;
        for r in &self.records {
            if Some(r.destination) == last {
                run += 1;
            } else {
                run = 1;
                last = Some(r.destination);
            }
            best = best.max(run);
        }
        best
    }
}

impl Machine {
    /// Like [`Machine::run`], additionally recording a [`Trace`].
    ///
    /// # Errors
    ///
    /// Returns the first [`WriteFault`] hit; the trace up to the
    /// failing instruction is discarded with the error (use
    /// [`Machine::array`] for post-mortem wear state).
    pub fn run_traced(
        &mut self,
        program: &Program,
        inputs: &[bool],
    ) -> Result<(Vec<bool>, Trace), WriteFault> {
        self.load_inputs(program, inputs)?;
        let mut trace = Trace::default();
        for (pc, inst) in program.instructions.iter().enumerate() {
            let before = self.array().read(inst.z);
            self.step(inst)?;
            let after = self.array().read(inst.z);
            trace.records.push(TraceRecord {
                pc,
                destination: inst.z,
                before,
                after,
            });
        }
        Ok((self.outputs(program), trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instruction, Operand};

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    /// Program: r2 ← 0; r2 ← ⟨r0, r̄1, r2⟩ (an AND of r0 and ¬r1… exact
    /// function irrelevant — we care about the trace).
    fn sample() -> Program {
        Program {
            instructions: vec![
                Instruction {
                    p: Operand::Const(false),
                    q: Operand::Const(true),
                    z: c(2),
                },
                Instruction {
                    p: Operand::Cell(c(0)),
                    q: Operand::Cell(c(1)),
                    z: c(2),
                },
            ],
            num_cells: 3,
            input_cells: vec![c(0), c(1)],
            output_cells: vec![c(2)],
        }
    }

    #[test]
    fn trace_records_every_instruction() {
        let program = sample();
        let mut machine = Machine::for_program(&program);
        let (out, trace) = machine.run_traced(&program, &[true, false]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert_eq!(trace.records[0].pc, 0);
        assert_eq!(trace.records[1].destination, c(2));
    }

    #[test]
    fn switching_writes_counted() {
        let program = sample();
        let mut machine = Machine::for_program(&program);
        let (_, trace) = machine.run_traced(&program, &[true, false]).unwrap();
        // First write: cell starts false, set to 0 → no switch. Second:
        // ⟨1, ¬0, 0⟩ = ⟨1,1,0⟩ = 1 → switch.
        assert_eq!(trace.switching_writes(), 1);
        assert!(!trace.records[0].switched());
        assert!(trace.records[1].switched());
    }

    #[test]
    fn wear_timeline_per_cell() {
        let program = sample();
        let mut machine = Machine::for_program(&program);
        let (_, trace) = machine.run_traced(&program, &[false, false]).unwrap();
        assert_eq!(trace.writes_to(c(2)), vec![0, 1]);
        assert_eq!(trace.writes_to(c(0)), Vec::<usize>::new());
    }

    #[test]
    fn same_cell_run_detected() {
        let program = sample();
        let mut machine = Machine::for_program(&program);
        let (_, trace) = machine.run_traced(&program, &[false, true]).unwrap();
        assert_eq!(trace.longest_same_cell_run(), 2);
        let empty = Trace::default();
        assert_eq!(empty.longest_same_cell_run(), 0);
    }

    #[test]
    fn traced_and_untraced_agree() {
        let program = sample();
        for inputs in [[false, false], [false, true], [true, false], [true, true]] {
            let mut m1 = Machine::for_program(&program);
            let mut m2 = Machine::for_program(&program);
            let plain = m1.run(&program, &inputs).unwrap();
            let (traced, _) = m2.run_traced(&program, &inputs).unwrap();
            assert_eq!(plain, traced);
        }
    }
}
