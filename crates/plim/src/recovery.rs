//! Online fault recovery: spare-cell remapping, a fault event log and the
//! watchdog policy that retires arrays which fault too often.
//!
//! The detection primitive lives below this module: a [`Machine`] running
//! with write-verify readback surfaces a [`WriteFault`] naming the exact
//! cell that failed. This module decides what the fleet *does* about it:
//!
//! * [`patch_program`] rebinds a program's cell assignments around a set
//!   of broken physical cells — logical cell `i` moves to the `i`-th
//!   healthy physical cell, so one patched program serves until the next
//!   fault. This is the "remap to a spare row" path; when no spare fits
//!   the [`RecoveryConfig`] budget, the array is retired instead.
//! * [`FaultRecorder`] is a bounded ring-buffer log of [`FaultEvent`]s
//!   plus running counters — the black box a hardware controller would
//!   expose, modelled on PLC runtime fault recorders.
//! * [`RecoveryConfig`] is the watchdog policy: how many spare cells an
//!   array may consume and how many faults it may accumulate before the
//!   fleet stops trusting it.
//!
//! [`Machine`]: crate::machine::Machine

use std::collections::VecDeque;
use std::fmt;

use rlim_rram::{CellId, WriteFault};

use crate::isa::{Instruction, Operand, Program};

/// Watchdog policy for a recovering fleet.
///
/// # Examples
///
/// ```
/// use rlim_plim::RecoveryConfig;
///
/// let recovery = RecoveryConfig::new().with_spares(4).with_max_faults(8);
/// assert_eq!(recovery.spares, 4);
/// assert_eq!(recovery.max_faults, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Broken cells an array may remap before the watchdog retires it.
    /// With `spares == 0` the first detected fault retires the array.
    pub spares: usize,
    /// Detected faults (worn or stuck) an array may accumulate before the
    /// watchdog retires it, regardless of spare capacity — an array that
    /// faults this often is not worth trusting with more work.
    pub max_faults: u64,
    /// Ring-buffer capacity of the fleet's [`FaultRecorder`]. Counters
    /// keep counting after the buffer wraps; only event detail is lost.
    pub log_capacity: usize,
}

impl RecoveryConfig {
    /// The default policy: 8 spares and 16 faults per array, 256 logged
    /// events fleet-wide.
    pub fn new() -> Self {
        RecoveryConfig {
            spares: 8,
            max_faults: 16,
            log_capacity: 256,
        }
    }

    /// Sets the per-array spare-cell budget.
    pub fn with_spares(mut self, spares: usize) -> Self {
        self.spares = spares;
        self
    }

    /// Sets the per-array fault budget.
    pub fn with_max_faults(mut self, max_faults: u64) -> Self {
        self.max_faults = max_faults;
        self
    }

    /// Sets the event-log capacity.
    pub fn with_log_capacity(mut self, capacity: usize) -> Self {
        self.log_capacity = capacity;
        self
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig::new()
    }
}

/// What kind of device fault was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The cell's endurance limit was reached.
    Worn,
    /// Write-verify readback caught a stuck-at cell.
    Stuck,
}

impl FaultKind {
    /// Classifies a detected [`WriteFault`].
    pub fn of(fault: &WriteFault) -> Self {
        match fault {
            WriteFault::Worn(_) => FaultKind::Worn,
            WriteFault::Stuck(_) => FaultKind::Stuck,
        }
    }

    /// Short label used in logs and tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Worn => "worn",
            FaultKind::Stuck => "stuck",
        }
    }
}

/// What the fleet did about a detected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The broken cell's logical role was rebound to a healthy physical
    /// cell and the job retried.
    Remapped {
        /// The physical cell now backing the broken cell's logical role.
        spare: CellId,
    },
    /// The watchdog retired the array (spares or fault budget spent).
    Retired,
}

/// One detected fault and its resolution, as logged by [`FaultRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Batch index of the job that hit the fault.
    pub job: usize,
    /// The array it ran on.
    pub array: usize,
    /// The physical cell that failed.
    pub cell: CellId,
    /// Worn out or stuck.
    pub kind: FaultKind,
    /// Remapped-and-retried, or array retired.
    pub action: RecoveryAction,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {} on array {}: cell {} {}, ",
            self.job,
            self.array,
            self.cell,
            self.kind.label()
        )?;
        match self.action {
            RecoveryAction::Remapped { spare } => write!(f, "remapped to {spare}"),
            RecoveryAction::Retired => write!(f, "array retired"),
        }
    }
}

/// A bounded ring-buffer log of fault events with running counters.
///
/// The counters never saturate with the buffer: once `capacity` events
/// are held, recording a new one drops the oldest (counted in
/// [`FaultRecorder::dropped`]) — the black-box idiom: recent detail,
/// lifetime totals.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecorder {
    capacity: usize,
    events: VecDeque<FaultEvent>,
    worn: u64,
    stuck: u64,
    remaps: u64,
    retirements: u64,
    dropped: u64,
}

impl FaultRecorder {
    /// An empty recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FaultRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            worn: 0,
            stuck: 0,
            remaps: 0,
            retirements: 0,
            dropped: 0,
        }
    }

    /// Logs an event, evicting the oldest if the buffer is full.
    pub fn record(&mut self, event: FaultEvent) {
        match event.kind {
            FaultKind::Worn => self.worn += 1,
            FaultKind::Stuck => self.stuck += 1,
        }
        match event.action {
            RecoveryAction::Remapped { .. } => self.remaps += 1,
            RecoveryAction::Retired => self.retirements += 1,
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring-buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total faults ever recorded (worn + stuck).
    pub fn total_faults(&self) -> u64 {
        self.worn + self.stuck
    }

    /// Endurance (worn-out) faults ever recorded.
    pub fn worn(&self) -> u64 {
        self.worn
    }

    /// Stuck-at faults ever recorded.
    pub fn stuck(&self) -> u64 {
        self.stuck
    }

    /// Faults resolved by remapping to a spare cell.
    pub fn remaps(&self) -> u64 {
        self.remaps
    }

    /// Faults that retired their array.
    pub fn retirements(&self) -> u64 {
        self.retirements
    }

    /// Events evicted from the ring buffer (or never retained, with a
    /// zero-capacity buffer).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Rebinds a program's cells around `broken` physical cells: logical cell
/// `i` is bound to the `i`-th healthy physical cell, in index order.
///
/// With no broken cells the mapping is the identity (the program is
/// returned as an exact clone). Each additional broken cell shifts every
/// logical cell at or above it one physical row up, so the patched
/// program spans `num_cells + broken-below-range` physical cells; callers
/// must grow the array accordingly. The instruction *sequence* — and
/// therefore the program's write cost and outputs — is unchanged; only
/// the cell bindings move.
///
/// # Examples
///
/// ```
/// use rlim_plim::{patch_program, Instruction, Operand, Program};
/// use rlim_rram::CellId;
///
/// let program = Program {
///     instructions: vec![Instruction {
///         p: Operand::Cell(CellId::new(0)),
///         q: Operand::Const(false),
///         z: CellId::new(1),
///     }],
///     num_cells: 2,
///     input_cells: vec![CellId::new(0)],
///     output_cells: vec![CellId::new(1)],
/// };
/// // Cell r1 broke: logical 0 stays on r0, logical 1 moves to r2.
/// let patched = patch_program(&program, &[CellId::new(1)]);
/// assert_eq!(patched.instructions[0].z, CellId::new(2));
/// assert_eq!(patched.num_cells, 3);
/// ```
pub fn patch_program(program: &Program, broken: &[CellId]) -> Program {
    if broken.is_empty() {
        return program.clone();
    }
    let broken: std::collections::BTreeSet<usize> = broken.iter().map(|c| c.index()).collect();
    let mut map = Vec::with_capacity(program.num_cells);
    let mut phys = 0usize;
    for _ in 0..program.num_cells {
        while broken.contains(&phys) {
            phys += 1;
        }
        map.push(CellId::new(phys as u32));
        phys += 1;
    }
    let remap = |c: CellId| map[c.index()];
    let remap_operand = |o: Operand| match o {
        Operand::Cell(c) => Operand::Cell(remap(c)),
        constant => constant,
    };
    Program {
        instructions: program
            .instructions
            .iter()
            .map(|i| Instruction {
                p: remap_operand(i.p),
                q: remap_operand(i.q),
                z: remap(i.z),
            })
            .collect(),
        num_cells: map.last().map_or(0, |c| c.index() + 1),
        input_cells: program.input_cells.iter().map(|&c| remap(c)).collect(),
        output_cells: program.output_cells.iter().map(|&c| remap(c)).collect(),
    }
}

/// The physical cell that takes over `failed`'s logical role once
/// `failed` is in the broken set: `failed` held the logical index equal
/// to its physical index minus the broken cells below it, and that
/// logical index now binds to the corresponding healthy cell.
pub(crate) fn remap_target(broken_after: &[CellId], failed: CellId) -> CellId {
    let below = broken_after
        .iter()
        .filter(|b| **b != failed && b.index() < failed.index())
        .count();
    let logical = failed.index() - below;
    let broken: std::collections::BTreeSet<usize> =
        broken_after.iter().map(|c| c.index()).collect();
    let mut healthy = 0usize;
    let mut phys = 0usize;
    loop {
        if !broken.contains(&phys) {
            if healthy == logical {
                return CellId::new(phys as u32);
            }
            healthy += 1;
        }
        phys += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    fn sample() -> Program {
        Program {
            instructions: vec![
                Instruction {
                    p: Operand::Const(false),
                    q: Operand::Const(true),
                    z: c(2),
                },
                Instruction {
                    p: Operand::Cell(c(0)),
                    q: Operand::Cell(c(1)),
                    z: c(2),
                },
            ],
            num_cells: 3,
            input_cells: vec![c(0), c(1)],
            output_cells: vec![c(2)],
        }
    }

    #[test]
    fn empty_broken_set_is_identity() {
        let program = sample();
        assert_eq!(patch_program(&program, &[]), program);
    }

    #[test]
    fn patch_skips_broken_cells_in_order() {
        let program = sample();
        // r1 broken: logical 0 → r0, logical 1 → r2, logical 2 → r3.
        let patched = patch_program(&program, &[c(1)]);
        assert_eq!(patched.input_cells, vec![c(0), c(2)]);
        assert_eq!(patched.output_cells, vec![c(3)]);
        assert_eq!(patched.instructions[1].p, Operand::Cell(c(0)));
        assert_eq!(patched.instructions[1].q, Operand::Cell(c(2)));
        assert_eq!(patched.instructions[1].z, c(3));
        assert_eq!(patched.num_cells, 4);
        // Constants are untouched.
        assert_eq!(patched.instructions[0].p, Operand::Const(false));
        // A second break (the old spare r2) shifts again from the
        // *original* logical space: logical 1 → r3, logical 2 → r4.
        let patched = patch_program(&program, &[c(1), c(2)]);
        assert_eq!(patched.input_cells, vec![c(0), c(3)]);
        assert_eq!(patched.output_cells, vec![c(4)]);
        assert_eq!(patched.num_cells, 5);
    }

    #[test]
    fn patch_preserves_write_cost_and_validity() {
        let program = sample();
        let patched = patch_program(&program, &[c(0), c(2)]);
        assert_eq!(patched.total_writes(), program.total_writes());
        patched.validate().unwrap();
    }

    #[test]
    fn broken_cells_beyond_the_program_do_not_shift_it() {
        let program = sample();
        let patched = patch_program(&program, &[c(7)]);
        assert_eq!(patched, program);
    }

    #[test]
    fn remap_target_names_the_replacement_cell() {
        // r1 fails first: its logical role (1) moves to r2.
        assert_eq!(remap_target(&[c(1)], c(1)), c(2));
        // Then the spare r2 fails: logical 1 moves on to r3.
        assert_eq!(remap_target(&[c(1), c(2)], c(2)), c(3));
        // A failure below earlier breaks: r0 holds logical 0 → r3 is the
        // next healthy cell only after r1, r2; logical 0 → r3? No: broken
        // {0,1,2} leaves r3 as the 0th healthy cell.
        assert_eq!(remap_target(&[c(1), c(2), c(0)], c(0)), c(3));
    }

    #[test]
    fn recorder_counts_and_wraps() {
        let mut log = FaultRecorder::new(2);
        let event = |job, kind, action| FaultEvent {
            job,
            array: 0,
            cell: c(0),
            kind,
            action,
        };
        log.record(event(
            0,
            FaultKind::Worn,
            RecoveryAction::Remapped { spare: c(1) },
        ));
        log.record(event(
            1,
            FaultKind::Stuck,
            RecoveryAction::Remapped { spare: c(2) },
        ));
        log.record(event(2, FaultKind::Worn, RecoveryAction::Retired));
        assert_eq!(log.total_faults(), 3);
        assert_eq!(log.worn(), 2);
        assert_eq!(log.stuck(), 1);
        assert_eq!(log.remaps(), 2);
        assert_eq!(log.retirements(), 1);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.len(), 2);
        let jobs: Vec<usize> = log.events().map(|e| e.job).collect();
        assert_eq!(jobs, vec![1, 2], "oldest event evicted first");
        assert_eq!(log.capacity(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn zero_capacity_recorder_keeps_counters_only() {
        let mut log = FaultRecorder::new(0);
        log.record(FaultEvent {
            job: 0,
            array: 1,
            cell: c(3),
            kind: FaultKind::Stuck,
            action: RecoveryAction::Retired,
        });
        assert_eq!(log.total_faults(), 1);
        assert_eq!(log.len(), 0);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn event_display_names_cell_and_action() {
        let remap = FaultEvent {
            job: 3,
            array: 1,
            cell: c(5),
            kind: FaultKind::Worn,
            action: RecoveryAction::Remapped { spare: c(9) },
        };
        assert_eq!(
            remap.to_string(),
            "job 3 on array 1: cell r5 worn, remapped to r9"
        );
        let retire = FaultEvent {
            job: 7,
            array: 0,
            cell: c(2),
            kind: FaultKind::Stuck,
            action: RecoveryAction::Retired,
        };
        assert_eq!(
            retire.to_string(),
            "job 7 on array 0: cell r2 stuck, array retired"
        );
    }
}
