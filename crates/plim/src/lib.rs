//! # rlim-plim — the Programmable Logic-in-Memory architecture
//!
//! PLiM (Gaillardon et al., DATE 2016) wraps a standard RRAM crossbar with a
//! small controller. When computation is enabled, the controller streams
//! `RM3` instructions: `RM3(P, Q, Z)` reads operands `P` and `Q` (from
//! memory cells or constants) and performs the *resistive majority*
//! operation on destination cell `Z`:
//!
//! ```text
//! Z ← ⟨P, Q̄, Z⟩   (3-input majority; the second operand is inverted)
//! ```
//!
//! The write to `Z` is the only state change per instruction, so the
//! per-cell write distribution of a program is fully determined by its
//! destination sequence — the quantity the DATE 2017 endurance paper
//! balances.
//!
//! This crate provides the RM3 ISA ([`Instruction`], [`Operand`],
//! implementing [`rlim_isa::Isa`]), the [`Program`] container (the shared
//! [`rlim_isa::Program`] instantiated at RM3, produced by
//! `rlim-compiler`), the [`Machine`] that executes programs against an
//! [`rlim_rram::Crossbar`], the bit-parallel [`WideMachine`] that runs up
//! to 64 input vectors per instruction with identical wear accounting,
//! the self-hosted [`Controller`] FSM, and the multi-crossbar [`Fleet`]
//! runtime with endurance-aware dispatch ([`DispatchPolicy`]), including
//! SIMD-batched dispatch ([`Fleet::run_batch_simd`]) and online fault
//! recovery ([`RecoveryConfig`], [`FaultRecorder`], [`patch_program`])
//! over injected device faults ([`rlim_rram::FaultModel`]).
//!
//! ## Example
//!
//! ```
//! use rlim_plim::{Instruction, Machine, Operand, Program};
//! use rlim_rram::CellId;
//!
//! // AND of two preloaded cells, computed into a third (zeroed) cell:
//! //   set0 z; z ← ⟨a, 1̄=… ⟩ — here directly: z ← ⟨a, b̄… ⟩ needs care, so
//! // use the canonical AND recipe: z ← ⟨a, q=1 (Q̄=0), z=b⟩? Simpler:
//! // maj(a, b, 0) via z preloaded 0 and RM3(a, !b is not expressible) —
//! // the compiler handles operand polarity; here we just show execution.
//! let a = CellId::new(0);
//! let b = CellId::new(1);
//! let z = CellId::new(2);
//! let program = Program {
//!     instructions: vec![
//!         // z ← ⟨a, Q̄, z⟩ with Q = constant true ⇒ z ← ⟨a, 0, 0⟩ = a ∧ … = 0∨(a∧0)…
//!         Instruction { p: Operand::Cell(a), q: Operand::Const(false), z },
//!     ],
//!     num_cells: 3,
//!     input_cells: vec![a, b],
//!     output_cells: vec![z],
//! };
//! program.validate().unwrap();
//! let mut machine = Machine::for_program(&program);
//! let out = machine.run(&program, &[true, false]).unwrap();
//! // z started 0; z ← ⟨1, !0=1, 0⟩ = 1
//! assert_eq!(out, vec![true]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod asm;
mod controller;
mod fleet;
mod isa;
mod machine;
mod recovery;
mod trace;
mod wide;

pub use controller::{Controller, State};
pub use fleet::{ArrayStats, DispatchPolicy, Fleet, FleetConfig, FleetError, FleetStats, Job};
pub use isa::{Instruction, Operand, Program, ProgramError};
pub use machine::{run_once, Machine};
pub use recovery::{
    patch_program, FaultEvent, FaultKind, FaultRecorder, RecoveryAction, RecoveryConfig,
};
pub use trace::{Trace, TraceRecord};
pub use wide::{run_once_wide, WideMachine};
