//! The self-hosted PLiM controller of Gaillardon et al. [11].
//!
//! [`Machine`](crate::Machine) executes a program held outside the array —
//! convenient for experiments, but the real PLiM computer is *self-hosted*:
//! "the controller … reads the instructions from the memory array and
//! performs computing operations (RM3) within the memory array" (paper
//! §III-A2), using a small finite state machine, a program counter and a
//! few work registers.
//!
//! [`Controller`] models that faithfully at the bit level:
//!
//! * the program is **encoded into RRAM cells** (an instruction region in
//!   the same crossbar as the data region), so loading the program wears
//!   the instruction cells — one write each, visible in the wear map;
//! * execution is driven by the FSM
//!   `FetchP → FetchQ → FetchZ → ReadA → ReadB → Execute`, with the
//!   program counter incremented after every completed write;
//! * cycles are accounted per state transition, giving a latency model in
//!   controller cycles rather than raw instruction counts.
//!
//! Each operand field is stored as a tag bit (constant vs cell) followed by
//! `addr_bits` address bits; fetches read those cells (reads are wear-free).

use rlim_rram::{CellId, Crossbar, EnduranceError};

use crate::isa::{Operand, Program};

/// FSM states of the PLiM controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum State {
    /// Fetching the P operand field of the current instruction.
    FetchP,
    /// Fetching the Q operand field.
    FetchQ,
    /// Fetching the Z destination field.
    FetchZ,
    /// Reading operand A (P) from the array or a constant latch.
    ReadA,
    /// Reading operand B (Q).
    ReadB,
    /// Performing the RM3 write into Z.
    Execute,
    /// Program counter ran past the last instruction.
    Halted,
}

/// A crossbar hosting both a program image and its data.
///
/// # Examples
///
/// ```
/// use rlim_plim::{Controller, Instruction, Operand, Program, State};
/// use rlim_rram::CellId;
///
/// // r1 ← ⟨r0, 0̄, r1⟩ with r1 = 0: copies r0 into r1.
/// let program = Program {
///     instructions: vec![Instruction {
///         p: Operand::Cell(CellId::new(0)),
///         q: Operand::Const(false),
///         z: CellId::new(1),
///     }],
///     num_cells: 2,
///     input_cells: vec![CellId::new(0)],
///     output_cells: vec![CellId::new(1)],
/// };
/// let mut controller = Controller::host(&program).unwrap();
/// assert_eq!(controller.run(&[true]).unwrap(), vec![true]);
/// assert_eq!(controller.state(), State::Halted);
/// assert_eq!(controller.cycles(), 6, "six FSM states per instruction");
/// // The program image lives in the same array, above the data region.
/// assert_eq!(controller.code_base(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Controller {
    array: Crossbar,
    /// First cell of the instruction region.
    code_base: usize,
    /// Bits per operand field (1 tag + addr_bits).
    field_bits: usize,
    num_instructions: usize,
    /// Data-region interface, copied from the source program.
    input_cells: Vec<CellId>,
    output_cells: Vec<CellId>,
    pc: usize,
    state: State,
    cycles: u64,
    /// Work registers A and B (the controller's operand latches).
    reg_a: bool,
    reg_b: bool,
    /// Decoded fields of the in-flight instruction.
    cur_p: Option<Operand>,
    cur_q: Option<Operand>,
    cur_z: Option<CellId>,
}

impl Controller {
    /// Builds a self-hosted controller: allocates the data region, encodes
    /// `program` into an instruction region above it, and resets the FSM.
    ///
    /// Writing the program image wears each instruction cell once (visible
    /// in [`Controller::array`] wear counters); the paper's Table metrics
    /// exclude this one-off cost, and so do ours, but the model makes it
    /// inspectable.
    ///
    /// # Errors
    ///
    /// Returns [`EnduranceError`] if the array cannot absorb the program
    /// image (only possible with an endurance limit below 1).
    pub fn host(program: &Program) -> Result<Self, EnduranceError> {
        Controller::host_on(program, Crossbar::new())
    }

    /// Like [`Controller::host`] with a caller-provided (possibly
    /// endurance-limited) array.
    ///
    /// # Errors
    ///
    /// Returns [`EnduranceError`] if writing the program image exhausts a
    /// cell.
    pub fn host_on(program: &Program, mut array: Crossbar) -> Result<Self, EnduranceError> {
        array.grow_to(program.num_cells);
        let code_base = program.num_cells;
        // Address space: data cells + 2 constant codes.
        let addr_bits =
            usize::BITS as usize - (program.num_cells.max(1) + 1).leading_zeros() as usize;
        let field_bits = 1 + addr_bits;
        array.grow_to(code_base + 3 * field_bits * program.instructions.len());

        let mut controller = Controller {
            array,
            code_base,
            field_bits,
            num_instructions: program.instructions.len(),
            input_cells: program.input_cells.clone(),
            output_cells: program.output_cells.clone(),
            pc: 0,
            state: if program.instructions.is_empty() {
                State::Halted
            } else {
                State::FetchP
            },
            cycles: 0,
            reg_a: false,
            reg_b: false,
            cur_p: None,
            cur_q: None,
            cur_z: None,
        };
        for (i, inst) in program.instructions.iter().enumerate() {
            controller.store_field(i, 0, encode_operand(inst.p))?;
            controller.store_field(i, 1, encode_operand(inst.q))?;
            controller.store_field(i, 2, encode_operand(Operand::Cell(inst.z)))?;
        }
        Ok(controller)
    }

    fn field_base(&self, instruction: usize, field: usize) -> usize {
        self.code_base + (instruction * 3 + field) * self.field_bits
    }

    fn store_field(
        &mut self,
        instruction: usize,
        field: usize,
        bits: u64,
    ) -> Result<(), EnduranceError> {
        let base = self.field_base(instruction, field);
        for k in 0..self.field_bits {
            let cell = CellId::new((base + k) as u32);
            self.array.write(cell, (bits >> k) & 1 == 1)?;
        }
        Ok(())
    }

    fn fetch_field(&mut self, field: usize) -> u64 {
        let base = self.field_base(self.pc, field);
        let mut bits = 0u64;
        for k in 0..self.field_bits {
            let cell = CellId::new((base + k) as u32);
            bits |= (self.array.read(cell) as u64) << k;
        }
        bits
    }

    /// The hosting array (data region + instruction region).
    pub fn array(&self) -> &Crossbar {
        &self.array
    }

    /// First cell index of the instruction region.
    pub fn code_base(&self) -> usize {
        self.code_base
    }

    /// Current FSM state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Program counter (index of the in-flight instruction).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Controller cycles elapsed (one per FSM transition).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Preloads the primary inputs into the data region (wear-free).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the program interface.
    pub fn load_inputs(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.input_cells.len(),
            "input vector length must match the program interface"
        );
        for (&cell, &value) in self.input_cells.iter().zip(inputs) {
            self.array.preload(cell, value);
        }
    }

    /// Advances the FSM by one state (one cycle).
    ///
    /// # Errors
    ///
    /// Returns [`EnduranceError`] if the `Execute` write exhausts a cell.
    pub fn step(&mut self) -> Result<State, EnduranceError> {
        let next = match self.state {
            State::Halted => State::Halted,
            State::FetchP => {
                let bits = self.fetch_field(0);
                self.cur_p = Some(self.decode(bits));
                State::FetchQ
            }
            State::FetchQ => {
                let bits = self.fetch_field(1);
                self.cur_q = Some(self.decode(bits));
                State::FetchZ
            }
            State::FetchZ => {
                let bits = self.fetch_field(2);
                match self.decode(bits) {
                    Operand::Cell(z) => self.cur_z = Some(z),
                    Operand::Const(_) => unreachable!("Z is always a cell"),
                }
                State::ReadA
            }
            State::ReadA => {
                self.reg_a = match self.cur_p.expect("fetched") {
                    Operand::Const(b) => b,
                    Operand::Cell(c) => self.array.read(c),
                };
                State::ReadB
            }
            State::ReadB => {
                self.reg_b = match self.cur_q.expect("fetched") {
                    Operand::Const(b) => b,
                    Operand::Cell(c) => self.array.read(c),
                };
                State::Execute
            }
            State::Execute => {
                let z = self.cur_z.expect("fetched");
                let old = self.array.read(z);
                let (p, q) = (self.reg_a, self.reg_b);
                // RM3: Z ← ⟨P, Q̄, Z⟩.
                let value = (p & !q) | (p & old) | (!q & old);
                self.array.write(z, value)?;
                self.pc += 1;
                if self.pc >= self.num_instructions {
                    State::Halted
                } else {
                    State::FetchP
                }
            }
        };
        if self.state != State::Halted {
            self.cycles += 1;
        }
        self.state = next;
        Ok(next)
    }

    fn decode(&self, bits: u64) -> Operand {
        decode_operand(bits)
    }

    /// Runs to halt.
    ///
    /// # Errors
    ///
    /// Returns the first [`EnduranceError`] hit.
    pub fn execute(&mut self) -> Result<(), EnduranceError> {
        while self.state != State::Halted {
            self.step()?;
        }
        Ok(())
    }

    /// Reads the primary outputs from the data region.
    pub fn outputs(&self) -> Vec<bool> {
        self.output_cells
            .iter()
            .map(|&c| self.array.read(c))
            .collect()
    }

    /// Convenience: load inputs, run to halt, read outputs.
    ///
    /// # Errors
    ///
    /// Returns the first [`EnduranceError`] hit during execution.
    pub fn run(&mut self, inputs: &[bool]) -> Result<Vec<bool>, EnduranceError> {
        self.load_inputs(inputs);
        self.execute()?;
        Ok(self.outputs())
    }
}

/// Field encoding: bit 0 = tag (1 ⇒ cell address follows, 0 ⇒ constant),
/// bits 1.. = address or constant value.
fn encode_operand(op: Operand) -> u64 {
    match op {
        Operand::Const(b) => (b as u64) << 1,
        Operand::Cell(c) => 1 | ((c.index() as u64) << 1),
    }
}

fn decode_operand(bits: u64) -> Operand {
    if bits & 1 == 1 {
        Operand::Cell(CellId::new((bits >> 1) as u32))
    } else {
        Operand::Const((bits >> 1) & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instruction;
    use crate::machine::Machine;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    /// r2 ← 0; r2 ← ⟨r0, r̄1, r2⟩ (computes r0 ∧ ¬r1).
    fn sample() -> Program {
        Program {
            instructions: vec![
                Instruction {
                    p: Operand::Const(false),
                    q: Operand::Const(true),
                    z: c(2),
                },
                Instruction {
                    p: Operand::Cell(c(0)),
                    q: Operand::Cell(c(1)),
                    z: c(2),
                },
            ],
            num_cells: 3,
            input_cells: vec![c(0), c(1)],
            output_cells: vec![c(2)],
        }
    }

    #[test]
    fn operand_encoding_round_trips() {
        for op in [
            Operand::Const(false),
            Operand::Const(true),
            Operand::Cell(c(0)),
            Operand::Cell(c(1)),
            Operand::Cell(c(4095)),
        ] {
            assert_eq!(decode_operand(encode_operand(op)), op);
        }
    }

    #[test]
    fn self_hosted_matches_external_machine() {
        let program = sample();
        for inputs in [[false, false], [false, true], [true, false], [true, true]] {
            let mut machine = Machine::for_program(&program);
            let external = machine.run(&program, &inputs).unwrap();
            let mut controller = Controller::host(&program).unwrap();
            let hosted = controller.run(&inputs).unwrap();
            assert_eq!(hosted, external, "inputs {inputs:?}");
        }
    }

    #[test]
    fn fsm_walks_the_documented_states() {
        let program = sample();
        let mut controller = Controller::host(&program).unwrap();
        controller.load_inputs(&[true, false]);
        let expect = [
            State::FetchQ,
            State::FetchZ,
            State::ReadA,
            State::ReadB,
            State::Execute,
            State::FetchP, // pc advanced to instruction 1
        ];
        assert_eq!(controller.state(), State::FetchP);
        for e in expect {
            assert_eq!(controller.step().unwrap(), e);
        }
        assert_eq!(controller.pc(), 1);
    }

    #[test]
    fn cycle_count_is_six_per_instruction() {
        let program = sample();
        let mut controller = Controller::host(&program).unwrap();
        controller.run(&[true, true]).unwrap();
        assert_eq!(controller.cycles(), 12, "2 instructions × 6 FSM states");
        assert_eq!(controller.state(), State::Halted);
        // Stepping a halted controller is a no-op.
        assert_eq!(controller.step().unwrap(), State::Halted);
        assert_eq!(controller.cycles(), 12);
    }

    #[test]
    fn program_image_lives_in_the_array_and_wears_it_once() {
        let program = sample();
        let controller = Controller::host(&program).unwrap();
        let code_base = controller.code_base();
        assert_eq!(code_base, 3, "instruction region sits above the data");
        let counts = controller.array().write_counts();
        assert!(counts.len() > 3, "array contains the program image");
        for (i, &w) in counts.iter().enumerate() {
            if i >= code_base {
                assert_eq!(w, 1, "instruction cell {i} written exactly once");
            }
        }
    }

    #[test]
    fn compute_wear_matches_external_machine() {
        let program = sample();
        let inputs = [true, false];
        let mut machine = Machine::for_program(&program);
        machine.run(&program, &inputs).unwrap();
        let external = machine.array().write_counts();

        let mut controller = Controller::host(&program).unwrap();
        controller.run(&inputs).unwrap();
        let hosted = controller.array().write_counts();
        // Data region wear identical; instruction region has its one-off
        // program-load writes.
        assert_eq!(&hosted[..program.num_cells], &external[..]);
    }

    #[test]
    fn empty_program_halts_immediately() {
        let program = Program {
            instructions: vec![],
            num_cells: 1,
            input_cells: vec![c(0)],
            output_cells: vec![c(0)],
        };
        let mut controller = Controller::host(&program).unwrap();
        let out = controller.run(&[true]).unwrap();
        assert_eq!(out, vec![true]);
        assert_eq!(controller.cycles(), 0);
    }

    // Hosting a *compiled* benchmark is covered by the cross-crate suite
    // (`tests/self_hosted.rs::hosted_runs_baseline_pipeline_output`),
    // which drives the controller with real pipeline output instead of
    // the hand-rolled translation loop this module used to carry.
}
