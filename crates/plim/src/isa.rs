//! The RM3 instruction set, plugged into the shared [`rlim_isa`] program
//! container.

use std::fmt;

use rlim_isa::{Isa, Reads};
use rlim_rram::CellId;

/// A read operand of an RM3 instruction. The PLiM controller can feed each
/// of `P` and `Q` either from a memory cell or from a hard-wired constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A constant logic level.
    Const(bool),
    /// The current value of a crossbar cell.
    Cell(CellId),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(false) => write!(f, "0"),
            Operand::Const(true) => write!(f, "1"),
            Operand::Cell(c) => write!(f, "{c}"),
        }
    }
}

/// One RM3 instruction: `Z ← ⟨P, Q̄, Z⟩`.
///
/// The destination `Z` is always a cell; its previous content is the third
/// majority operand, and the result overwrites it (one RRAM write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// First operand, used uncomplemented.
    pub p: Operand,
    /// Second operand, complemented by the operation.
    pub q: Operand,
    /// Destination cell: third operand and write target.
    pub z: CellId,
}

impl Instruction {
    /// The constant-set recipe: `set0(z)` = `RM3(0, 1, z)` or `set1(z)` =
    /// `RM3(1, 0, z)`, writing `bit` regardless of the old destination.
    pub fn set_const(z: CellId, bit: bool) -> Self {
        Instruction {
            p: Operand::Const(bit),
            q: Operand::Const(!bit),
            z,
        }
    }

    /// The load half of the `copy` recipe: `RM3(src, 0, z)` computes
    /// `⟨v, 1, 0⟩ = v` when `z` was just set to 0.
    pub fn load(src: CellId, z: CellId) -> Self {
        Instruction {
            p: Operand::Cell(src),
            q: Operand::Const(false),
            z,
        }
    }

    /// The load half of the `copy_inv` recipe: `RM3(0, src, z)` computes
    /// `⟨0, !v, 1⟩ = !v` when `z` was just set to 1.
    pub fn load_inv(src: CellId, z: CellId) -> Self {
        Instruction {
            p: Operand::Const(false),
            q: Operand::Cell(src),
            z,
        }
    }

    /// Recognises the constant-set recipes, returning the constant they
    /// write (`None` for every other instruction).
    pub fn as_set_const(&self) -> Option<bool> {
        match (self.p, self.q) {
            (Operand::Const(p), Operand::Const(q)) if p != q => Some(p),
            _ => None,
        }
    }

    /// Whether the result is independent of the destination's previous
    /// value. True exactly for the constant-set recipes `set0` =
    /// `RM3(0, 1, z)` and `set1` = `RM3(1, 0, z)`: `⟨b, b, z⟩ = b`.
    pub fn ignores_old_destination(&self) -> bool {
        self.as_set_const().is_some()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RM3({}, {}, {})", self.p, self.q, self.z)
    }
}

impl Isa for Instruction {
    const NAME: &'static str = "PLiM";
    // RM3 programs establish destination values with set0/set1 recipes, so
    // reading an untouched cell through the Z operand is by design.
    const REQUIRES_DEFINED_READS: bool = false;

    fn destination(&self) -> CellId {
        self.z
    }

    fn reads(&self) -> Reads {
        let mut reads = Reads::new();
        if let Operand::Cell(c) = self.p {
            reads.push(c);
        }
        if let Operand::Cell(c) = self.q {
            reads.push(c);
        }
        if !self.ignores_old_destination() {
            reads.push(self.z);
        }
        reads
    }
}

/// A compiled PLiM program: the shared container instantiated at the RM3
/// instruction set.
///
/// Produced by `rlim-compiler`; executed by [`crate::Machine`]. See
/// [`rlim_isa::Program`] for the accounting and validation surface.
pub type Program = rlim_isa::Program<Instruction>;

/// Structural validation error of a [`Program`] (shared across ISAs).
pub use rlim_isa::ProgramError;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program {
            instructions: vec![Instruction {
                p: Operand::Cell(CellId::new(0)),
                q: Operand::Const(true),
                z: CellId::new(2),
            }],
            num_cells: 3,
            input_cells: vec![CellId::new(0), CellId::new(1)],
            output_cells: vec![CellId::new(2)],
        }
    }

    #[test]
    fn metrics() {
        let p = sample();
        assert_eq!(p.num_instructions(), 1);
        assert_eq!(p.num_rrams(), 3);
        assert_eq!(p.write_counts(), vec![0, 0, 1]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut p = sample();
        p.instructions.push(Instruction {
            p: Operand::Const(false),
            q: Operand::Cell(CellId::new(9)),
            z: CellId::new(0),
        });
        assert!(matches!(
            p.validate(),
            Err(ProgramError::CellOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicate_inputs() {
        let mut p = sample();
        p.input_cells.push(CellId::new(0));
        assert_eq!(
            p.validate(),
            Err(ProgramError::DuplicateInputCell(CellId::new(0)))
        );
    }

    #[test]
    fn validate_checks_output_range() {
        let mut p = sample();
        p.output_cells.push(CellId::new(7));
        assert!(matches!(
            p.validate(),
            Err(ProgramError::CellOutOfRange { .. })
        ));
    }

    #[test]
    fn display_and_disassembly() {
        let p = sample();
        assert_eq!(p.instructions[0].to_string(), "RM3(r0, 1, r2)");
        let text = p.disassemble();
        assert!(text.contains("PLiM program"));
        assert!(text.contains("1 instructions"));
        assert!(text.contains("RM3(r0, 1, r2)"));
        assert_eq!(
            Instruction {
                p: Operand::Const(false),
                q: Operand::Const(true),
                z: CellId::new(1)
            }
            .to_string(),
            "RM3(0, 1, r1)"
        );
    }

    #[test]
    fn reads_model_rm3_data_dependencies() {
        use rlim_isa::Isa as _;
        let set0 = Instruction {
            p: Operand::Const(false),
            q: Operand::Const(true),
            z: CellId::new(4),
        };
        assert!(set0.ignores_old_destination());
        assert!(set0.reads().is_empty(), "set0 is value-independent");

        let general = Instruction {
            p: Operand::Cell(CellId::new(0)),
            q: Operand::Cell(CellId::new(1)),
            z: CellId::new(2),
        };
        assert!(!general.ignores_old_destination());
        assert_eq!(
            general.reads().as_slice(),
            &[CellId::new(0), CellId::new(1), CellId::new(2)],
            "general RM3 reads P, Q and the old destination"
        );
        assert_eq!(general.destination(), CellId::new(2));
    }

    #[test]
    fn recipe_constructors_round_trip() {
        let z = CellId::new(3);
        let set0 = Instruction::set_const(z, false);
        assert_eq!(set0.to_string(), "RM3(0, 1, r3)");
        assert_eq!(set0.as_set_const(), Some(false));
        assert!(set0.ignores_old_destination());
        let set1 = Instruction::set_const(z, true);
        assert_eq!(set1.to_string(), "RM3(1, 0, r3)");
        assert_eq!(set1.as_set_const(), Some(true));

        let src = CellId::new(1);
        let load = Instruction::load(src, z);
        assert_eq!(load.to_string(), "RM3(r1, 0, r3)");
        assert_eq!(load.as_set_const(), None);
        assert!(!load.ignores_old_destination());
        let load_inv = Instruction::load_inv(src, z);
        assert_eq!(load_inv.to_string(), "RM3(0, r1, r3)");
        assert_eq!(load_inv.as_set_const(), None);
    }

    #[test]
    fn error_display() {
        let e = ProgramError::DuplicateInputCell(CellId::new(4));
        assert_eq!(e.to_string(), "duplicate input cell r4");
    }
}
