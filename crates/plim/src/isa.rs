//! The RM3 instruction set and program container.

use std::fmt;

use rlim_rram::CellId;

/// A read operand of an RM3 instruction. The PLiM controller can feed each
/// of `P` and `Q` either from a memory cell or from a hard-wired constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A constant logic level.
    Const(bool),
    /// The current value of a crossbar cell.
    Cell(CellId),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(false) => write!(f, "0"),
            Operand::Const(true) => write!(f, "1"),
            Operand::Cell(c) => write!(f, "{c}"),
        }
    }
}

/// One RM3 instruction: `Z ← ⟨P, Q̄, Z⟩`.
///
/// The destination `Z` is always a cell; its previous content is the third
/// majority operand, and the result overwrites it (one RRAM write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// First operand, used uncomplemented.
    pub p: Operand,
    /// Second operand, complemented by the operation.
    pub q: Operand,
    /// Destination cell: third operand and write target.
    pub z: CellId,
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RM3({}, {}, {})", self.p, self.q, self.z)
    }
}

/// A compiled PLiM program.
///
/// Produced by `rlim-compiler`; executed by [`crate::Machine`]. The cell
/// address space is `0..num_cells`. Input cells must be preloaded with the
/// primary-input values before execution; after execution the primary
/// outputs are read from `output_cells`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The RM3 instruction sequence.
    pub instructions: Vec<Instruction>,
    /// Number of RRAM cells the program addresses (the paper's `#R`).
    pub num_cells: usize,
    /// Cells holding the primary inputs at program start, in PI order.
    pub input_cells: Vec<CellId>,
    /// Cells holding the primary outputs at program end, in PO order.
    pub output_cells: Vec<CellId>,
}

/// A structural problem detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An instruction or I/O map references a cell `≥ num_cells`.
    CellOutOfRange {
        /// Where the reference occurred (human-readable).
        site: String,
        /// The offending cell.
        cell: CellId,
    },
    /// Two primary inputs map to the same cell.
    DuplicateInputCell(CellId),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::CellOutOfRange { site, cell } => {
                write!(f, "cell {cell} out of range at {site}")
            }
            ProgramError::DuplicateInputCell(c) => {
                write!(f, "duplicate input cell {c}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// The paper's `#I` metric: number of RM3 instructions.
    pub fn num_instructions(&self) -> usize {
        self.instructions.len()
    }

    /// The paper's `#R` metric: number of RRAM cells used.
    pub fn num_rrams(&self) -> usize {
        self.num_cells
    }

    /// Per-cell write counts implied by the destination sequence (static:
    /// each instruction writes its destination exactly once).
    pub fn write_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_cells];
        for inst in &self.instructions {
            counts[inst.z.index()] += 1;
        }
        counts
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found: an out-of-range cell in any
    /// instruction or I/O map, or a duplicated input cell.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let check = |site: String, cell: CellId| -> Result<(), ProgramError> {
            if cell.index() >= self.num_cells {
                Err(ProgramError::CellOutOfRange { site, cell })
            } else {
                Ok(())
            }
        };
        for (i, inst) in self.instructions.iter().enumerate() {
            if let Operand::Cell(c) = inst.p {
                check(format!("instruction {i} operand P"), c)?;
            }
            if let Operand::Cell(c) = inst.q {
                check(format!("instruction {i} operand Q"), c)?;
            }
            check(format!("instruction {i} destination"), inst.z)?;
        }
        let mut seen = vec![false; self.num_cells];
        for (i, &c) in self.input_cells.iter().enumerate() {
            check(format!("input {i}"), c)?;
            if seen[c.index()] {
                return Err(ProgramError::DuplicateInputCell(c));
            }
            seen[c.index()] = true;
        }
        for (i, &c) in self.output_cells.iter().enumerate() {
            check(format!("output {i}"), c)?;
        }
        Ok(())
    }

    /// Human-readable disassembly, one instruction per line.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; PLiM program: {} instructions, {} cells",
            self.num_instructions(),
            self.num_rrams()
        );
        for (i, inst) in self.instructions.iter().enumerate() {
            let _ = writeln!(out, "{i:6}: {inst}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program {
            instructions: vec![Instruction {
                p: Operand::Cell(CellId::new(0)),
                q: Operand::Const(true),
                z: CellId::new(2),
            }],
            num_cells: 3,
            input_cells: vec![CellId::new(0), CellId::new(1)],
            output_cells: vec![CellId::new(2)],
        }
    }

    #[test]
    fn metrics() {
        let p = sample();
        assert_eq!(p.num_instructions(), 1);
        assert_eq!(p.num_rrams(), 3);
        assert_eq!(p.write_counts(), vec![0, 0, 1]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut p = sample();
        p.instructions.push(Instruction {
            p: Operand::Const(false),
            q: Operand::Cell(CellId::new(9)),
            z: CellId::new(0),
        });
        assert!(matches!(
            p.validate(),
            Err(ProgramError::CellOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicate_inputs() {
        let mut p = sample();
        p.input_cells.push(CellId::new(0));
        assert_eq!(
            p.validate(),
            Err(ProgramError::DuplicateInputCell(CellId::new(0)))
        );
    }

    #[test]
    fn validate_checks_output_range() {
        let mut p = sample();
        p.output_cells.push(CellId::new(7));
        assert!(matches!(
            p.validate(),
            Err(ProgramError::CellOutOfRange { .. })
        ));
    }

    #[test]
    fn display_and_disassembly() {
        let p = sample();
        assert_eq!(p.instructions[0].to_string(), "RM3(r0, 1, r2)");
        let text = p.disassemble();
        assert!(text.contains("1 instructions"));
        assert!(text.contains("RM3(r0, 1, r2)"));
        assert_eq!(
            Instruction {
                p: Operand::Const(false),
                q: Operand::Const(true),
                z: CellId::new(1)
            }
            .to_string(),
            "RM3(0, 1, r1)"
        );
    }

    #[test]
    fn error_display() {
        let e = ProgramError::DuplicateInputCell(CellId::new(4));
        assert_eq!(e.to_string(), "duplicate input cell r4");
    }
}
