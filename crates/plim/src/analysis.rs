//! Static program analysis: per-cell liveness spans and blocked-cell
//! metrics.
//!
//! The paper's §III-B4 problem — *blocked RRAMs* — is about cells that
//! hold a value for a long stretch of the program while other cells churn.
//! These functions measure that directly from the instruction stream: a
//! cell's **span** runs from the first instruction that touches it to the
//! last, and a long span with few writes is exactly a blocked cell.

use rlim_rram::CellId;

use crate::isa::{Operand, Program};

/// Liveness span of one cell: first and last instruction index that
/// references it (as operand or destination), inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpan {
    /// First instruction referencing the cell.
    pub first: usize,
    /// Last instruction referencing the cell.
    pub last: usize,
    /// Number of writes the cell receives inside the span.
    pub writes: u64,
}

impl CellSpan {
    /// Span length in instructions (1 for a single reference).
    pub fn length(&self) -> usize {
        self.last - self.first + 1
    }

    /// A blocked cell holds its value across many instructions but is
    /// written rarely: span length per write. Cells written every cycle
    /// score 1; a classic blocked cell scores in the hundreds.
    pub fn blockage(&self) -> f64 {
        self.length() as f64 / (self.writes.max(1)) as f64
    }
}

/// Computes the liveness span of every cell referenced by the program.
/// Cells the program never references (e.g. unused inputs) get `None`.
///
/// # Examples
///
/// ```
/// use rlim_plim::{analysis, Instruction, Operand, Program};
/// use rlim_rram::CellId;
///
/// let program = Program {
///     instructions: vec![
///         Instruction { p: Operand::Const(false), q: Operand::Const(true), z: CellId::new(1) },
///         Instruction { p: Operand::Cell(CellId::new(0)), q: Operand::Const(false), z: CellId::new(1) },
///     ],
///     num_cells: 2,
///     input_cells: vec![CellId::new(0)],
///     output_cells: vec![CellId::new(1)],
/// };
/// let spans = analysis::cell_spans(&program);
/// assert_eq!(spans[0].unwrap().first, 1); // input first read at pc 1
/// assert_eq!(spans[1].unwrap().writes, 2);
/// ```
pub fn cell_spans(program: &Program) -> Vec<Option<CellSpan>> {
    let mut spans: Vec<Option<CellSpan>> = vec![None; program.num_cells];
    let mut touch = |cell: CellId, pc: usize, write: bool| {
        let entry = &mut spans[cell.index()];
        match entry {
            Some(span) => {
                span.last = pc;
                span.writes += write as u64;
            }
            None => {
                *entry = Some(CellSpan {
                    first: pc,
                    last: pc,
                    writes: write as u64,
                });
            }
        }
    };
    for (pc, inst) in program.instructions.iter().enumerate() {
        for op in [inst.p, inst.q] {
            if let Operand::Cell(c) = op {
                touch(c, pc, false);
            }
        }
        touch(inst.z, pc, true);
    }
    spans
}

/// Summary of blocked-cell pressure in a program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockageStats {
    /// Number of cells with a liveness span.
    pub cells: usize,
    /// Mean span length (instructions) over live cells.
    pub mean_span: f64,
    /// Largest span length.
    pub max_span: usize,
    /// Mean blockage score (span ÷ writes).
    pub mean_blockage: f64,
    /// Largest blockage score — the most blocked cell.
    pub max_blockage: f64,
}

/// Aggregates [`cell_spans`] into blocked-cell statistics.
///
/// Returns an all-zero summary for a program with no cell references.
pub fn blockage_stats(program: &Program) -> BlockageStats {
    let spans: Vec<CellSpan> = cell_spans(program).into_iter().flatten().collect();
    if spans.is_empty() {
        return BlockageStats {
            cells: 0,
            mean_span: 0.0,
            max_span: 0,
            mean_blockage: 0.0,
            max_blockage: 0.0,
        };
    }
    let cells = spans.len();
    let mean_span = spans.iter().map(|s| s.length() as f64).sum::<f64>() / cells as f64;
    let max_span = spans.iter().map(CellSpan::length).max().expect("non-empty");
    let blockages: Vec<f64> = spans.iter().map(CellSpan::blockage).collect();
    let mean_blockage = blockages.iter().sum::<f64>() / cells as f64;
    let max_blockage = blockages.iter().copied().fold(0.0, f64::max);
    BlockageStats {
        cells,
        mean_span,
        max_span,
        mean_blockage,
        max_blockage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instruction;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    fn inst(p: Operand, q: Operand, z: CellId) -> Instruction {
        Instruction { p, q, z }
    }

    /// r0 read at 0 and again at 3; r1 written at 0..=2; r2 written at 3.
    fn sample() -> Program {
        Program {
            instructions: vec![
                inst(Operand::Cell(c(0)), Operand::Const(false), c(1)),
                inst(Operand::Const(false), Operand::Const(true), c(1)),
                inst(Operand::Const(true), Operand::Const(false), c(1)),
                inst(Operand::Cell(c(0)), Operand::Cell(c(1)), c(2)),
            ],
            num_cells: 4,
            input_cells: vec![c(0)],
            output_cells: vec![c(2)],
        }
    }

    #[test]
    fn spans_track_first_last_and_writes() {
        let spans = cell_spans(&sample());
        let s0 = spans[0].expect("r0 referenced");
        assert_eq!((s0.first, s0.last, s0.writes), (0, 3, 0));
        assert_eq!(s0.length(), 4);
        let s1 = spans[1].expect("r1 referenced");
        assert_eq!((s1.first, s1.last, s1.writes), (0, 3, 3));
        let s2 = spans[2].expect("r2 referenced");
        assert_eq!((s2.first, s2.last, s2.writes), (3, 3, 1));
        assert_eq!(spans[3], None, "r3 never referenced");
    }

    #[test]
    fn blockage_scores() {
        let spans = cell_spans(&sample());
        // r0: span 4, 0 writes → blocked cell (score 4 with max(1) guard).
        assert_eq!(spans[0].unwrap().blockage(), 4.0);
        // r1: span 4, 3 writes → churning work cell.
        assert!((spans[1].unwrap().blockage() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(spans[2].unwrap().blockage(), 1.0);
    }

    #[test]
    fn stats_aggregate() {
        let stats = blockage_stats(&sample());
        assert_eq!(stats.cells, 3);
        assert_eq!(stats.max_span, 4);
        assert_eq!(stats.max_blockage, 4.0);
        assert!(stats.mean_span > 0.0);
        assert!(stats.mean_blockage >= 1.0);
    }

    #[test]
    fn empty_program_all_zero() {
        let program = Program {
            instructions: vec![],
            num_cells: 2,
            input_cells: vec![c(0)],
            output_cells: vec![c(0)],
        };
        let stats = blockage_stats(&program);
        assert_eq!(stats.cells, 0);
        assert_eq!(stats.max_span, 0);
    }
}
