//! `rlim` binary entry point; all logic lives in the library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rlim_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.code);
        }
    }
}
