//! Implementation of the `rlim` command-line tool.
//!
//! The binary front end is a thin wrapper around [`run`]; everything —
//! argument parsing, command dispatch, output formatting — lives in the
//! library so it can be tested without spawning processes.
//!
//! ```text
//! rlim compile <circuit.blif> [--policy P] [--max-writes W] [--effort N] [--peephole]
//!              [-o prog.plim]
//! rlim run     <prog.plim> --inputs 1011…            # execute on the simulated crossbar
//! rlim stats   <prog.plim>                           # #I, #R, write distribution, wear map
//! rlim bench   <name> [--policy P] [--max-writes W]  # compile a built-in benchmark
//! rlim fleet   <name> [--arrays N] [--jobs J] [--dispatch D] [--write-budget W]
//! rlim list                                          # list built-in benchmarks
//! ```
//!
//! Policies: `naive`, `plim21`, `min-write`, `ea-rewriting`,
//! `endurance-aware` (default).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use rlim_benchmarks::Benchmark;
use rlim_compiler::{compile, Backend, CompileOptions, Rm3Backend};
use rlim_mig::{blif, Mig};
use rlim_plim::{asm, Program};
use rlim_rram::{WearMap, WriteStats};

/// A command-line failure: message for stderr plus the exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable explanation.
    pub message: String,
    /// Process exit code (2 = usage, 1 = operational).
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    fn run(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Usage text printed on `--help` or argument errors.
pub const USAGE: &str = "\
rlim — endurance-aware logic-in-memory toolchain (DATE 2017 reproduction)

usage:
  rlim compile <circuit.blif> [--policy P] [--max-writes W] [--effort N] [--peephole]
               [-o out.plim]
  rlim run     <prog.plim> --inputs <bits>
  rlim stats   <prog.plim> [--wear-map]
  rlim bench   <benchmark> [--policy P] [--max-writes W] [--effort N] [--peephole]
               [-o out.plim]
  rlim fleet   <benchmark> [--arrays N] [--jobs J] [--dispatch D] [--write-budget W]
               [--effort N] [--threads N]
  rlim list

policies: naive | plim21 | min-write | ea-rewriting | endurance-aware (default)
dispatch: round-robin | least-worn (default)
--peephole runs the write-elision pass (never increases #I or any cell's writes)
";

/// Runs the tool on `args` (without the program name), returning the text
/// to print on stdout.
///
/// # Errors
///
/// Returns [`CliError`] with a usage or operational message.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("compile") => cmd_compile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("list") => Ok(cmd_list()),
        Some("--help") | Some("-h") | None => Ok(USAGE.to_string()),
        Some(other) => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

/// Parsed common options.
struct CommonOpts {
    policy: CompileOptions,
    output: Option<String>,
    positional: Vec<String>,
    inputs: Option<String>,
    wear_map: bool,
}

fn parse_common(args: &[String]) -> Result<CommonOpts, CliError> {
    let mut policy_name = "endurance-aware".to_string();
    let mut max_writes: Option<u64> = None;
    let mut effort: Option<usize> = None;
    let mut output = None;
    let mut positional = Vec::new();
    let mut inputs = None;
    let mut wear_map = false;
    let mut peephole = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--policy" => policy_name = value_of("--policy")?,
            "--max-writes" => {
                let v = value_of("--max-writes")?;
                max_writes = Some(
                    v.parse()
                        .map_err(|_| CliError::usage(format!("bad --max-writes `{v}`")))?,
                );
            }
            "--effort" => {
                let v = value_of("--effort")?;
                effort = Some(
                    v.parse()
                        .map_err(|_| CliError::usage(format!("bad --effort `{v}`")))?,
                );
            }
            "-o" | "--output" => output = Some(value_of("-o")?),
            "--inputs" => inputs = Some(value_of("--inputs")?),
            "--wear-map" => wear_map = true,
            "--peephole" => peephole = true,
            other if other.starts_with('-') => {
                return Err(CliError::usage(format!("unknown flag `{other}`")));
            }
            other => positional.push(other.to_string()),
        }
    }

    let mut policy = match policy_name.as_str() {
        "naive" => CompileOptions::naive(),
        "plim21" => CompileOptions::plim_compiler(),
        "min-write" => CompileOptions::min_write(),
        "ea-rewriting" => CompileOptions::endurance_rewriting(),
        "endurance-aware" => CompileOptions::endurance_aware(),
        other => {
            return Err(CliError::usage(format!(
                "unknown policy `{other}` (naive | plim21 | min-write | ea-rewriting | endurance-aware)"
            )));
        }
    };
    if let Some(w) = max_writes {
        if w < 3 {
            return Err(CliError::usage("--max-writes must be at least 3"));
        }
        policy = policy.with_max_writes(w);
    }
    if let Some(e) = effort {
        policy = policy.with_effort(e);
    }
    if peephole {
        policy = policy.with_peephole(true);
    }
    Ok(CommonOpts {
        policy,
        output,
        positional,
        inputs,
        wear_map,
    })
}

fn compile_report(mig: &Mig, opts: &CommonOpts, source: &str) -> Result<String, CliError> {
    let result = compile(mig, &opts.policy);
    let stats = result.write_stats();
    let text = asm::to_text(&result.program);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{source}: {} PI / {} PO / {} gates",
        mig.num_inputs(),
        mig.num_outputs(),
        mig.num_gates()
    );
    let _ = writeln!(
        out,
        "compiled: {} instructions, {} cells, writes min={} max={} stdev={:.2}",
        result.num_instructions(),
        result.num_rrams(),
        stats.min,
        stats.max,
        stats.stdev
    );
    match &opts.output {
        Some(path) => {
            fs::write(path, &text)
                .map_err(|e| CliError::run(format!("cannot write `{path}`: {e}")))?;
            let _ = writeln!(out, "wrote {path}");
        }
        None => out.push_str(&text),
    }
    Ok(out)
}

fn cmd_compile(args: &[String]) -> Result<String, CliError> {
    let opts = parse_common(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err(CliError::usage("compile needs exactly one BLIF file"));
    };
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::run(format!("cannot read `{path}`: {e}")))?;
    let mig = blif::parse_blif(&text).map_err(|e| CliError::run(format!("{path}: {e}")))?;
    compile_report(&mig, &opts, path)
}

fn cmd_bench(args: &[String]) -> Result<String, CliError> {
    let opts = parse_common(args)?;
    let [name] = opts.positional.as_slice() else {
        return Err(CliError::usage(
            "bench needs exactly one benchmark name (see `rlim list`)",
        ));
    };
    let benchmark: Benchmark = name
        .parse()
        .map_err(|e| CliError::usage(format!("{e}; see `rlim list`")))?;
    let mig = benchmark.build();
    compile_report(&mig, &opts, name)
}

/// `rlim fleet`: run an alternating heavy/light workload of a built-in
/// benchmark on a multi-crossbar fleet and report per-array wear.
fn cmd_fleet(args: &[String]) -> Result<String, CliError> {
    use rlim_plim::{DispatchPolicy, Fleet, FleetConfig, Job};

    let mut arrays = 4usize;
    let mut jobs = 24usize;
    let mut dispatch = DispatchPolicy::LeastWorn;
    let mut write_budget: Option<u64> = None;
    let mut effort = 5usize;
    let mut threads = std::env::var("RLIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut positional = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
        };
        let parse = |flag: &str, v: String| -> Result<usize, CliError> {
            v.parse()
                .map_err(|_| CliError::usage(format!("bad {flag} `{v}`")))
        };
        match arg.as_str() {
            "--arrays" => arrays = parse("--arrays", value_of("--arrays")?)?,
            "--jobs" => jobs = parse("--jobs", value_of("--jobs")?)?,
            "--effort" => effort = parse("--effort", value_of("--effort")?)?,
            "--threads" => threads = parse("--threads", value_of("--threads")?)?,
            "--dispatch" => {
                let v = value_of("--dispatch")?;
                dispatch = v.parse().map_err(CliError::usage)?;
            }
            "--write-budget" => {
                let v = value_of("--write-budget")?;
                let w: u64 = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad --write-budget `{v}`")))?;
                if w == 0 {
                    return Err(CliError::usage("--write-budget must be positive"));
                }
                write_budget = Some(w);
            }
            other if other.starts_with('-') => {
                return Err(CliError::usage(format!("unknown flag `{other}`")));
            }
            other => positional.push(other.to_string()),
        }
    }
    if arrays == 0 {
        return Err(CliError::usage("--arrays must be positive"));
    }
    let [name] = positional.as_slice() else {
        return Err(CliError::usage(
            "fleet needs exactly one benchmark name (see `rlim list`)",
        ));
    };
    let benchmark: Benchmark = name
        .parse()
        .map_err(|e| CliError::usage(format!("{e}; see `rlim list`")))?;

    let mig = benchmark.build();
    let heavy = Rm3Backend.compile(&mig, &CompileOptions::naive());
    let light = Rm3Backend.compile(&mig, &CompileOptions::endurance_aware().with_effort(effort));
    let inputs = vec![false; mig.num_inputs()];
    let job_list = Job::alternating(&heavy, &light, &inputs, jobs);

    let mut config = FleetConfig::new(arrays).with_policy(dispatch);
    if let Some(w) = write_budget {
        config = config.with_write_budget(w);
    }
    let mut fleet = Fleet::new(config);
    let placed = match fleet.run_batch(&job_list, threads) {
        Ok(outputs) => outputs.len(),
        Err(e) => {
            return Err(CliError::run(format!(
                "fleet workload failed: {e} (try more arrays or a larger --write-budget)"
            )));
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name}: fleet of {arrays} arrays, {} dispatch, {placed} jobs (alternating naive / endurance-aware)",
        dispatch.label()
    );
    let _ = writeln!(
        out,
        "job mix: naive #I={}, endurance-aware #I={}",
        heavy.num_instructions(),
        light.num_instructions()
    );
    for i in 0..fleet.num_arrays() {
        let _ = writeln!(
            out,
            "array {i}: {} jobs, {} writes{}",
            fleet.jobs_on(i),
            fleet.total_writes(i),
            if fleet.is_retired(i) { ", retired" } else { "" }
        );
    }
    let stats = fleet.stats();
    let _ = writeln!(out, "fleet: {}", stats.wear);
    if write_budget.is_some() {
        let cost = heavy.total_writes().max(light.total_writes());
        let _ = writeln!(
            out,
            "budget: {} arrays retired, capacity for {} more heavy jobs (first retirement within {})",
            stats.retired,
            fleet.remaining_jobs(cost).expect("budget configured"),
            fleet.first_retirement_horizon(cost).expect("budget configured"),
        );
    }
    Ok(out)
}

fn load_program(path: &str) -> Result<Program, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::run(format!("cannot read `{path}`: {e}")))?;
    let program = asm::parse_text(&text).map_err(|e| CliError::run(format!("{path}: {e}")))?;
    program
        .validate()
        .map_err(|e| CliError::run(format!("{path}: invalid program: {e}")))?;
    Ok(program)
}

fn cmd_run(args: &[String]) -> Result<String, CliError> {
    let opts = parse_common(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err(CliError::usage("run needs exactly one .plim file"));
    };
    let program = load_program(path)?;
    let bits = opts
        .inputs
        .as_deref()
        .ok_or_else(|| CliError::usage("run needs --inputs <bits>"))?;
    let inputs: Vec<bool> = bits
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(CliError::usage(format!("bad input bit `{other}`"))),
        })
        .collect::<Result<_, _>>()?;
    if inputs.len() != program.input_cells.len() {
        return Err(CliError::usage(format!(
            "program has {} inputs, got {}",
            program.input_cells.len(),
            inputs.len()
        )));
    }
    let outputs = Rm3Backend
        .execute(&program, &inputs)
        .map_err(|e| CliError::run(e.to_string()))?;
    let rendered: String = outputs.iter().map(|&b| if b { '1' } else { '0' }).collect();
    Ok(format!("outputs: {rendered}\n"))
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let opts = parse_common(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err(CliError::usage("stats needs exactly one .plim file"));
    };
    let program = load_program(path)?;
    let counts = program.write_counts();
    let stats = WriteStats::from_counts(counts.iter().copied());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} instructions, {} cells, {} inputs, {} outputs",
        program.num_instructions(),
        program.num_rrams(),
        program.input_cells.len(),
        program.output_cells.len()
    );
    let _ = writeln!(
        out,
        "writes: min={} max={} mean={:.2} stdev={:.2}",
        stats.min, stats.max, stats.mean, stats.stdev
    );
    if opts.wear_map {
        let map = WearMap::square(counts);
        let _ = write!(out, "{map}");
    }
    Ok(out)
}

fn cmd_list() -> String {
    let mut out = String::from("built-in benchmarks (PI/PO, kind):\n");
    for &b in Benchmark::all() {
        let (pi, po) = b.interface();
        let kind = if b.is_exact() { "exact" } else { "synthetic" };
        let _ = writeln!(out, "  {:<11} {pi:>5}/{po:<5} {kind}", b.name());
    }
    out
}

/// Test helper: run with string literals.
#[doc(hidden)]
pub fn run_str(args: &[&str]) -> Result<String, CliError> {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run(&owned)
}

/// Writes `contents` to a temp file and returns its path (test support).
#[doc(hidden)]
pub fn write_temp(name: &str, contents: &str) -> String {
    let path = std::env::temp_dir().join(format!("rlim-cli-test-{}-{name}", std::process::id()));
    fs::write(&path, contents).expect("temp file writable");
    path.to_string_lossy().into_owned()
}

/// Removes a temp file created by [`write_temp`] (test support).
#[doc(hidden)]
pub fn remove_temp(path: &str) {
    let _ = fs::remove_file(Path::new(path));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown_command() {
        assert!(run_str(&["--help"]).unwrap().contains("usage:"));
        assert!(run_str(&[]).unwrap().contains("usage:"));
        let err = run_str(&["frobnicate"]).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn list_names_all_benchmarks() {
        let out = run_str(&["list"]).unwrap();
        for &b in Benchmark::all() {
            assert!(out.contains(b.name()), "missing {b}");
        }
    }

    #[test]
    fn bench_compiles_and_reports() {
        let out = run_str(&["bench", "int2float"]).unwrap();
        assert!(out.contains("11 PI / 7 PO"), "{out}");
        assert!(out.contains("compiled:"), "{out}");
        assert!(out.contains(".cells"), "inline assembly listing expected");
    }

    #[test]
    fn bench_peephole_never_reports_more_instructions() {
        let count = |out: &str| -> usize {
            let line = out.lines().find(|l| l.starts_with("compiled:")).unwrap();
            line.split_whitespace().nth(1).unwrap().parse().unwrap()
        };
        let off = run_str(&["bench", "ctrl", "--policy", "naive"]).unwrap();
        let on = run_str(&["bench", "ctrl", "--policy", "naive", "--peephole"]).unwrap();
        assert!(count(&on) <= count(&off), "peephole may only shrink #I");
    }

    #[test]
    fn bench_rejects_unknown_name_and_policy() {
        assert_eq!(run_str(&["bench", "nonesuch"]).unwrap_err().code, 2);
        assert_eq!(
            run_str(&["bench", "dec", "--policy", "yolo"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["bench", "dec", "--max-writes", "1"])
                .unwrap_err()
                .code,
            2
        );
    }

    #[test]
    fn fleet_reports_balanced_arrays() {
        let out = run_str(&["fleet", "ctrl", "--arrays", "2", "--jobs", "8"]).unwrap();
        assert!(out.contains("fleet of 2 arrays"), "{out}");
        assert!(out.contains("least-worn dispatch"), "{out}");
        assert!(out.contains("array 0:"), "{out}");
        assert!(out.contains("array 1:"), "{out}");
        assert!(out.contains("2 arrays, totals"), "{out}");
    }

    #[test]
    fn fleet_budget_reports_retirement() {
        // A budget that fits only a few ctrl executions per array.
        let out = run_str(&[
            "fleet",
            "ctrl",
            "--arrays",
            "2",
            "--jobs",
            "4",
            "--write-budget",
            "2000",
        ])
        .unwrap();
        assert!(out.contains("budget:"), "{out}");

        // An impossible budget exhausts the fleet: operational error.
        let err = run_str(&["fleet", "ctrl", "--jobs", "4", "--write-budget", "10"]).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("exhausted"), "{err}");
    }

    #[test]
    fn fleet_rejects_bad_flags() {
        assert_eq!(run_str(&["fleet"]).unwrap_err().code, 2);
        assert_eq!(run_str(&["fleet", "nonesuch"]).unwrap_err().code, 2);
        assert_eq!(
            run_str(&["fleet", "ctrl", "--dispatch", "fifo"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["fleet", "ctrl", "--arrays", "0"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["fleet", "ctrl", "--write-budget", "0"])
                .unwrap_err()
                .code,
            2
        );
    }

    #[test]
    fn fleet_round_robin_dispatch() {
        let out = run_str(&[
            "fleet",
            "int2float",
            "--arrays",
            "3",
            "--jobs",
            "6",
            "--dispatch",
            "round-robin",
        ])
        .unwrap();
        assert!(out.contains("round-robin dispatch"), "{out}");
        // Round-robin over 3 arrays and 6 jobs: 2 jobs each.
        assert!(out.contains("array 2: 2 jobs"), "{out}");
    }

    #[test]
    fn compile_run_stats_pipeline() {
        // AND gate in BLIF → compile to a temp .plim → run → stats.
        let blif_path = write_temp("and.blif", ".inputs a b\n.outputs f\n.names a b f\n11 1\n");
        let plim_path = write_temp("and.plim", "");
        let out = run_str(&["compile", &blif_path, "-o", &plim_path, "--policy", "naive"]).unwrap();
        assert!(out.contains("wrote"), "{out}");

        let out = run_str(&["run", &plim_path, "--inputs", "11"]).unwrap();
        assert_eq!(out.trim(), "outputs: 1");
        let out = run_str(&["run", &plim_path, "--inputs", "10"]).unwrap();
        assert_eq!(out.trim(), "outputs: 0");

        let out = run_str(&["stats", &plim_path, "--wear-map"]).unwrap();
        assert!(out.contains("writes:"), "{out}");
        assert!(out.contains("crossbar"), "wear map expected: {out}");

        remove_temp(&blif_path);
        remove_temp(&plim_path);
    }

    #[test]
    fn run_checks_input_arity_and_bits() {
        let plim_path = write_temp(
            "arity.plim",
            ".cells 2\n.inputs r0\n.outputs r1\nRM3 0 1 r1\n",
        );
        assert_eq!(
            run_str(&["run", &plim_path, "--inputs", "101"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["run", &plim_path, "--inputs", "x"])
                .unwrap_err()
                .code,
            2
        );
        remove_temp(&plim_path);
    }

    #[test]
    fn compile_reports_blif_errors_with_location() {
        let path = write_temp("bad.blif", ".inputs a\n.outputs f\n.latch a f\n");
        let err = run_str(&["compile", &path]).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains(".latch"), "{err}");
        remove_temp(&path);
    }

    #[test]
    fn missing_file_is_an_operational_error() {
        let err = run_str(&["stats", "/nonexistent/x.plim"]).unwrap_err();
        assert_eq!(err.code, 1);
    }
}
