//! Implementation of the `rlim` command-line tool.
//!
//! The binary front end is a thin wrapper around [`run`]; everything —
//! argument parsing, command dispatch, output formatting — lives in the
//! library so it can be tested without spawning processes. The CLI is a
//! **thin client of [`rlim_service`]**: each compiling subcommand maps
//! its argv onto a [`JobSpec`], submits it to a [`Service`], and formats
//! the returned [`Report`].
//!
//! ```text
//! rlim compile <circuit.blif> [--policy P] [--max-writes W] [--effort N] [--peephole]
//!              [--copy-reuse] [-o prog.plim]
//! rlim report  <benchmark|circuit.blif> [--policy P] [--backend B] [--json]
//!              [--remote ADDR] …                     # --remote goes through a daemon
//! rlim run     <prog.plim> --inputs 1011…            # execute on the simulated crossbar
//! rlim stats   <prog.plim>                           # #I, #R, write distribution, wear map
//! rlim bench   <name> [--policy P] [--max-writes W]  # compile a built-in benchmark
//! rlim fleet   <name> [--arrays N] [--jobs J] [--dispatch D] [--write-budget W]
//! rlim serve   [--addr A] [--workers N] [--queue-depth D]   # run the rlimd daemon
//! rlim daemon  <addr> <metrics|healthz|shutdown>     # poke a running daemon
//! rlim list                                          # list built-in benchmarks
//! ```
//!
//! Policies: `naive`, `plim21`, `min-write`, `ea-rewriting`,
//! `endurance-aware` (default).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use rlim_benchmarks::Benchmark;
use rlim_compiler::{Backend, CompileOptions, Rm3Backend};
use rlim_plim::{asm, Program};
use rlim_rram::{WearMap, WriteStats};
use rlim_service::{BackendKind, ChaosSpec, Error, FleetSpec, JobSpec, Report, Service, Source};

/// A command-line failure: message for stderr plus the exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable explanation.
    pub message: String,
    /// Process exit code (2 = usage, 1 = operational).
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    fn run(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Service errors map onto the CLI's exit-code split: invalid requests
/// are usage errors (2), everything else is operational (1).
impl From<Error> for CliError {
    fn from(e: Error) -> Self {
        if e.is_usage() {
            CliError::usage(e.to_string())
        } else {
            CliError::run(e.to_string())
        }
    }
}

/// The reverse bridge, so service-level code can absorb CLI failures
/// without flattening their usage/operational distinction.
impl From<CliError> for Error {
    fn from(e: CliError) -> Self {
        if e.code == 2 {
            Error::InvalidRequest(e.message)
        } else {
            Error::Run(e.message)
        }
    }
}

/// Usage text printed on `--help` or argument errors.
pub const USAGE: &str = "\
rlim — endurance-aware logic-in-memory toolchain (DATE 2017 reproduction)

usage:
  rlim compile <circuit.blif> [--policy P] [--max-writes W] [--effort N] [--peephole]
               [--copy-reuse] [--esat] [-o out.plim]
  rlim report  <benchmark|circuit.blif> [--policy P] [--max-writes W] [--effort N]
               [--peephole] [--copy-reuse] [--esat] [--esat-nodes N] [--esat-iters N]
               [--backend B] [--arrays N] [--program] [--json] [--remote ADDR]
  rlim run     <prog.plim> --inputs <bits>
  rlim stats   <prog.plim> [--wear-map]
  rlim bench   <benchmark> [--policy P] [--max-writes W] [--effort N] [--peephole]
               [--copy-reuse] [--esat] [-o out.plim]
  rlim fleet   <benchmark> [--arrays N] [--jobs J] [--dispatch D] [--write-budget W]
               [--effort N] [--threads N] [--simd]
               [--chaos] [--fault-seed N] [--no-recovery]
  rlim serve   [--addr A] [--workers N] [--queue-depth D] [--cache-capacity C]
               [--watch-stdin]
  rlim daemon  <addr> <metrics|healthz|shutdown>
  rlim list

policies: naive | plim21 | min-write | ea-rewriting | endurance-aware (default)
backends: rm3 (default) | hosted-rm3 | rm3-wide | imp
dispatch: round-robin | least-worn (default)
--peephole runs the write-elision pass (never increases #I or any cell's writes)
--copy-reuse turns on copy discovery: the translator reads values already
        live in cells instead of re-materialising them, and keeps the reuse
        schedule only when it is no worse on #I, max writes and stdev
--esat runs equality saturation after the greedy rewriting fixed point: the Ω
        rules saturate an e-graph and the cheapest realization is extracted;
        the result is kept only when it is no worse on #I, max writes and
        stdev (--esat-nodes / --esat-iters bound the saturation)
--simd packs same-program fleet jobs into 64-lane word-level passes
--chaos injects seeded device faults (endurance variability + stuck-at cells);
        the fleet remaps broken cells to spares and retires faulty arrays,
        unless --no-recovery turns the healing off (first fault then aborts)
--json renders the report through the service's stable JSON schema
--remote submits the report job to a running `rlim serve` daemon instead of
        compiling in-process; repeat jobs come from the daemon's compile cache
        (`\"cached\": true` in --json output)
`rlim serve` prints `rlimd listening on <addr>` (with the OS-chosen port when
        --addr ends in :0) and runs until a shutdown request drains it
--watch-stdin additionally shuts the daemon down when stdin reaches EOF, so a
        supervisor can manage it through a pipe
";

/// Runs the tool on `args` (without the program name), returning the text
/// to print on stdout.
///
/// # Errors
///
/// Returns [`CliError`] with a usage or operational message.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("compile") => cmd_compile(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("daemon") => cmd_daemon(&args[1..]),
        Some("list") => Ok(cmd_list()),
        Some("--help") | Some("-h") | None => Ok(USAGE.to_string()),
        Some(other) => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

/// Parsed common options.
struct CommonOpts {
    policy: CompileOptions,
    output: Option<String>,
    positional: Vec<String>,
    inputs: Option<String>,
    wear_map: bool,
}

fn parse_common(args: &[String]) -> Result<CommonOpts, CliError> {
    let mut policy_name = "endurance-aware".to_string();
    let mut max_writes: Option<u64> = None;
    let mut effort: Option<usize> = None;
    let mut output = None;
    let mut positional = Vec::new();
    let mut inputs = None;
    let mut wear_map = false;
    let mut peephole = false;
    let mut copy_reuse = false;
    let mut esat = false;
    let mut esat_nodes: Option<u32> = None;
    let mut esat_iters: Option<u32> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--policy" => policy_name = value_of("--policy")?,
            "--max-writes" => {
                let v = value_of("--max-writes")?;
                max_writes = Some(
                    v.parse()
                        .map_err(|_| CliError::usage(format!("bad --max-writes `{v}`")))?,
                );
            }
            "--effort" => {
                let v = value_of("--effort")?;
                effort = Some(
                    v.parse()
                        .map_err(|_| CliError::usage(format!("bad --effort `{v}`")))?,
                );
            }
            "-o" | "--output" => output = Some(value_of("-o")?),
            "--inputs" => inputs = Some(value_of("--inputs")?),
            "--wear-map" => wear_map = true,
            "--peephole" => peephole = true,
            "--copy-reuse" => copy_reuse = true,
            "--esat" => esat = true,
            "--esat-nodes" => {
                let v = value_of("--esat-nodes")?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad --esat-nodes `{v}`")))?;
                if n == 0 {
                    return Err(CliError::usage("--esat-nodes must be positive"));
                }
                esat_nodes = Some(n);
            }
            "--esat-iters" => {
                let v = value_of("--esat-iters")?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad --esat-iters `{v}`")))?;
                if n == 0 {
                    return Err(CliError::usage("--esat-iters must be positive"));
                }
                esat_iters = Some(n);
            }
            other if other.starts_with('-') => {
                return Err(CliError::usage(format!("unknown flag `{other}`")));
            }
            other => positional.push(other.to_string()),
        }
    }

    let mut policy = parse_policy(&policy_name)?;
    if let Some(w) = max_writes {
        if w < 3 {
            return Err(CliError::usage("--max-writes must be at least 3"));
        }
        policy = policy.with_max_writes(w);
    }
    if let Some(e) = effort {
        policy = policy.with_effort(e);
    }
    if peephole {
        policy = policy.with_peephole(true);
    }
    if copy_reuse {
        policy = policy.with_copy_reuse(true);
    }
    if esat {
        policy = policy.with_esat(true);
    }
    if let Some(n) = esat_nodes {
        policy = policy.with_esat_nodes(n);
    }
    if let Some(n) = esat_iters {
        policy = policy.with_esat_iters(n);
    }
    Ok(CommonOpts {
        policy,
        output,
        positional,
        inputs,
        wear_map,
    })
}

/// Maps a `--policy` value onto its [`CompileOptions`] preset.
fn parse_policy(name: &str) -> Result<CompileOptions, CliError> {
    CompileOptions::preset(name).ok_or_else(|| {
        CliError::usage(format!(
            "unknown policy `{name}` (naive | plim21 | min-write | ea-rewriting | endurance-aware)"
        ))
    })
}

/// Renders the `compile`/`bench` output from a service [`Report`]: the
/// circuit interface, the headline metrics, then the program listing
/// (inline or written to `output`).
fn render_compiled(report: &Report, output: Option<&str>) -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} PI / {} PO / {} gates",
        report.label, report.circuit.inputs, report.circuit.outputs, report.circuit.gates
    );
    let _ = writeln!(
        out,
        "compiled: {} instructions, {} cells, writes min={} max={} stdev={:.2}",
        report.instructions,
        report.rrams,
        report.writes.min,
        report.writes.max,
        report.writes.stdev
    );
    let text = report.program.as_deref().expect("listing always requested");
    match output {
        Some(path) => {
            fs::write(path, text)
                .map_err(|e| CliError::run(format!("cannot write `{path}`: {e}")))?;
            let _ = writeln!(out, "wrote {path}");
        }
        None => out.push_str(text),
    }
    Ok(out)
}

fn cmd_compile(args: &[String]) -> Result<String, CliError> {
    let opts = parse_common(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err(CliError::usage("compile needs exactly one BLIF file"));
    };
    let spec = JobSpec::blif_path(path)
        .with_options(opts.policy)
        .with_program_text(true);
    let report = Service::new().run(&spec)?;
    render_compiled(&report, opts.output.as_deref())
}

fn cmd_bench(args: &[String]) -> Result<String, CliError> {
    let opts = parse_common(args)?;
    let [name] = opts.positional.as_slice() else {
        return Err(CliError::usage(
            "bench needs exactly one benchmark name (see `rlim list`)",
        ));
    };
    let spec = JobSpec::named_benchmark(name)
        .map_err(|e| CliError::usage(format!("{e}; see `rlim list`")))?
        .with_options(opts.policy)
        .with_program_text(true);
    let report = Service::new().run(&spec)?;
    render_compiled(&report, opts.output.as_deref())
}

/// Parses `rlim report` arguments (everything after the subcommand,
/// `--json` excluded) into a [`JobSpec`].
///
/// The positional argument is resolved as a benchmark name first and a
/// BLIF path otherwise. The compiler-configuration flags
/// (`--policy/--effort/--max-writes/--peephole`) are the shared
/// vocabulary of `parse_common`, so `report` can never drift from
/// `compile`/`bench`; `--backend` selects the flow, `--program`
/// includes the listing, and `--arrays` sets the lifetime projection's
/// fleet size. [`report_argv`] is the exact inverse on canonical specs.
///
/// # Errors
///
/// Returns a usage [`CliError`] for unknown flags or malformed values.
pub fn parse_report_spec(args: &[String]) -> Result<JobSpec, CliError> {
    // Split off the report-only flags, hand the rest to the shared
    // compile-options parser.
    let mut backend = BackendKind::Rm3;
    let mut program = false;
    let mut arrays: Option<usize> = None;
    let mut rest: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--backend" => {
                let v = value_of("--backend")?;
                backend = v.parse().map_err(CliError::usage)?;
            }
            "--arrays" => {
                let v = value_of("--arrays")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad --arrays `{v}`")))?;
                if n == 0 {
                    return Err(CliError::usage("--arrays must be positive"));
                }
                arrays = Some(n);
            }
            "--program" => program = true,
            other => rest.push(other.to_string()),
        }
    }
    let opts = parse_common(&rest)?;
    if opts.output.is_some() || opts.inputs.is_some() || opts.wear_map {
        return Err(CliError::usage(
            "report does not accept -o, --inputs or --wear-map",
        ));
    }
    let [source] = opts.positional.as_slice() else {
        return Err(CliError::usage(
            "report needs exactly one benchmark name or BLIF path",
        ));
    };

    let mut spec = JobSpec::named_benchmark(source).unwrap_or_else(|_| JobSpec::blif_path(source));
    spec = spec
        .with_backend(backend)
        .with_options(opts.policy)
        .with_program_text(program);
    if let Some(n) = arrays {
        spec = spec.with_projection_arrays(n);
    }
    Ok(spec)
}

/// The canonical `rlim` argv for a report spec — the inverse of
/// [`parse_report_spec`]: `parse_report_spec(&report_argv(spec)?[1..])`
/// reconstructs `spec` exactly. Defaults are omitted, so the argv is
/// minimal.
///
/// # Errors
///
/// Returns a usage [`CliError`] for specs the command line cannot
/// express: in-memory MIG sources, fleet riders, and option sets that
/// match no named policy preset.
pub fn report_argv(spec: &JobSpec) -> Result<Vec<String>, CliError> {
    let mut argv = vec!["report".to_string()];
    match spec.source() {
        Source::Benchmark(b) => argv.push(b.name().to_string()),
        Source::BlifPath(p) => argv.push(p.display().to_string()),
        Source::Mig(_) => {
            return Err(CliError::usage(
                "in-memory MIG sources have no command-line form",
            ));
        }
    }
    if spec.fleet().is_some() {
        return Err(CliError::usage(
            "fleet riders have no `report` command-line form (use `rlim fleet`)",
        ));
    }
    let options = spec.options();
    let preset_name = options
        .preset_name()
        .ok_or_else(|| CliError::usage("options match no named policy preset"))?;
    let preset = CompileOptions::preset(preset_name).expect("canonical name resolves");
    if preset_name != "endurance-aware" {
        argv.push("--policy".to_string());
        argv.push(preset_name.to_string());
    }
    if options.effort != preset.effort {
        argv.push("--effort".to_string());
        argv.push(options.effort.to_string());
    }
    if let Some(w) = options.max_writes {
        argv.push("--max-writes".to_string());
        argv.push(w.to_string());
    }
    if options.peephole {
        argv.push("--peephole".to_string());
    }
    if options.copy_reuse {
        argv.push("--copy-reuse".to_string());
    }
    if options.esat {
        argv.push("--esat".to_string());
    }
    if options.esat_nodes != rlim_compiler::DEFAULT_ESAT_NODES {
        argv.push("--esat-nodes".to_string());
        argv.push(options.esat_nodes.to_string());
    }
    if options.esat_iters != rlim_compiler::DEFAULT_ESAT_ITERS {
        argv.push("--esat-iters".to_string());
        argv.push(options.esat_iters.to_string());
    }
    if spec.backend() != BackendKind::Rm3 {
        argv.push("--backend".to_string());
        argv.push(spec.backend().name().to_string());
    }
    if spec.includes_program() {
        argv.push("--program".to_string());
    }
    if spec.projection_arrays() != rlim_service::DEFAULT_PROJECTION_ARRAYS {
        argv.push("--arrays".to_string());
        argv.push(spec.projection_arrays().to_string());
    }
    Ok(argv)
}

/// Renders a report as human-readable text (the `--json` alternative).
fn render_report_text(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} PI / {} PO / {} gates",
        report.label, report.circuit.inputs, report.circuit.outputs, report.circuit.gates
    );
    let policy = report.options.preset_name().unwrap_or("custom");
    let _ = writeln!(
        out,
        "backend {}, policy {}, effort {}{}{}{}{}",
        report.backend,
        policy,
        report.options.effort,
        match report.options.max_writes {
            Some(w) => format!(", max-writes {w}"),
            None => String::new(),
        },
        if report.options.peephole {
            ", peephole"
        } else {
            ""
        },
        if report.options.copy_reuse {
            ", copy-reuse"
        } else {
            ""
        },
        if report.options.esat { ", esat" } else { "" }
    );
    let _ = writeln!(
        out,
        "compiled: {} instructions, {} cells, writes min={} max={} stdev={:.2}",
        report.instructions,
        report.rrams,
        report.writes.min,
        report.writes.max,
        report.writes.stdev
    );
    let _ = writeln!(
        out,
        "lifetime: {} runs on one array, {} on a fleet of {} (endurance {} writes/cell)",
        report.lifetime.single_array_runs,
        report.lifetime.fleet_runs,
        report.lifetime.fleet_arrays,
        report.lifetime.endurance
    );
    if let Some(program) = &report.program {
        out.push_str(program);
    }
    out
}

/// `rlim report`: one job through the service — in-process, or through
/// a running `rlim serve` daemon with `--remote ADDR` — rendered as
/// text or as the stable JSON schema.
///
/// The two paths produce identical output for the same spec, except
/// that the daemon may answer from its compile cache (`"cached": true`
/// in the JSON rendering).
fn cmd_report(args: &[String]) -> Result<String, CliError> {
    let mut json = false;
    let mut remote: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--remote" => {
                remote = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError::usage("--remote needs a value"))?,
                );
            }
            other => rest.push(other.to_string()),
        }
    }
    let spec = parse_report_spec(&rest)?;
    let Some(addr) = remote else {
        let report = Service::new().run(&spec)?;
        return if json {
            Ok(report.to_json_string())
        } else {
            Ok(render_report_text(&report))
        };
    };
    let mut client = rlim_daemon::Client::connect(addr.as_str())?;
    match client.submit(&spec)? {
        rlim_daemon::Response::Report(line) => {
            if json {
                // Re-render the wire line pretty: the parser preserves
                // key order and float precision, so this matches the
                // in-process rendering byte for byte (modulo `cached`).
                let mut out = line.json.render();
                out.push('\n');
                Ok(out)
            } else {
                Ok(render_report_text(&line.decode()?))
            }
        }
        rlim_daemon::Response::Rejected {
            queue_depth,
            queue_capacity,
            message,
        } => Err(CliError::run(format!(
            "daemon rejected the job: {message} (queue {queue_depth}/{queue_capacity})"
        ))),
        rlim_daemon::Response::Error { message, usage } => Err(if usage {
            CliError::usage(message)
        } else {
            CliError::run(message)
        }),
        other => Err(CliError::run(format!(
            "daemon answered the job with an unrelated response: {other:?}"
        ))),
    }
}

/// `rlim serve`: run the `rlimd` compile-job daemon in the foreground.
///
/// Prints `rlimd listening on <addr>` (flushed, so wrappers can read
/// the OS-chosen port) as soon as the socket is bound, then blocks
/// until a `shutdown` request — or stdin EOF under `--watch-stdin` —
/// drains the queue. Returns a final one-line summary, so a graceful
/// shutdown exits 0.
fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let mut config = rlim_daemon::DaemonConfig::default();
    let mut watch_stdin = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
        };
        let parse = |flag: &str, v: String| -> Result<usize, CliError> {
            v.parse()
                .map_err(|_| CliError::usage(format!("bad {flag} `{v}`")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value_of("--addr")?,
            "--workers" => config.workers = parse("--workers", value_of("--workers")?)?,
            "--queue-depth" => {
                config.queue_depth = parse("--queue-depth", value_of("--queue-depth")?)?;
            }
            "--cache-capacity" => {
                config.cache_capacity = parse("--cache-capacity", value_of("--cache-capacity")?)?;
            }
            "--watch-stdin" => watch_stdin = true,
            other => {
                return Err(CliError::usage(format!("unknown serve argument `{other}`")));
            }
        }
    }
    if config.queue_depth == 0 {
        return Err(CliError::usage("--queue-depth must be positive"));
    }
    if config.cache_capacity == 0 {
        return Err(CliError::usage("--cache-capacity must be positive"));
    }
    let handle = rlim_daemon::serve(config)
        .map_err(|e| CliError::run(format!("cannot start daemon: {e}")))?;
    {
        use std::io::Write as _;
        let mut stdout = std::io::stdout();
        let _ = writeln!(stdout, "rlimd listening on {}", handle.addr());
        let _ = stdout.flush();
    }
    if watch_stdin {
        // The supervisor-pipe substitute for a SIGTERM handler: when
        // whoever holds our stdin closes it, drain and exit cleanly.
        let trigger = handle.trigger();
        std::thread::spawn(move || {
            use std::io::Read as _;
            let mut sink = Vec::new();
            let _ = std::io::stdin().lock().read_to_end(&mut sink);
            trigger.shutdown();
        });
    }
    let last = handle.join();
    Ok(format!(
        "rlimd drained: {} jobs served ({} failed, {} rejected), cache {} hits / {} misses\n",
        last.jobs_served, last.jobs_failed, last.jobs_rejected, last.cache.hits, last.cache.misses
    ))
}

/// `rlim daemon <addr> <verb>`: send one control verb to a running
/// daemon and print the raw response line (exactly what travelled on
/// the wire — handy for scripts and CI greps).
fn cmd_daemon(args: &[String]) -> Result<String, CliError> {
    let [addr, verb] = args else {
        return Err(CliError::usage(
            "daemon needs an address and a verb: rlim daemon <addr> <metrics|healthz|shutdown>",
        ));
    };
    let request = match verb.as_str() {
        "metrics" => rlim_daemon::Request::Metrics,
        "healthz" => rlim_daemon::Request::Healthz,
        "shutdown" => rlim_daemon::Request::Shutdown,
        other => {
            return Err(CliError::usage(format!(
                "unknown daemon verb `{other}` (metrics | healthz | shutdown)"
            )));
        }
    };
    let line = rlim_daemon::encode_request(&request)?;
    let mut client = rlim_daemon::Client::connect(addr.as_str())?;
    let reply = client.request_line(&line)?;
    Ok(format!("{reply}\n"))
}

/// `rlim fleet`: run an alternating heavy/light workload of a built-in
/// benchmark on a multi-crossbar fleet and report per-array wear.
fn cmd_fleet(args: &[String]) -> Result<String, CliError> {
    use rlim_plim::DispatchPolicy;

    let mut arrays = 4usize;
    let mut jobs = 24usize;
    let mut dispatch = DispatchPolicy::LeastWorn;
    let mut write_budget: Option<u64> = None;
    let mut simd = false;
    let mut chaos = false;
    let mut fault_seed: Option<u64> = None;
    let mut no_recovery = false;
    let mut effort = 5usize;
    let mut threads = std::env::var("RLIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut positional = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
        };
        let parse = |flag: &str, v: String| -> Result<usize, CliError> {
            v.parse()
                .map_err(|_| CliError::usage(format!("bad {flag} `{v}`")))
        };
        match arg.as_str() {
            "--arrays" => arrays = parse("--arrays", value_of("--arrays")?)?,
            "--jobs" => jobs = parse("--jobs", value_of("--jobs")?)?,
            "--effort" => effort = parse("--effort", value_of("--effort")?)?,
            "--threads" => threads = parse("--threads", value_of("--threads")?)?,
            "--dispatch" => {
                let v = value_of("--dispatch")?;
                dispatch = v.parse().map_err(CliError::usage)?;
            }
            "--write-budget" => {
                let v = value_of("--write-budget")?;
                let w: u64 = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad --write-budget `{v}`")))?;
                if w == 0 {
                    return Err(CliError::usage("--write-budget must be positive"));
                }
                write_budget = Some(w);
            }
            "--simd" => simd = true,
            "--chaos" => chaos = true,
            "--fault-seed" => {
                let v = value_of("--fault-seed")?;
                fault_seed = Some(
                    v.parse()
                        .map_err(|_| CliError::usage(format!("bad --fault-seed `{v}`")))?,
                );
            }
            "--no-recovery" => no_recovery = true,
            other if other.starts_with('-') => {
                return Err(CliError::usage(format!("unknown flag `{other}`")));
            }
            other => positional.push(other.to_string()),
        }
    }
    if arrays == 0 {
        return Err(CliError::usage("--arrays must be positive"));
    }
    if (fault_seed.is_some() || no_recovery) && !chaos {
        return Err(CliError::usage(
            "--fault-seed and --no-recovery require --chaos",
        ));
    }
    let [name] = positional.as_slice() else {
        return Err(CliError::usage(
            "fleet needs exactly one benchmark name (see `rlim list`)",
        ));
    };
    let mut fleet_spec = FleetSpec::new(arrays)
        .with_jobs(jobs)
        .with_dispatch(dispatch)
        .with_simd(simd);
    if let Some(w) = write_budget {
        fleet_spec = fleet_spec.with_write_budget(w);
    }
    if chaos {
        fleet_spec = fleet_spec
            .with_chaos(ChaosSpec::new(fault_seed.unwrap_or(0)).with_recovery(!no_recovery));
    }
    let spec = JobSpec::named_benchmark(name)
        .map_err(|e| CliError::usage(format!("{e}; see `rlim list`")))?
        .with_options(CompileOptions::endurance_aware().with_effort(effort))
        .with_fleet(fleet_spec);
    let report = Service::new()
        .with_threads(threads)
        .run(&spec)
        .map_err(|e| match e {
            Error::Fleet(e) => {
                let hint = if chaos && no_recovery {
                    "drop --no-recovery to let the fleet heal"
                } else {
                    "try more arrays or a larger --write-budget"
                };
                CliError::run(format!("fleet workload failed: {e} ({hint})"))
            }
            other => CliError::from(other),
        })?;
    let fleet = report.fleet.as_ref().expect("fleet rider requested");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name}: fleet of {arrays} arrays, {} dispatch{}, {} jobs (alternating naive / endurance-aware)",
        fleet.dispatch,
        if fleet.simd { " (simd)" } else { "" },
        fleet.jobs
    );
    let _ = writeln!(
        out,
        "job mix: naive #I={}, endurance-aware #I={}",
        fleet.heavy_instructions, fleet.light_instructions
    );
    for (i, array) in fleet.per_array.iter().enumerate() {
        let _ = writeln!(
            out,
            "array {i}: {} jobs, {} writes{}",
            array.jobs,
            array.writes,
            if array.retired { ", retired" } else { "" }
        );
    }
    let _ = writeln!(out, "fleet: {}", fleet.wear);
    if write_budget.is_some() {
        let _ = writeln!(
            out,
            "budget: {} arrays retired, capacity for {} more heavy jobs (first retirement within {})",
            fleet.retired,
            fleet.remaining_jobs.expect("budget configured"),
            fleet.first_retirement_horizon.expect("budget configured"),
        );
    }
    if let Some(fault) = &fleet.fault {
        let _ = writeln!(
            out,
            "chaos: seed {}, median endurance {:.0} writes (sigma {}), stuck probability {}",
            fault.seed, fault.endurance_median, fault.endurance_sigma, fault.stuck_probability
        );
        let _ = writeln!(
            out,
            "faults: {} detected ({} worn, {} stuck), {} remapped to spares, {} arrays retired",
            fault.faults, fault.worn, fault.stuck, fault.remaps, fault.retirements
        );
        for event in &fault.events {
            let _ = writeln!(out, "  {event}");
        }
    }
    Ok(out)
}

fn load_program(path: &str) -> Result<Program, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::run(format!("cannot read `{path}`: {e}")))?;
    let program = asm::parse_text(&text).map_err(|e| CliError::run(format!("{path}: {e}")))?;
    program
        .validate()
        .map_err(|e| CliError::run(format!("{path}: {}", Error::from(e))))?;
    Ok(program)
}

fn cmd_run(args: &[String]) -> Result<String, CliError> {
    let opts = parse_common(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err(CliError::usage("run needs exactly one .plim file"));
    };
    let program = load_program(path)?;
    let bits = opts
        .inputs
        .as_deref()
        .ok_or_else(|| CliError::usage("run needs --inputs <bits>"))?;
    let inputs: Vec<bool> = bits
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(CliError::usage(format!("bad input bit `{other}`"))),
        })
        .collect::<Result<_, _>>()?;
    if inputs.len() != program.input_cells.len() {
        return Err(CliError::usage(format!(
            "program has {} inputs, got {}",
            program.input_cells.len(),
            inputs.len()
        )));
    }
    let outputs = Rm3Backend
        .execute(&program, &inputs)
        .map_err(|e| CliError::run(e.to_string()))?;
    let rendered: String = outputs.iter().map(|&b| if b { '1' } else { '0' }).collect();
    Ok(format!("outputs: {rendered}\n"))
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let opts = parse_common(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err(CliError::usage("stats needs exactly one .plim file"));
    };
    let program = load_program(path)?;
    let counts = program.write_counts();
    let stats = WriteStats::from_counts(counts.iter().copied());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} instructions, {} cells, {} inputs, {} outputs",
        program.num_instructions(),
        program.num_rrams(),
        program.input_cells.len(),
        program.output_cells.len()
    );
    let _ = writeln!(
        out,
        "writes: min={} max={} mean={:.2} stdev={:.2}",
        stats.min, stats.max, stats.mean, stats.stdev
    );
    if opts.wear_map {
        let map = WearMap::square(counts);
        let _ = write!(out, "{map}");
    }
    Ok(out)
}

fn cmd_list() -> String {
    let mut out = String::from("built-in benchmarks (PI/PO, kind):\n");
    for &b in Benchmark::all() {
        let (pi, po) = b.interface();
        let kind = if b.is_exact() { "exact" } else { "synthetic" };
        let _ = writeln!(out, "  {:<11} {pi:>5}/{po:<5} {kind}", b.name());
    }
    out
}

/// Test helper: run with string literals.
#[doc(hidden)]
pub fn run_str(args: &[&str]) -> Result<String, CliError> {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run(&owned)
}

/// Writes `contents` to a temp file and returns its path (test support).
#[doc(hidden)]
pub fn write_temp(name: &str, contents: &str) -> String {
    let path = std::env::temp_dir().join(format!("rlim-cli-test-{}-{name}", std::process::id()));
    fs::write(&path, contents).expect("temp file writable");
    path.to_string_lossy().into_owned()
}

/// Removes a temp file created by [`write_temp`] (test support).
#[doc(hidden)]
pub fn remove_temp(path: &str) {
    let _ = fs::remove_file(Path::new(path));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown_command() {
        assert!(run_str(&["--help"]).unwrap().contains("usage:"));
        assert!(run_str(&[]).unwrap().contains("usage:"));
        let err = run_str(&["frobnicate"]).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn list_names_all_benchmarks() {
        let out = run_str(&["list"]).unwrap();
        for &b in Benchmark::all() {
            assert!(out.contains(b.name()), "missing {b}");
        }
    }

    #[test]
    fn bench_compiles_and_reports() {
        let out = run_str(&["bench", "int2float"]).unwrap();
        assert!(out.contains("11 PI / 7 PO"), "{out}");
        assert!(out.contains("compiled:"), "{out}");
        assert!(out.contains(".cells"), "inline assembly listing expected");
    }

    #[test]
    fn bench_peephole_never_reports_more_instructions() {
        let count = |out: &str| -> usize {
            let line = out.lines().find(|l| l.starts_with("compiled:")).unwrap();
            line.split_whitespace().nth(1).unwrap().parse().unwrap()
        };
        let off = run_str(&["bench", "ctrl", "--policy", "naive"]).unwrap();
        let on = run_str(&["bench", "ctrl", "--policy", "naive", "--peephole"]).unwrap();
        assert!(count(&on) <= count(&off), "peephole may only shrink #I");
    }

    #[test]
    fn bench_rejects_unknown_name_and_policy() {
        assert_eq!(run_str(&["bench", "nonesuch"]).unwrap_err().code, 2);
        assert_eq!(
            run_str(&["bench", "dec", "--policy", "yolo"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["bench", "dec", "--max-writes", "1"])
                .unwrap_err()
                .code,
            2
        );
    }

    #[test]
    fn fleet_reports_balanced_arrays() {
        let out = run_str(&["fleet", "ctrl", "--arrays", "2", "--jobs", "8"]).unwrap();
        assert!(out.contains("fleet of 2 arrays"), "{out}");
        assert!(out.contains("least-worn dispatch"), "{out}");
        assert!(out.contains("array 0:"), "{out}");
        assert!(out.contains("array 1:"), "{out}");
        assert!(out.contains("2 arrays, totals"), "{out}");
    }

    #[test]
    fn fleet_budget_reports_retirement() {
        // A budget that fits only a few ctrl executions per array.
        let out = run_str(&[
            "fleet",
            "ctrl",
            "--arrays",
            "2",
            "--jobs",
            "4",
            "--write-budget",
            "2000",
        ])
        .unwrap();
        assert!(out.contains("budget:"), "{out}");

        // An impossible budget exhausts the fleet: operational error.
        let err = run_str(&["fleet", "ctrl", "--jobs", "4", "--write-budget", "10"]).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("exhausted"), "{err}");
    }

    #[test]
    fn fleet_chaos_reports_the_fault_section() {
        let out = run_str(&["fleet", "ctrl", "--chaos", "--fault-seed", "7"]).unwrap();
        assert!(out.contains("chaos: seed 7"), "{out}");
        assert!(out.contains("faults:"), "{out}");
        // Deterministic: the same seed renders the same report.
        let again = run_str(&["fleet", "ctrl", "--chaos", "--fault-seed", "7"]).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn fleet_chaos_flags_require_each_other() {
        // --fault-seed / --no-recovery are chaos-mode modifiers.
        assert_eq!(
            run_str(&["fleet", "ctrl", "--fault-seed", "7"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["fleet", "ctrl", "--no-recovery"])
                .unwrap_err()
                .code,
            2
        );
        // Chaos needs per-write readback, which SIMD batches lack.
        assert_eq!(
            run_str(&["fleet", "ctrl", "--chaos", "--simd"])
                .unwrap_err()
                .code,
            2
        );
    }

    #[test]
    fn fleet_rejects_bad_flags() {
        assert_eq!(run_str(&["fleet"]).unwrap_err().code, 2);
        assert_eq!(run_str(&["fleet", "nonesuch"]).unwrap_err().code, 2);
        assert_eq!(
            run_str(&["fleet", "ctrl", "--dispatch", "fifo"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["fleet", "ctrl", "--arrays", "0"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["fleet", "ctrl", "--write-budget", "0"])
                .unwrap_err()
                .code,
            2
        );
    }

    #[test]
    fn fleet_round_robin_dispatch() {
        let out = run_str(&[
            "fleet",
            "int2float",
            "--arrays",
            "3",
            "--jobs",
            "6",
            "--dispatch",
            "round-robin",
        ])
        .unwrap();
        assert!(out.contains("round-robin dispatch"), "{out}");
        // Round-robin over 3 arrays and 6 jobs: 2 jobs each.
        assert!(out.contains("array 2: 2 jobs"), "{out}");
    }

    #[test]
    fn fleet_simd_flag_is_wear_neutral() {
        let base = &["fleet", "int2float", "--arrays", "3", "--jobs", "9"];
        let scalar = run_str(base).unwrap();
        let mut with_simd: Vec<&str> = base.to_vec();
        with_simd.push("--simd");
        let simd = run_str(&with_simd).unwrap();
        assert!(simd.contains("least-worn dispatch (simd)"), "{simd}");
        assert!(!scalar.contains("(simd)"), "{scalar}");
        // Identical dispatch and wear, line for line, below the header.
        assert_eq!(
            scalar.lines().skip(1).collect::<Vec<_>>(),
            simd.lines().skip(1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn compile_run_stats_pipeline() {
        // AND gate in BLIF → compile to a temp .plim → run → stats.
        let blif_path = write_temp("and.blif", ".inputs a b\n.outputs f\n.names a b f\n11 1\n");
        let plim_path = write_temp("and.plim", "");
        let out = run_str(&["compile", &blif_path, "-o", &plim_path, "--policy", "naive"]).unwrap();
        assert!(out.contains("wrote"), "{out}");

        let out = run_str(&["run", &plim_path, "--inputs", "11"]).unwrap();
        assert_eq!(out.trim(), "outputs: 1");
        let out = run_str(&["run", &plim_path, "--inputs", "10"]).unwrap();
        assert_eq!(out.trim(), "outputs: 0");

        let out = run_str(&["stats", &plim_path, "--wear-map"]).unwrap();
        assert!(out.contains("writes:"), "{out}");
        assert!(out.contains("crossbar"), "wear map expected: {out}");

        remove_temp(&blif_path);
        remove_temp(&plim_path);
    }

    #[test]
    fn run_checks_input_arity_and_bits() {
        let plim_path = write_temp(
            "arity.plim",
            ".cells 2\n.inputs r0\n.outputs r1\nRM3 0 1 r1\n",
        );
        assert_eq!(
            run_str(&["run", &plim_path, "--inputs", "101"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["run", &plim_path, "--inputs", "x"])
                .unwrap_err()
                .code,
            2
        );
        remove_temp(&plim_path);
    }

    #[test]
    fn compile_reports_blif_errors_with_location() {
        let path = write_temp("bad.blif", ".inputs a\n.outputs f\n.latch a f\n");
        let err = run_str(&["compile", &path]).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains(".latch"), "{err}");
        remove_temp(&path);
    }

    #[test]
    fn missing_file_is_an_operational_error() {
        let err = run_str(&["stats", "/nonexistent/x.plim"]).unwrap_err();
        assert_eq!(err.code, 1);
    }

    #[test]
    fn report_renders_text_and_json() {
        let text = run_str(&["report", "int2float", "--policy", "naive"]).unwrap();
        assert!(text.contains("11 PI / 7 PO"), "{text}");
        assert!(text.contains("policy naive"), "{text}");
        assert!(text.contains("lifetime:"), "{text}");

        let json = run_str(&["report", "int2float", "--policy", "naive", "--json"]).unwrap();
        assert!(json.starts_with("{\n  \"schema\": 6,"), "{json}");
        assert!(json.contains("\"label\": \"int2float\""), "{json}");
        assert!(json.contains("\"preset\": \"naive\""), "{json}");
        assert!(json.contains("\"cached\": false"), "{json}");
        assert!(json.ends_with("}\n"), "trailing newline expected");
    }

    #[test]
    fn report_esat_flag_reaches_the_policy_line() {
        let text = run_str(&["report", "int2float", "--esat", "--esat-iters", "2"]).unwrap();
        assert!(text.contains(", esat"), "{text}");
        let off = run_str(&["report", "int2float"]).unwrap();
        assert!(!off.contains("esat"), "{off}");

        let json = run_str(&[
            "report",
            "int2float",
            "--esat",
            "--esat-iters",
            "2",
            "--json",
        ])
        .unwrap();
        assert!(json.contains("\"esat\": true"), "{json}");
        assert!(json.contains("\"esat_iters\": 2"), "{json}");

        assert_eq!(
            run_str(&["report", "int2float", "--esat-nodes", "0"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["report", "int2float", "--esat-iters", "0"])
                .unwrap_err()
                .code,
            2
        );
    }

    #[test]
    fn report_copy_reuse_flag_reaches_the_policy_line() {
        let text = run_str(&["report", "int2float", "--copy-reuse"]).unwrap();
        assert!(text.contains(", copy-reuse"), "{text}");
        let off = run_str(&["report", "int2float"]).unwrap();
        assert!(!off.contains("copy-reuse"), "{off}");

        let json = run_str(&["report", "int2float", "--copy-reuse", "--json"]).unwrap();
        assert!(json.contains("\"copy_reuse\": true"), "{json}");
    }

    #[test]
    fn report_remote_goes_through_a_daemon() {
        let handle = rlim_daemon::serve(rlim_daemon::DaemonConfig {
            workers: 2,
            ..Default::default()
        })
        .unwrap();
        let addr = handle.addr().to_string();

        let local = run_str(&["report", "ctrl", "--policy", "naive", "--json"]).unwrap();
        let first = run_str(&[
            "report", "ctrl", "--policy", "naive", "--json", "--remote", &addr,
        ])
        .unwrap();
        let second = run_str(&[
            "report", "ctrl", "--policy", "naive", "--json", "--remote", &addr,
        ])
        .unwrap();
        // First remote answer is a compile, byte-identical to the local
        // rendering; the repeat is the same bytes from the cache, modulo
        // the flipped `cached` line.
        assert_eq!(first, local);
        assert!(first.contains("\"cached\": false"), "{first}");
        assert!(second.contains("\"cached\": true"), "{second}");
        assert_eq!(
            first.replace("\"cached\": false", "\"cached\": true"),
            second
        );
        // The text rendering decodes the same wire line.
        let text = run_str(&["report", "ctrl", "--policy", "naive", "--remote", &addr]).unwrap();
        assert_eq!(
            text,
            run_str(&["report", "ctrl", "--policy", "naive"]).unwrap()
        );

        // Three jobs went through: one compile, two cache hits.
        let metrics = run_str(&["daemon", &addr, "metrics"]).unwrap();
        assert!(metrics.contains("\"hits\":2,\"misses\":1"), "{metrics}");
        let healthz = run_str(&["daemon", &addr, "healthz"]).unwrap();
        assert!(healthz.contains("\"accepting\":true"), "{healthz}");

        let bye = run_str(&["daemon", &addr, "shutdown"]).unwrap();
        assert!(bye.contains("\"draining\":true"), "{bye}");
        handle.join();
        // The socket now refuses connections: remote jobs fail cleanly.
        let err = run_str(&["report", "ctrl", "--remote", &addr]).unwrap_err();
        assert_eq!(err.code, 1);

        assert_eq!(run_str(&["daemon", &addr]).unwrap_err().code, 2);
        assert_eq!(run_str(&["daemon", &addr, "reboot"]).unwrap_err().code, 2);
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert_eq!(
            run_str(&["serve", "--queue-depth", "0"]).unwrap_err().code,
            2
        );
        assert_eq!(
            run_str(&["serve", "--cache-capacity", "0"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(run_str(&["serve", "extra"]).unwrap_err().code, 2);
        assert_eq!(run_str(&["serve", "--workers", "two"]).unwrap_err().code, 2);
    }

    #[test]
    fn report_accepts_blif_paths_and_backends() {
        let blif_path = write_temp("rep.blif", ".inputs a b\n.outputs f\n.names a b f\n11 1\n");
        let out = run_str(&[
            "report",
            &blif_path,
            "--policy",
            "naive",
            "--backend",
            "imp",
        ])
        .unwrap();
        assert!(out.contains("backend imp"), "{out}");
        remove_temp(&blif_path);
    }

    #[test]
    fn report_rejects_bad_flags() {
        assert_eq!(run_str(&["report"]).unwrap_err().code, 2);
        assert_eq!(
            run_str(&["report", "div", "--backend", "riscv"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["report", "div", "--arrays", "0"])
                .unwrap_err()
                .code,
            2
        );
        // An unknown benchmark falls back to a BLIF path, which is an
        // operational (file) error, not a usage one.
        assert_eq!(run_str(&["report", "nonesuch"]).unwrap_err().code, 1);
    }

    #[test]
    fn report_argv_is_the_parse_inverse() {
        let spec = parse_report_spec(&[
            "div".to_string(),
            "--policy".to_string(),
            "min-write".to_string(),
            "--effort".to_string(),
            "3".to_string(),
            "--peephole".to_string(),
            "--copy-reuse".to_string(),
            "--esat".to_string(),
            "--esat-nodes".to_string(),
            "9000".to_string(),
            "--program".to_string(),
        ])
        .unwrap();
        let argv = report_argv(&spec).unwrap();
        assert_eq!(argv[0], "report");
        let back = parse_report_spec(&argv[1..]).unwrap();
        assert_eq!(back, spec);
        // Defaults produce the minimal argv.
        let plain = parse_report_spec(&["div".to_string()]).unwrap();
        assert_eq!(report_argv(&plain).unwrap(), vec!["report", "div"]);
    }

    #[test]
    fn error_bridges_preserve_the_exit_code_split() {
        let usage: CliError = Error::InvalidRequest("bad".into()).into();
        assert_eq!(usage.code, 2);
        let run: CliError = Error::Run("boom".into()).into();
        assert_eq!(run.code, 1);
        let back: Error = CliError::usage("x").into();
        assert!(back.is_usage());
        let back: Error = CliError::run("y").into();
        assert!(!back.is_usage());
    }
}
