//! # rlim-testkit — cross-backend differential verification
//!
//! The load-bearing invariant of the whole reproduction is that every
//! backend computes the same Boolean function as the source
//! Majority-Inverter Graph:
//!
//! * direct MIG evaluation (the golden model),
//! * the compiled RM3 program executed on the external machine
//!   ([`Rm3Backend`]),
//! * optionally the same program self-hosted in the crossbar and driven by
//!   the controller FSM ([`HostedRm3Backend`]),
//! * the same program executed bit-parallel on the word-level machine,
//!   64 input patterns per pass, including the wear-equivalence
//!   invariant: per-cell logical write counts must equal `lanes ×` the
//!   scalar machine's per-run counts,
//! * the IMPLY baseline synthesised through
//!   [`ImpBackend`].
//!
//! This crate machine-checks that invariant with two oracles:
//!
//! * an **exhaustive truth-table oracle** for circuits with at most
//!   [`Oracle::exhaustive_limit`] primary inputs (default
//!   [`DEFAULT_EXHAUSTIVE_LIMIT`]) — every one of the `2^n` input patterns
//!   is driven through every backend;
//! * a **seeded-RNG sampling oracle** above that limit — deterministic,
//!   reproducible rounds of random patterns (always including the all-zero
//!   and all-one patterns).
//!
//! The rewritten MIG inside every [`CompileResult`] is additionally checked
//! against the source graph, exhaustively (64-way bit-parallel) when small
//! enough and by random simulation otherwise.
//!
//! ## Example
//!
//! ```
//! use rlim_benchmarks::Benchmark;
//! use rlim_testkit::Oracle;
//!
//! // `ctrl` has 7 inputs: all 128 patterns × every compiler preset ×
//! // every backend.
//! let report = Oracle::new().verify(&Benchmark::Ctrl.build(), "ctrl");
//! assert!(report.exhaustive);
//! assert_eq!(report.patterns, 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parallel;

use std::fmt;

use rlim_compiler::{
    compile, Backend, CompileOptions, CompileResult, HostedRm3Backend, ImpBackend, Rm3Backend,
};
use rlim_isa::Program as IsaProgram;
use rlim_mig::{equiv_random, Mig};
use rlim_plim::{run_once, run_once_wide, Program};
use rlim_rram::WideCrossbar;

/// Largest input count that is verified exhaustively by default.
///
/// The issue's bar is "exhaustive for ≤ 10 inputs"; 11 keeps the historic
/// `int2float` (11 PI, 2048 patterns) exhaustive as well, at negligible
/// cost.
pub const DEFAULT_EXHAUSTIVE_LIMIT: usize = 11;

/// Default number of sampled patterns for circuits above the limit.
pub const DEFAULT_SAMPLE_ROUNDS: usize = 24;

/// The canonical compiler configurations: every `CompileOptions` preset
/// constructor (the paper's Table I columns) plus two maximum-write
/// budgets (Table III), two peephole variants and two copy-reuse
/// variants, under their conventional labels.
pub fn presets() -> Vec<(&'static str, CompileOptions)> {
    vec![
        ("naive", CompileOptions::naive()),
        ("plim_compiler", CompileOptions::plim_compiler()),
        ("min_write", CompileOptions::min_write()),
        ("endurance_rewriting", CompileOptions::endurance_rewriting()),
        ("endurance_aware", CompileOptions::endurance_aware()),
        (
            "max_write_10",
            CompileOptions::endurance_aware().with_max_writes(10),
        ),
        (
            "max_write_3",
            CompileOptions::endurance_aware().with_max_writes(3),
        ),
        (
            "naive_peephole",
            CompileOptions::naive().with_peephole(true),
        ),
        (
            "endurance_aware_peephole",
            CompileOptions::endurance_aware().with_peephole(true),
        ),
        (
            "copy_reuse",
            CompileOptions::endurance_aware().with_copy_reuse(true),
        ),
        (
            "copy_reuse_peephole",
            CompileOptions::endurance_aware()
                .with_copy_reuse(true)
                .with_peephole(true),
        ),
    ]
}

/// How a circuit's input space was covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// All `2^n` patterns were driven.
    Exhaustive {
        /// Number of patterns (`2^n`).
        patterns: usize,
    },
    /// A deterministic random sample was driven.
    Sampled {
        /// Number of sampled patterns.
        rounds: usize,
        /// Seed the sample derives from.
        seed: u64,
    },
}

/// What one oracle run proved; returned so suites can assert on scope.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Circuit label used in failure messages.
    pub name: String,
    /// Whether the truth table was covered exhaustively.
    pub exhaustive: bool,
    /// Input patterns driven through each backend.
    pub patterns: usize,
    /// Compiler presets verified.
    pub presets: usize,
    /// Individual output-vector comparisons performed.
    pub comparisons: usize,
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} over {} patterns x {} presets ({} comparisons)",
            self.name,
            if self.exhaustive {
                "exhaustive"
            } else {
                "sampled"
            },
            self.patterns,
            self.presets,
            self.comparisons
        )
    }
}

/// The differential verification oracle. Construct with [`Oracle::new`],
/// tune with the builder methods, then call [`Oracle::verify`] (panics on
/// the first divergence, like an assertion).
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Inputs at or below this count get the exhaustive oracle.
    pub exhaustive_limit: usize,
    /// Patterns per circuit for the sampling oracle.
    pub sample_rounds: usize,
    /// Base seed for the sampling oracle.
    pub seed: u64,
    /// Also execute each compiled program through the self-hosted
    /// controller backend (slower; off by default).
    pub hosted: bool,
    /// Also synthesise and check the IMPLY baseline (both allocation
    /// policies; on by default).
    pub imp: bool,
    /// Also execute each compiled RM3 program on the word-level
    /// bit-parallel machine, 64 patterns per pass, and check per-cell
    /// logical write counts against the scalar machine (on by default).
    pub wide: bool,
    /// Worker threads for the preset × backend matrix: `0` = one per
    /// available core (the default), `1` = serial.
    pub threads: usize,
}

impl Default for Oracle {
    fn default() -> Self {
        Self {
            exhaustive_limit: DEFAULT_EXHAUSTIVE_LIMIT,
            sample_rounds: DEFAULT_SAMPLE_ROUNDS,
            seed: 0x0DA7_E201_7EAD_BEEF,
            hosted: false,
            imp: true,
            wide: true,
            threads: 0,
        }
    }
}

impl Oracle {
    /// The default oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the exhaustive-coverage input limit.
    pub fn with_exhaustive_limit(mut self, limit: usize) -> Self {
        self.exhaustive_limit = limit;
        self
    }

    /// Sets the number of sampled patterns above the limit.
    pub fn with_sample_rounds(mut self, rounds: usize) -> Self {
        self.sample_rounds = rounds;
        self
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the self-hosted controller backend.
    pub fn with_hosted(mut self, hosted: bool) -> Self {
        self.hosted = hosted;
        self
    }

    /// Enables or disables the IMPLY baseline backend.
    pub fn with_imp(mut self, imp: bool) -> Self {
        self.imp = imp;
        self
    }

    /// Enables or disables the word-level bit-parallel check.
    pub fn with_wide(mut self, wide: bool) -> Self {
        self.wide = wide;
        self
    }

    /// Sets the worker-thread count for the preset × backend matrix
    /// (`0` = one per core, `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The coverage [`Oracle::verify`] will use for an `n`-input circuit.
    pub fn coverage(&self, num_inputs: usize) -> Coverage {
        if num_inputs <= self.exhaustive_limit {
            Coverage::Exhaustive {
                patterns: 1usize << num_inputs,
            }
        } else {
            Coverage::Sampled {
                rounds: self.sample_rounds,
                seed: self.seed,
            }
        }
    }

    /// Materialises the input patterns for an `n`-input circuit.
    pub fn inputs(&self, num_inputs: usize) -> Vec<Vec<bool>> {
        match self.coverage(num_inputs) {
            Coverage::Exhaustive { patterns } => (0..patterns)
                .map(|p| (0..num_inputs).map(|i| (p >> i) & 1 == 1).collect())
                .collect(),
            Coverage::Sampled { rounds, seed } => sampled_inputs(num_inputs, rounds, seed),
        }
    }

    /// Differentially verifies `mig` against every backend under every
    /// compiler preset — all through the shared [`Backend`] API —
    /// distributing the preset ×
    /// backend matrix across scoped worker threads ([`Oracle::threads`]; a
    /// divergence found on any worker propagates when the scope joins).
    /// The report is independent of the thread count: every job runs
    /// either way and the comparison count is an order-insensitive sum.
    /// Panics with a labelled message on the first divergence; returns
    /// what was covered on success.
    pub fn verify(&self, mig: &Mig, name: &str) -> VerifyReport {
        let inputs = self.inputs(mig.num_inputs());
        let reference: Vec<Vec<bool>> = inputs.iter().map(|v| mig.evaluate(v)).collect();
        let preset_list = presets();

        // The IMP baseline's two allocation policies, expressed in the
        // shared options space (no rewriting, like the paper's §II
        // comparison).
        let imp_configs: &[(&str, CompileOptions)] = &[
            ("imp_lifo", CompileOptions::naive()),
            (
                "imp_min_write",
                CompileOptions {
                    allocation: rlim_compiler::Allocation::MinWrite,
                    ..CompileOptions::naive()
                },
            ),
        ];
        let num_jobs = preset_list.len() + if self.imp { imp_configs.len() } else { 0 };
        let comparisons = parallel_sum(num_jobs, self.threads, |job| {
            if let Some((label, options)) = preset_list.get(job) {
                // The RM3 pipeline is compiled once per preset; its program
                // is shared between the external and the self-hosted
                // backend (which compile identically by construction).
                let result = compile(mig, options);
                self.check_rewrite(mig, name, label, &result);
                let mut n = self.check_backend(
                    &Rm3Backend,
                    name,
                    label,
                    &result.program,
                    &inputs,
                    &reference,
                );
                if self.hosted {
                    n += self.check_backend(
                        &HostedRm3Backend,
                        name,
                        label,
                        &result.program,
                        &inputs,
                        &reference,
                    );
                }
                if self.wide {
                    n += self.check_wide(name, label, &result.program, &inputs, &reference);
                }
                n
            } else {
                let (label, options) = &imp_configs[job - preset_list.len()];
                let program = ImpBackend.compile(mig, options);
                self.check_backend(&ImpBackend, name, label, &program, &inputs, &reference)
            }
        });

        VerifyReport {
            name: name.to_owned(),
            exhaustive: matches!(self.coverage(mig.num_inputs()), Coverage::Exhaustive { .. }),
            patterns: inputs.len(),
            presets: preset_list.len(),
            comparisons,
        }
    }

    /// Verifies a single compiled program against the golden model over
    /// this oracle's input coverage (used for programs that went through
    /// extra stages, e.g. assembly or BLIF round trips).
    pub fn verify_program(&self, mig: &Mig, name: &str, label: &str, program: &Program) -> usize {
        let inputs = self.inputs(mig.num_inputs());
        let reference: Vec<Vec<bool>> = inputs.iter().map(|v| mig.evaluate(v)).collect();
        self.check_backend(&Rm3Backend, name, label, program, &inputs, &reference)
    }

    /// Checks that the rewritten MIG inside a [`CompileResult`] is
    /// equivalent to the source graph.
    fn check_rewrite(&self, mig: &Mig, name: &str, label: &str, result: &CompileResult) {
        if mig.num_inputs() <= self.exhaustive_limit {
            if let Some(pattern) = equiv_exhaustive(mig, &result.mig) {
                panic!(
                    "{name}/{label}: rewriting changed the function \
                     (first divergence at pattern {pattern})"
                );
            }
        } else {
            let check = equiv_random(mig, &result.mig, 8, self.seed ^ fnv1a(label));
            assert!(
                check.is_equal(),
                "{name}/{label}: rewriting changed the function: {check:?}"
            );
        }
    }

    /// Executes the compiled RM3 program on the word-level bit-parallel
    /// machine, packing up to 64 input patterns into each pass, and
    /// checks (a) that every lane reproduces the golden model and
    /// (b) the wear-equivalence invariant of the word-level backend:
    /// per-cell *logical* write counts after a `lanes`-wide pass equal
    /// exactly `lanes ×` the scalar machine's per-run counts. The scalar
    /// baseline is input-independent — every RM3 instruction writes its
    /// destination exactly once regardless of data — so a single scalar
    /// run anchors every chunk.
    fn check_wide(
        &self,
        name: &str,
        label: &str,
        program: &Program,
        inputs: &[Vec<bool>],
        reference: &[Vec<bool>],
    ) -> usize {
        let (_, scalar_counts) = run_once(program, &inputs[0]);
        let mut comparisons = 0;
        for (chunk_index, chunk) in inputs.chunks(WideCrossbar::LANES).enumerate() {
            let lane_inputs: Vec<&[bool]> = chunk.iter().map(Vec::as_slice).collect();
            let (outputs, wide_counts) = run_once_wide(program, &lane_inputs);
            let base = chunk_index * WideCrossbar::LANES;
            for (k, got) in outputs.iter().enumerate() {
                assert_eq!(
                    got,
                    &reference[base + k],
                    "{name}/{label}: rm3-wide lane {k} diverges from MIG at pattern {}",
                    base + k
                );
                comparisons += 1;
            }
            assert_eq!(
                wide_counts.len(),
                scalar_counts.len(),
                "{name}/{label}: rm3-wide array size diverges from scalar"
            );
            for (cell, (&wide, &scalar)) in wide_counts.iter().zip(&scalar_counts).enumerate() {
                assert_eq!(
                    wide,
                    chunk.len() as u64 * scalar,
                    "{name}/{label}: cell {cell} wear diverges: a {}-lane word pass \
                     must cost exactly lanes x the scalar per-run writes",
                    chunk.len()
                );
            }
        }
        comparisons
    }

    /// Validates `program` and runs it through `backend` for every
    /// pattern, comparing against `reference` — the single per-backend
    /// check behind the whole matrix.
    fn check_backend<B: Backend>(
        &self,
        backend: &B,
        name: &str,
        label: &str,
        program: &IsaProgram<B::Instr>,
        inputs: &[Vec<bool>],
        reference: &[Vec<bool>],
    ) -> usize {
        program
            .validate()
            .unwrap_or_else(|e| panic!("{name}/{label}: invalid {} program: {e}", B::NAME));
        let mut comparisons = 0;
        for (pattern, (input, expect)) in inputs.iter().zip(reference).enumerate() {
            let got = backend
                .execute(program, input)
                .unwrap_or_else(|e| panic!("{name}/{label}: {} endurance error: {e}", B::NAME));
            assert_eq!(
                &got,
                expect,
                "{name}/{label}: {} backend diverges from MIG at pattern {pattern}",
                B::NAME
            );
            comparisons += 1;
        }
        comparisons
    }
}

/// Runs `f(0..jobs)` across the shared worker pool and sums the results
/// (an order-insensitive reduction, so the outcome is independent of the
/// thread count).
fn parallel_sum<F>(jobs: usize, threads: usize, f: F) -> usize
where
    F: Fn(usize) -> usize + Sync,
{
    parallel::parallel_map((0..jobs).collect(), threads, f)
        .into_iter()
        .sum()
}

/// Exhaustive 64-way bit-parallel equivalence check between two MIGs with
/// identical interfaces. Returns the first diverging pattern index, or
/// `None` when the graphs agree on all `2^n` patterns.
///
/// Patterns are packed 64 to a simulation word, so even the 2048-pattern
/// `int2float` table costs only 32 simulation sweeps.
pub fn equiv_exhaustive(a: &Mig, b: &Mig) -> Option<usize> {
    assert_eq!(a.num_inputs(), b.num_inputs(), "interface mismatch");
    assert_eq!(a.num_outputs(), b.num_outputs(), "interface mismatch");
    let n = a.num_inputs();
    assert!(
        n < usize::BITS as usize,
        "exhaustive check needs n < 64-ish"
    );
    let total: usize = 1 << n;
    let mut base = 0usize;
    while base < total {
        let lanes = (total - base).min(64);
        // Lane k simulates pattern `base + k`: input word i holds bit i of
        // each lane's pattern index.
        let words: Vec<u64> = (0..n)
            .map(|i| (0..lanes).fold(0u64, |w, k| w | ((((base + k) >> i) & 1) as u64) << k))
            .collect();
        let oa = a.simulate(&words);
        let ob = b.simulate(&words);
        let mask = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        for (wa, wb) in oa.iter().zip(&ob) {
            let diff = (wa ^ wb) & mask;
            if diff != 0 {
                return Some(base + diff.trailing_zeros() as usize);
            }
        }
        base += lanes;
    }
    None
}

/// Deterministic sampled input patterns: the all-zero and all-one vectors
/// first, then seeded random vectors.
pub fn sampled_inputs(num_inputs: usize, rounds: usize, seed: u64) -> Vec<Vec<bool>> {
    use rand::{Rng, SeedableRng};
    let mut rng =
        rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ (num_inputs as u64).rotate_left(32));
    let mut out = Vec::with_capacity(rounds);
    if rounds > 0 {
        out.push(vec![false; num_inputs]);
    }
    if rounds > 1 {
        out.push(vec![true; num_inputs]);
    }
    while out.len() < rounds {
        out.push((0..num_inputs).map(|_| rng.gen()).collect());
    }
    out
}

/// FNV-1a, for decorrelating per-label seeds.
fn fnv1a(data: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in data.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor3() -> Mig {
        let mut mig = Mig::new(3);
        let [a, b, c] = [mig.input(0), mig.input(1), mig.input(2)];
        let x = mig.xor(a, b);
        let f = mig.xor(x, c);
        mig.add_output(f);
        mig
    }

    #[test]
    fn coverage_switches_at_the_limit() {
        let oracle = Oracle::new();
        assert_eq!(
            oracle.coverage(DEFAULT_EXHAUSTIVE_LIMIT),
            Coverage::Exhaustive {
                patterns: 1 << DEFAULT_EXHAUSTIVE_LIMIT
            }
        );
        assert!(matches!(
            oracle.coverage(DEFAULT_EXHAUSTIVE_LIMIT + 1),
            Coverage::Sampled { .. }
        ));
    }

    #[test]
    fn exhaustive_inputs_enumerate_every_pattern() {
        let inputs = Oracle::new().inputs(4);
        assert_eq!(inputs.len(), 16);
        let as_ints: Vec<usize> = inputs
            .iter()
            .map(|v| v.iter().enumerate().map(|(i, &b)| (b as usize) << i).sum())
            .collect();
        assert_eq!(as_ints, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn sampled_inputs_are_deterministic_and_include_extremes() {
        let a = sampled_inputs(20, 8, 42);
        let b = sampled_inputs(20, 8, 42);
        let c = sampled_inputs(20, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a[0], vec![false; 20]);
        assert_eq!(a[1], vec![true; 20]);
    }

    #[test]
    fn equiv_exhaustive_agrees_and_finds_divergence() {
        let mig = xor3();
        assert_eq!(equiv_exhaustive(&mig, &mig), None);

        // A graph with the same interface but a different function: the
        // first divergence from xor3 must be reported at pattern 1.
        let mut other = Mig::new(3);
        let [a, b, c] = [other.input(0), other.input(1), other.input(2)];
        let m = other.add_maj(a, b, c);
        other.add_output(m);
        assert_eq!(equiv_exhaustive(&mig, &other), Some(1));
    }

    #[test]
    fn oracle_verifies_a_tiny_circuit_across_all_backends() {
        let report = Oracle::new().with_hosted(true).verify(&xor3(), "xor3");
        assert!(report.exhaustive);
        assert_eq!(report.patterns, 8);
        assert_eq!(report.presets, presets().len());
        // RM3 + hosted + word-level per preset per pattern, plus two IMP
        // allocations.
        assert_eq!(report.comparisons, 8 * (3 * report.presets + 2));
    }

    /// The word-level check is on by default and contributes exactly one
    /// lane comparison per pattern per preset; disabling it removes
    /// precisely that share of the matrix.
    #[test]
    fn wide_check_rides_along_per_preset() {
        let with = Oracle::new().verify(&xor3(), "xor3");
        let without = Oracle::new().with_wide(false).verify(&xor3(), "xor3");
        assert_eq!(
            with.comparisons - without.comparisons,
            with.patterns * with.presets
        );
    }

    /// Satellite determinism requirement: the parallel preset × backend
    /// matrix reports exactly what a forced single-thread run reports.
    #[test]
    fn parallel_verify_matches_single_thread() {
        let mig = xor3();
        let serial = Oracle::new().with_threads(1).verify(&mig, "xor3");
        let parallel = Oracle::new().with_threads(4).verify(&mig, "xor3");
        assert_eq!(serial.exhaustive, parallel.exhaustive);
        assert_eq!(serial.patterns, parallel.patterns);
        assert_eq!(serial.presets, parallel.presets);
        assert_eq!(serial.comparisons, parallel.comparisons);
    }

    /// The reduction behind `Oracle::verify`'s preset matrix must not
    /// swallow worker panics: a divergence assertion raised on any job
    /// has to reach the caller.
    #[test]
    fn parallel_sum_propagates_job_panics() {
        let result = std::panic::catch_unwind(|| {
            parallel_sum(6, 3, |i| {
                assert_ne!(i, 4, "synthetic divergence");
                1
            })
        });
        assert!(result.is_err(), "job panic must propagate");
        assert_eq!(parallel_sum(6, 3, |_| 2), 12);
    }

    #[test]
    fn divergent_program_panics() {
        // A program computing a different function than the golden MIG
        // must trip the oracle's assertion.
        let mig = xor3();
        let mut other = Mig::new(3);
        let [a, b, c] = [other.input(0), other.input(1), other.input(2)];
        let m = other.add_maj(a, b, c);
        other.add_output(m);
        let program = compile(&other, &rlim_compiler::CompileOptions::naive()).program;
        let result = std::panic::catch_unwind(|| {
            Oracle::new().verify_program(&mig, "xor3", "tampered", &program)
        });
        assert!(result.is_err(), "divergent program must panic");
    }
}
