//! Scoped worker-pool helpers shared by the parallel evaluation sweeps.
//!
//! One policy, defined once: `threads == 0` means one worker per
//! available core, the worker count never exceeds the job count, results
//! come back in input order regardless of scheduling, and a panicking job
//! propagates to the caller when the scope joins. The differential
//! oracle's preset matrix ([`crate::Oracle::verify`]) and `rlim-eval`'s
//! benchmark × preset matrices all run on this pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a requested worker count: `0` means one per available core,
/// and the count never exceeds the number of jobs.
pub fn resolve_threads(requested: usize, jobs: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        requested
    };
    t.clamp(1, jobs.max(1))
}

/// Applies `f` to every job on a scoped worker pool, returning results in
/// input order regardless of scheduling. `threads == 0` uses one worker
/// per core; a worker panic propagates when the scope joins.
pub fn parallel_map<T, R, F>(jobs: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = resolve_threads(threads, jobs.len());
    if threads <= 1 {
        return jobs.into_iter().map(f).collect();
    }
    let jobs: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    return;
                }
                let job = jobs[i].lock().expect("job lock").take().expect("job taken");
                let result = f(job);
                *results[i].lock().expect("result lock") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.into_inner().expect("no poisoned lock").expect("job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order_at_any_thread_count() {
        let jobs: Vec<usize> = (0..57).collect();
        let expect: Vec<usize> = jobs.iter().map(|i| i * i).collect();
        for threads in [0, 1, 3, 16] {
            assert_eq!(
                parallel_map(jobs.clone(), threads, |i| i * i),
                expect,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(vec![1usize, 2, 3], 2, |i| {
                assert_ne!(i, 2, "boom");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn thread_resolution_clamps() {
        assert_eq!(resolve_threads(8, 3), 3);
        assert_eq!(resolve_threads(1, 100), 1);
        assert_eq!(resolve_threads(0, 0), 1);
        assert!(resolve_threads(0, 64) >= 1);
    }
}
