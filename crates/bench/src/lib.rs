//! Criterion benchmark crate; see benches/.

#![warn(missing_docs)]
