//! Benchmark support for the rlim workspace.
//!
//! The Criterion micro-benchmarks live under `benches/`; the wall-clock
//! harness is `src/bin/bench_compile.rs`. This library holds the pieces
//! the harness shares with the workspace test suite:
//!
//! * [`db`] — the append-only bench database (`BENCH_db.json`): one
//!   fleet-throughput record per run, with a regression gate against the
//!   last committed record.
//! * [`baseline_totals`] / [`speedup_vs_prev_commit`] — parsing of a
//!   previously **committed** `BENCH_compile.json` and the per-benchmark
//!   speedup against it.
//!
//! ## `speedup_vs_prev_commit` semantics
//!
//! The per-benchmark speedup column compares this run's wall-clock
//! against the `total_seconds` of the *previously committed*
//! `BENCH_compile.json` passed via `--baseline` — i.e. the trajectory
//! from PR to PR, **not** a fixed first-ever baseline. (The field was
//! historically named `speedup_vs_baseline`, which silently stopped
//! meaning "vs the original seed" once the committed file started being
//! regenerated each PR; the name now says what it measures.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;

/// Extracts `(name, total_seconds)` pairs from a previously written
/// `BENCH_compile.json` document, without a JSON dependency. Exact for
/// files the harness wrote itself (the format is pinned by the in-tree
/// [`rlim_service::json::Json`] writer).
pub fn baseline_totals(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\":") {
            name = rest
                .trim()
                .trim_end_matches(',')
                .trim_matches('"')
                .to_owned()
                .into();
        } else if let Some(rest) = line.strip_prefix("\"total_seconds\":") {
            if let (Some(n), Ok(v)) = (
                name.take(),
                rest.trim().trim_end_matches(',').parse::<f64>(),
            ) {
                out.push((n, v));
            }
        }
    }
    out
}

/// The speedup of `total_seconds` for `name` against the previously
/// committed run's totals (> 1 means this run is faster). `None` when
/// the previous commit did not measure `name`.
pub fn speedup_vs_prev_commit(
    previous: &[(String, f64)],
    name: &str,
    total_seconds: f64,
) -> Option<f64> {
    previous
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, prev_seconds)| prev_seconds / total_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": 1,
  "benchmarks": [
    {
      "name": "div",
      "rewrite_seconds": 1.000000,
      "total_seconds": 2.000000,
      "instructions": 100
    },
    {
      "name": "voter",
      "total_seconds": 0.500000
    }
  ]
}
"#;

    #[test]
    fn baseline_totals_scrapes_name_total_pairs() {
        let totals = baseline_totals(SAMPLE);
        assert_eq!(
            totals,
            vec![("div".to_owned(), 2.0), ("voter".to_owned(), 0.5)]
        );
    }

    /// The satellite fix: the speedup column is *vs the previously
    /// committed run* — a faster run reads > 1, a slower one < 1, and a
    /// benchmark absent from the previous commit has no speedup at all.
    #[test]
    fn speedup_is_against_the_previous_commit() {
        let previous = baseline_totals(SAMPLE);
        assert_eq!(speedup_vs_prev_commit(&previous, "div", 1.0), Some(2.0));
        assert_eq!(speedup_vs_prev_commit(&previous, "div", 4.0), Some(0.5));
        assert_eq!(speedup_vs_prev_commit(&previous, "voter", 0.5), Some(1.0));
        assert_eq!(speedup_vs_prev_commit(&previous, "adder", 1.0), None);
    }
}
