//! End-to-end `rewrite + compile` wall-clock benchmark runner and
//! fleet-throughput trend tracker.
//!
//! Times the full endurance-aware pipeline (Algorithm 2 rewriting at the
//! paper's effort, then Algorithm 3 compilation) on the largest vendored
//! benchmarks and writes the measurements to `BENCH_compile.json`, so the
//! speedup trajectory is tracked from PR to PR.
//!
//! ```text
//! cargo run --release -p rlim-bench --bin bench_compile
//! cargo run --release -p rlim-bench --bin bench_compile -- --quick --out smoke.json
//! cargo run --release -p rlim-bench --bin bench_compile -- --baseline BENCH_compile.json
//! cargo run --release -p rlim-bench --bin bench_compile -- --db BENCH_db.json --gate
//! ```
//!
//! With `--baseline`, per-benchmark `speedup_vs_prev_commit` fields are
//! computed against the `total_seconds` of a previously **committed**
//! JSON file (see `rlim_bench`'s crate docs for the exact semantics).
//! The functional metrics (`instructions`, `rrams`) are recorded so that
//! a perf regression that silently changes the emitted program is caught
//! by diffing the file.
//!
//! With `--db`, the fleet throughput measurement — the scalar
//! `run_batch` path and the word-level `run_batch_simd` path over the
//! same workload — is appended as one record to the append-only bench
//! database (`rlim_bench::db`), and checked against the last committed
//! record by the regression gate: `--gate` fails the process on a
//! regression beyond `--gate-tolerance` (default 0.5), `--gate-dry-run`
//! reports it without failing.
//!
//! The runner is a thin client of [`rlim_service`]: each benchmark's
//! compile (and peephole twin) is a [`JobSpec`] batch over the shared
//! pre-rewritten graph, the fleet throughput record executes programs
//! compiled once through a service batch, and the JSON file is emitted
//! through the service's [`Json`] writer instead of hand-concatenated
//! strings.

use std::sync::Arc;
use std::time::Instant;

use rlim_bench::db::{self, BenchRecord, DEFAULT_GATE_TOLERANCE};
use rlim_bench::{baseline_totals, speedup_vs_prev_commit};
use rlim_benchmarks::Benchmark;
use rlim_compiler::CompileOptions;
use rlim_mig::rewrite::{rewrite, Algorithm};
use rlim_service::json::Json;
use rlim_service::{JobSpec, Service};

/// The benchmarks worth timing: the largest graphs in the suite, where the
/// ~50 rewriting passes dominate end-to-end compile time.
const LARGE: &[Benchmark] = &[
    Benchmark::Div,
    Benchmark::Multiplier,
    Benchmark::Square,
    Benchmark::Sqrt,
    Benchmark::Log2,
    Benchmark::MemCtrl,
    Benchmark::Voter,
];

/// Small set for CI smoke runs.
const QUICK: &[Benchmark] = &[Benchmark::Cavlc, Benchmark::Priority, Benchmark::Dec];

struct Row {
    name: &'static str,
    gates: usize,
    rewritten_gates: usize,
    rewrite_seconds: f64,
    compile_seconds: f64,
    instructions: usize,
    rrams: usize,
    /// Same compilation with the peephole write-elision pass enabled.
    peephole_seconds: f64,
    peephole_instructions: usize,
}

impl Row {
    fn total_seconds(&self) -> f64 {
        self.rewrite_seconds + self.compile_seconds
    }

    fn to_json(&self, speedup: Option<f64>) -> Json {
        let mut entries = vec![
            ("name", Json::from(self.name)),
            ("gates", Json::from(self.gates)),
            ("rewritten_gates", Json::from(self.rewritten_gates)),
            ("rewrite_seconds", Json::float(self.rewrite_seconds, 6)),
            ("compile_seconds", Json::float(self.compile_seconds, 6)),
            ("total_seconds", Json::float(self.total_seconds(), 6)),
        ];
        if let Some(s) = speedup {
            entries.push(("speedup_vs_prev_commit", Json::float(s, 3)));
        }
        entries.extend([
            ("instructions", Json::from(self.instructions)),
            ("rrams", Json::from(self.rrams)),
            ("peephole_seconds", Json::float(self.peephole_seconds, 6)),
            (
                "peephole_instructions",
                Json::from(self.peephole_instructions),
            ),
        ]);
        Json::object(entries)
    }
}

fn measure(
    service: &Service,
    benchmark: Benchmark,
    effort: usize,
    repeat: usize,
    esat: bool,
) -> Row {
    let mig = benchmark.build();
    let mut best: Option<Row> = None;
    for _ in 0..repeat.max(1) {
        let t0 = Instant::now();
        let rewritten = Arc::new(rewrite(&mig, Algorithm::EnduranceAware, effort));
        let rewrite_seconds = t0.elapsed().as_secs_f64();

        // The graph is already rewritten; compile without re-rewriting so
        // the two phases are timed separately (with `--esat` the
        // saturation rounds run inside the compile, so they land in
        // `compile_seconds`). The peephole on/off pair shares the
        // rewritten graph, so the delta isolates the elision pass itself.
        let options = CompileOptions {
            rewriting: None,
            ..CompileOptions::endurance_aware()
        }
        .with_esat(esat);
        let specs = [
            JobSpec::shared_mig(Arc::clone(&rewritten)).with_options(options),
            JobSpec::shared_mig(Arc::clone(&rewritten)).with_options(options.with_peephole(true)),
        ];
        let reports = service
            .run_batch(&specs)
            .expect("in-memory compilations cannot fail");
        let [plain, peephole] = &reports[..] else {
            unreachable!("one report per spec");
        };

        let row = Row {
            name: benchmark.name(),
            gates: mig.num_gates(),
            rewritten_gates: rewritten.num_gates(),
            rewrite_seconds,
            compile_seconds: plain.seconds,
            instructions: plain.instructions,
            rrams: plain.rrams,
            peephole_seconds: peephole.seconds,
            peephole_instructions: peephole.instructions,
        };
        if best
            .as_ref()
            .is_none_or(|b| row.total_seconds() < b.total_seconds())
        {
            best = Some(row);
        }
    }
    best.expect("at least one repetition")
}

/// Fleet execution-throughput measurement: the same alternating
/// naive/endurance-aware workload timed on both execution paths.
struct FleetRow {
    name: &'static str,
    /// Whether the light program was compiled with equality saturation
    /// (`--esat`); recorded in the DB benchmark label.
    esat: bool,
    arrays: usize,
    jobs: usize,
    instructions: u64,
    scalar_seconds: f64,
    simd_seconds: f64,
    /// Per-cell write stats of the light (endurance-aware) program the
    /// workload executes — deterministic compile-quality columns.
    light_writes: rlim_rram::WriteStats,
}

impl FleetRow {
    fn label(&self) -> String {
        if self.esat {
            format!("{}+esat", self.name)
        } else {
            self.name.to_owned()
        }
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("benchmark", Json::from(self.label().as_str())),
            ("dispatch", Json::from("least-worn")),
            ("workload", Json::from("alternating naive/endurance-aware")),
            ("arrays", Json::from(self.arrays)),
            ("jobs", Json::from(self.jobs)),
            ("instructions", Json::from(self.instructions)),
            ("scalar_seconds", Json::float(self.scalar_seconds, 6)),
            (
                "scalar_instructions_per_second",
                Json::float(self.instructions as f64 / self.scalar_seconds, 0),
            ),
            ("simd_seconds", Json::float(self.simd_seconds, 6)),
            (
                "simd_instructions_per_second",
                Json::float(self.instructions as f64 / self.simd_seconds, 0),
            ),
            (
                "simd_speedup",
                Json::float(self.scalar_seconds / self.simd_seconds, 3),
            ),
        ])
    }

    fn to_record(&self, run: u64) -> BenchRecord {
        BenchRecord {
            run,
            benchmark: self.label(),
            arrays: self.arrays,
            jobs: self.jobs,
            instructions: self.instructions,
            scalar_seconds: self.scalar_seconds,
            scalar_ops_per_second: self.instructions as f64 / self.scalar_seconds,
            simd_seconds: self.simd_seconds,
            simd_ops_per_second: self.instructions as f64 / self.simd_seconds,
            speedup: self.scalar_seconds / self.simd_seconds,
            max_cell_writes: self.light_writes.max,
            write_stdev: self.light_writes.stdev,
        }
    }
}

/// Times an alternating naive/endurance-aware workload of `jobs` runs on
/// a fresh 4-array least-worn fleet (threads: one per core), once
/// through the scalar dispatcher and once SIMD-batched into word-level
/// lane groups. The heavy and light programs are compiled **once**, as a
/// service batch whose reports carry the parseable listings; only the
/// fleet execution is repeated and timed, best of `repeat` wall-clock
/// runs per path.
fn measure_fleet(
    service: &Service,
    benchmark: Benchmark,
    effort: usize,
    jobs: usize,
    repeat: usize,
    esat: bool,
) -> FleetRow {
    use rlim_plim::{asm, Fleet, FleetConfig, Job};
    const ARRAYS: usize = 4;

    let specs = [
        JobSpec::benchmark(benchmark)
            .with_options(CompileOptions::naive())
            .with_program_text(true),
        JobSpec::benchmark(benchmark)
            .with_options(
                CompileOptions::endurance_aware()
                    .with_effort(effort)
                    .with_esat(esat),
            )
            .with_program_text(true),
    ];
    let reports = service
        .run_batch(&specs)
        .expect("benchmark compilations cannot fail");
    let [heavy, light] = reports
        .iter()
        .map(|r| asm::parse_text(r.program.as_deref().expect("listing requested")))
        .collect::<Result<Vec<_>, _>>()
        .expect("service listings parse")
        .try_into()
        .expect("one program per spec");
    let inputs = vec![false; reports[0].circuit.inputs];
    let job_list = Job::alternating(&heavy, &light, &inputs, jobs);
    let instructions: u64 = job_list.iter().map(Job::cost).sum();

    let mut scalar_seconds = f64::INFINITY;
    let mut simd_seconds = f64::INFINITY;
    for _ in 0..repeat.max(1) {
        let mut fleet = Fleet::new(FleetConfig::new(ARRAYS));
        let t0 = Instant::now();
        fleet
            .run_batch(&job_list, 0)
            .expect("unbudgeted fleet cannot fail");
        scalar_seconds = scalar_seconds.min(t0.elapsed().as_secs_f64());

        let mut fleet = Fleet::new(FleetConfig::new(ARRAYS));
        let t0 = Instant::now();
        fleet
            .run_batch_simd(&job_list, 0)
            .expect("unbudgeted fleet cannot fail");
        simd_seconds = simd_seconds.min(t0.elapsed().as_secs_f64());
    }
    FleetRow {
        name: benchmark.name(),
        esat,
        arrays: ARRAYS,
        jobs,
        instructions,
        scalar_seconds,
        simd_seconds,
        light_writes: reports[1].writes,
    }
}

fn main() {
    let mut benchmarks: Vec<Benchmark> = LARGE.to_vec();
    let mut effort = 5usize;
    let mut out_path = "BENCH_compile.json".to_owned();
    let mut baseline: Option<String> = None;
    let mut repeat = 1usize;
    let mut fleet_jobs = 256usize;
    let mut db_path: Option<String> = None;
    let mut gate = false;
    let mut gate_dry_run = false;
    let mut gate_tolerance = DEFAULT_GATE_TOLERANCE;
    let mut esat = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => benchmarks = QUICK.to_vec(),
            "--esat" => esat = true,
            "--bench" => {
                let list = args.next().expect("--bench needs a comma-separated list");
                benchmarks = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("unknown benchmark"))
                    .collect();
            }
            "--effort" => {
                effort = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--effort needs a number");
            }
            "--repeat" => {
                repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeat needs a number");
            }
            "--jobs" => {
                fleet_jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a number");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--db" => db_path = Some(args.next().expect("--db needs a path")),
            "--gate" => gate = true,
            "--gate-dry-run" => gate_dry_run = true,
            "--gate-tolerance" => {
                gate_tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--gate-tolerance needs a number");
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: bench_compile [--quick] [--esat] [--bench a,b,c] [--effort N] \
                     [--repeat N] [--jobs N] [--out PATH] [--baseline PATH] \
                     [--db PATH] [--gate | --gate-dry-run] [--gate-tolerance X]"
                );
                std::process::exit(2);
            }
        }
    }

    // A forced-serial service: timings must not fight other compiles for
    // cores, and the compile/peephole pair must run back to back.
    let service = Service::new().with_threads(1);
    let baseline_rows = baseline.as_deref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        baseline_totals(&text)
    });
    let mut rows = Vec::with_capacity(benchmarks.len());
    for &b in &benchmarks {
        let row = measure(&service, b, effort, repeat, esat);
        eprintln!(
            "[{}] {} gates -> {}: rewrite {:.3}s + compile {:.3}s = {:.3}s \
             (#I={} #R={}; peephole #I={} in {:.3}s)",
            row.name,
            row.gates,
            row.rewritten_gates,
            row.rewrite_seconds,
            row.compile_seconds,
            row.total_seconds(),
            row.instructions,
            row.rrams,
            row.peephole_instructions,
            row.peephole_seconds
        );
        rows.push(row);
    }

    let benchmark_records: Vec<Json> = rows
        .iter()
        .map(|row| {
            let speedup = baseline_rows
                .as_ref()
                .and_then(|b| speedup_vs_prev_commit(b, row.name, row.total_seconds()));
            row.to_json(speedup)
        })
        .collect();

    // Fleet execution throughput on the largest benchmark of the set,
    // scalar vs word-level SIMD.
    let fleet = measure_fleet(&service, benchmarks[0], effort, fleet_jobs, repeat, esat);
    eprintln!(
        "[fleet:{}] {} jobs on {} arrays: scalar {:.3}s ({:.0} RM3/s), \
         simd {:.3}s ({:.0} RM3/s, {:.2}x)",
        fleet.label(),
        fleet.jobs,
        fleet.arrays,
        fleet.scalar_seconds,
        fleet.instructions as f64 / fleet.scalar_seconds,
        fleet.simd_seconds,
        fleet.instructions as f64 / fleet.simd_seconds,
        fleet.scalar_seconds / fleet.simd_seconds
    );

    let document = Json::object([
        ("schema", Json::from(2u64)),
        ("effort", Json::from(effort)),
        ("algorithm", Json::from("endurance_aware")),
        ("benchmarks", Json::Array(benchmark_records)),
        ("fleet", fleet.to_json()),
    ]);
    let mut json = document.render();
    json.push('\n');

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    if let Some(db_path) = db_path {
        let db_path = std::path::Path::new(&db_path);
        let history = db::records(db_path)
            .unwrap_or_else(|e| panic!("cannot read bench DB {}: {e}", db_path.display()));
        let record = fleet.to_record(db::next_run(&history));
        if let Some(previous) = history.last() {
            match db::regression_gate(previous, &record, gate_tolerance) {
                Ok(()) => eprintln!("gate: ok vs run {} ({previous})", previous.run),
                Err(msg) if gate_dry_run => eprintln!("gate (dry-run, not enforced): {msg}"),
                Err(msg) if gate => {
                    eprintln!("gate: FAIL: {msg}");
                    std::process::exit(1);
                }
                Err(msg) => eprintln!("gate (pass --gate to enforce): {msg}"),
            }
        } else {
            eprintln!("gate: no previous record, nothing to compare against");
        }
        db::append(db_path, &record)
            .unwrap_or_else(|e| panic!("cannot append to {}: {e}", db_path.display()));
        eprintln!("appended to {}: {record}", db_path.display());
    }
}
