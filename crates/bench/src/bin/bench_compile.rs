//! End-to-end `rewrite + compile` wall-clock benchmark runner.
//!
//! Times the full endurance-aware pipeline (Algorithm 2 rewriting at the
//! paper's effort, then Algorithm 3 compilation) on the largest vendored
//! benchmarks and writes the measurements to `BENCH_compile.json`, so the
//! speedup trajectory is tracked from PR to PR.
//!
//! ```text
//! cargo run --release -p rlim-bench --bin bench_compile
//! cargo run --release -p rlim-bench --bin bench_compile -- --quick --out smoke.json
//! cargo run --release -p rlim-bench --bin bench_compile -- --baseline BENCH_compile.json
//! ```
//!
//! With `--baseline`, per-benchmark `speedup` fields are computed against
//! the `total_seconds` of a previously written JSON file. The functional
//! metrics (`instructions`, `rrams`) are recorded so that a perf regression
//! that silently changes the emitted program is caught by diffing the file.
//!
//! The report also carries one `fleet` record: execution throughput
//! (jobs/s, RM3 instructions/s) of an alternating naive/endurance-aware
//! workload on a 4-array [`rlim_plim::Fleet`] under least-worn dispatch —
//! the runtime-side counterpart to the compile-side rows above.

use std::time::Instant;

use rlim_benchmarks::Benchmark;
use rlim_compiler::{compile, CompileOptions};
use rlim_mig::rewrite::{rewrite, Algorithm};
use rlim_plim::{Fleet, FleetConfig, Job};

/// The benchmarks worth timing: the largest graphs in the suite, where the
/// ~50 rewriting passes dominate end-to-end compile time.
const LARGE: &[Benchmark] = &[
    Benchmark::Div,
    Benchmark::Multiplier,
    Benchmark::Square,
    Benchmark::Sqrt,
    Benchmark::Log2,
    Benchmark::MemCtrl,
    Benchmark::Voter,
];

/// Small set for CI smoke runs.
const QUICK: &[Benchmark] = &[Benchmark::Cavlc, Benchmark::Priority, Benchmark::Dec];

struct Row {
    name: &'static str,
    gates: usize,
    rewritten_gates: usize,
    rewrite_seconds: f64,
    compile_seconds: f64,
    instructions: usize,
    rrams: usize,
    /// Same compilation with the peephole write-elision pass enabled.
    peephole_seconds: f64,
    peephole_instructions: usize,
}

impl Row {
    fn total_seconds(&self) -> f64 {
        self.rewrite_seconds + self.compile_seconds
    }
}

fn measure(benchmark: Benchmark, effort: usize, repeat: usize) -> Row {
    let mig = benchmark.build();
    let mut best: Option<Row> = None;
    for _ in 0..repeat.max(1) {
        let t0 = Instant::now();
        let rewritten = rewrite(&mig, Algorithm::EnduranceAware, effort);
        let rewrite_seconds = t0.elapsed().as_secs_f64();

        // The graph is already rewritten; compile without re-rewriting so
        // the two phases are timed separately.
        let options = CompileOptions {
            rewriting: None,
            ..CompileOptions::endurance_aware()
        };
        let t1 = Instant::now();
        let result = compile(&rewritten, &options);
        let compile_seconds = t1.elapsed().as_secs_f64();

        // The peephole on/off pair shares the rewritten graph, so the
        // delta isolates the elision pass itself.
        let t2 = Instant::now();
        let peephole = compile(&rewritten, &options.with_peephole(true));
        let peephole_seconds = t2.elapsed().as_secs_f64();

        let row = Row {
            name: benchmark.name(),
            gates: mig.num_gates(),
            rewritten_gates: rewritten.num_gates(),
            rewrite_seconds,
            compile_seconds,
            instructions: result.num_instructions(),
            rrams: result.num_rrams(),
            peephole_seconds,
            peephole_instructions: peephole.num_instructions(),
        };
        if best
            .as_ref()
            .is_none_or(|b| row.total_seconds() < b.total_seconds())
        {
            best = Some(row);
        }
    }
    best.expect("at least one repetition")
}

/// Fleet execution-throughput measurement.
struct FleetRow {
    name: &'static str,
    arrays: usize,
    jobs: usize,
    instructions: u64,
    seconds: f64,
}

/// Times an alternating naive/endurance-aware workload of `jobs` runs on
/// a fresh 4-array least-worn fleet (threads: one per core). Returns the
/// best of `repeat` wall-clock runs.
fn measure_fleet(benchmark: Benchmark, effort: usize, jobs: usize, repeat: usize) -> FleetRow {
    const ARRAYS: usize = 4;
    let mig = benchmark.build();
    let heavy = compile(&mig, &CompileOptions::naive());
    let light = compile(&mig, &CompileOptions::endurance_aware().with_effort(effort));
    let inputs = vec![false; mig.num_inputs()];
    let job_list = Job::alternating(&heavy.program, &light.program, &inputs, jobs);
    let instructions: u64 = job_list.iter().map(Job::cost).sum();

    let mut best = f64::INFINITY;
    for _ in 0..repeat.max(1) {
        let mut fleet = Fleet::new(FleetConfig::new(ARRAYS));
        let t0 = Instant::now();
        fleet
            .run_batch(&job_list, 0)
            .expect("unbudgeted fleet cannot fail");
        best = best.min(t0.elapsed().as_secs_f64());
    }
    FleetRow {
        name: benchmark.name(),
        arrays: ARRAYS,
        jobs,
        instructions,
        seconds: best,
    }
}

/// Reads `"name" ... "total_seconds": <x>` pairs out of a previously
/// written report, without a JSON dependency. Good enough for files this
/// binary wrote itself.
fn baseline_totals(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\":") {
            name = rest
                .trim()
                .trim_end_matches(',')
                .trim_matches('"')
                .to_owned()
                .into();
        } else if let Some(rest) = line.strip_prefix("\"total_seconds\":") {
            if let (Some(n), Ok(v)) = (
                name.take(),
                rest.trim().trim_end_matches(',').parse::<f64>(),
            ) {
                out.push((n, v));
            }
        }
    }
    out
}

fn main() {
    let mut benchmarks: Vec<Benchmark> = LARGE.to_vec();
    let mut effort = 5usize;
    let mut out_path = "BENCH_compile.json".to_owned();
    let mut baseline: Option<String> = None;
    let mut repeat = 1usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => benchmarks = QUICK.to_vec(),
            "--bench" => {
                let list = args.next().expect("--bench needs a comma-separated list");
                benchmarks = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("unknown benchmark"))
                    .collect();
            }
            "--effort" => {
                effort = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--effort needs a number");
            }
            "--repeat" => {
                repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeat needs a number");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: bench_compile [--quick] [--bench a,b,c] [--effort N] \
                     [--repeat N] [--out PATH] [--baseline PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let baseline_rows = baseline.as_deref().map(baseline_totals);
    let mut rows = Vec::with_capacity(benchmarks.len());
    for &b in &benchmarks {
        let row = measure(b, effort, repeat);
        eprintln!(
            "[{}] {} gates -> {}: rewrite {:.3}s + compile {:.3}s = {:.3}s \
             (#I={} #R={}; peephole #I={} in {:.3}s)",
            row.name,
            row.gates,
            row.rewritten_gates,
            row.rewrite_seconds,
            row.compile_seconds,
            row.total_seconds(),
            row.instructions,
            row.rrams,
            row.peephole_instructions,
            row.peephole_seconds
        );
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": 1,\n");
    json.push_str(&format!("  \"effort\": {effort},\n"));
    json.push_str("  \"algorithm\": \"endurance_aware\",\n");
    json.push_str("  \"benchmarks\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let speedup = baseline_rows.as_ref().and_then(|b| {
            b.iter()
                .find(|(n, _)| n == row.name)
                .map(|(_, secs)| secs / row.total_seconds())
        });
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", row.name));
        json.push_str(&format!("      \"gates\": {},\n", row.gates));
        json.push_str(&format!(
            "      \"rewritten_gates\": {},\n",
            row.rewritten_gates
        ));
        json.push_str(&format!(
            "      \"rewrite_seconds\": {:.6},\n",
            row.rewrite_seconds
        ));
        json.push_str(&format!(
            "      \"compile_seconds\": {:.6},\n",
            row.compile_seconds
        ));
        json.push_str(&format!(
            "      \"total_seconds\": {:.6},\n",
            row.total_seconds()
        ));
        if let Some(s) = speedup {
            json.push_str(&format!("      \"speedup_vs_baseline\": {s:.3},\n"));
        }
        json.push_str(&format!("      \"instructions\": {},\n", row.instructions));
        json.push_str(&format!("      \"rrams\": {},\n", row.rrams));
        json.push_str(&format!(
            "      \"peephole_seconds\": {:.6},\n",
            row.peephole_seconds
        ));
        json.push_str(&format!(
            "      \"peephole_instructions\": {}\n",
            row.peephole_instructions
        ));
        json.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");

    // Fleet execution throughput on the largest benchmark of the set.
    let fleet = measure_fleet(benchmarks[0], effort, 32, repeat);
    eprintln!(
        "[fleet:{}] {} jobs on {} arrays: {:.3}s ({:.0} jobs/s, {:.0} RM3/s)",
        fleet.name,
        fleet.jobs,
        fleet.arrays,
        fleet.seconds,
        fleet.jobs as f64 / fleet.seconds,
        fleet.instructions as f64 / fleet.seconds
    );
    json.push_str("  \"fleet\": {\n");
    json.push_str(&format!("    \"benchmark\": \"{}\",\n", fleet.name));
    json.push_str("    \"dispatch\": \"least-worn\",\n");
    json.push_str("    \"workload\": \"alternating naive/endurance-aware\",\n");
    json.push_str(&format!("    \"arrays\": {},\n", fleet.arrays));
    json.push_str(&format!("    \"jobs\": {},\n", fleet.jobs));
    json.push_str(&format!("    \"instructions\": {},\n", fleet.instructions));
    json.push_str(&format!("    \"seconds\": {:.6},\n", fleet.seconds));
    json.push_str(&format!(
        "    \"jobs_per_second\": {:.1},\n",
        fleet.jobs as f64 / fleet.seconds
    ));
    json.push_str(&format!(
        "    \"instructions_per_second\": {:.0}\n",
        fleet.instructions as f64 / fleet.seconds
    ));
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
